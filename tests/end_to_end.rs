//! End-to-end integration: EBSN generation → paper pipeline → scheduling →
//! evaluation, across the crate boundaries of the workspace.

use ses::prelude::*;
use ses_datagen::paper::SigmaMode;
use ses_datagen::sweep::{k_sweep, t_sweep};

fn dataset() -> EbsnDataset {
    generate(&GeneratorConfig::default())
}

#[test]
fn full_pipeline_generates_schedules_and_utilities() {
    let ds = dataset();
    let cfg = PaperConfig {
        k: 15,
        ..PaperConfig::default()
    };
    let built = build_instance(&ds, &cfg).unwrap();
    let out = GreedyScheduler::new().run(&built.instance, cfg.k).unwrap();
    assert_eq!(out.len(), cfg.k);
    built.instance.check_schedule(&out.schedule).unwrap();
    assert!(out.total_utility > 0.0);
    // The reported utility matches a from-scratch evaluation.
    let eval = evaluate_schedule(&built.instance, &out.schedule);
    assert!((out.total_utility - eval.total_utility).abs() < 1e-7);
}

#[test]
fn paper_method_ordering_holds_end_to_end() {
    // The headline shape of Fig. 1a on an EBSN-derived instance: GRD beats
    // both baselines.
    let ds = dataset();
    let cfg = PaperConfig {
        k: 20,
        ..PaperConfig::default()
    };
    let built = build_instance(&ds, &cfg).unwrap();
    let grd = GreedyScheduler::new().run(&built.instance, cfg.k).unwrap();
    let top = TopScheduler::new().run(&built.instance, cfg.k).unwrap();
    let rand = RandomScheduler::new(0).run(&built.instance, cfg.k).unwrap();
    assert!(
        grd.total_utility > top.total_utility,
        "GRD {} vs TOP {}",
        grd.total_utility,
        top.total_utility
    );
    assert!(
        grd.total_utility > rand.total_utility,
        "GRD {} vs RAND {}",
        grd.total_utility,
        rand.total_utility
    );
}

#[test]
fn utility_increases_with_more_intervals() {
    // The shape of Fig. 1c: more candidate intervals → higher GRD utility
    // (less within-interval cannibalization, more choices).
    let ds = dataset();
    let few = build_instance(&ds, &PaperConfig::with_k_and_t_factor(15, 0.2)).unwrap();
    let many = build_instance(&ds, &PaperConfig::with_k_and_t_factor(15, 3.0)).unwrap();
    let u_few = GreedyScheduler::new()
        .run(&few.instance, 15)
        .unwrap()
        .total_utility;
    let u_many = GreedyScheduler::new()
        .run(&many.instance, 15)
        .unwrap()
        .total_utility;
    assert!(
        u_many > u_few,
        "utility at |T|=45 ({u_many}) should exceed |T|=3 ({u_few})"
    );
}

#[test]
fn dataset_roundtrip_preserves_built_instances() {
    let ds = dataset();
    let dir = std::env::temp_dir().join("ses_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ds.json");
    ds.save_json(&path).unwrap();
    let loaded = EbsnDataset::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = PaperConfig {
        k: 10,
        ..PaperConfig::default()
    };
    let a = build_instance(&ds, &cfg).unwrap();
    let b = build_instance(&loaded, &cfg).unwrap();
    assert_eq!(a.candidate_source, b.candidate_source);
    let out_a = GreedyScheduler::new().run(&a.instance, 10).unwrap();
    let out_b = GreedyScheduler::new().run(&b.instance, 10).unwrap();
    assert_eq!(out_a.schedule, out_b.schedule);
    assert!((out_a.total_utility - out_b.total_utility).abs() < 1e-12);
}

#[test]
fn checkin_sigma_changes_results_but_stays_valid() {
    let ds = dataset();
    let uniform = build_instance(
        &ds,
        &PaperConfig {
            k: 10,
            ..PaperConfig::default()
        },
    )
    .unwrap();
    let checkins = build_instance(
        &ds,
        &PaperConfig {
            k: 10,
            sigma: SigmaMode::FromCheckins,
            ..PaperConfig::default()
        },
    )
    .unwrap();
    let u = GreedyScheduler::new().run(&uniform.instance, 10).unwrap();
    let c = GreedyScheduler::new().run(&checkins.instance, 10).unwrap();
    assert!(u.total_utility > 0.0 && c.total_utility > 0.0);
    // Check-in σ values are small (a member attends a given weekly slot
    // rarely), so utilities land well below the uniform-σ run.
    assert!(c.total_utility < u.total_utility);
}

#[test]
fn sweeps_build_at_every_cell() {
    let ds = dataset();
    for cell in k_sweep(&[5, 10], 1)
        .iter()
        .chain(t_sweep(10, &[0.2, 1.0, 3.0], 1).iter())
    {
        let built = build_instance(&ds, &cell.config).unwrap();
        let out = GreedyScheduler::new()
            .run(&built.instance, cell.config.k)
            .unwrap();
        assert!(out.len() <= cell.config.k);
        built.instance.check_schedule(&out.schedule).unwrap();
    }
}

#[test]
fn facade_prelude_exposes_the_working_surface() {
    // Compile-time check that the `ses::prelude` is sufficient for the
    // quickstart workflow (this test IS the quickstart, minus printing).
    let ds = generate(&GeneratorConfig {
        num_members: 100,
        num_events: 60,
        ..GeneratorConfig::default()
    });
    let cfg = PaperConfig {
        k: 5,
        ..PaperConfig::default()
    };
    let BuiltInstance { instance, .. } = build_instance(&ds, &cfg).unwrap();
    let outcome = GreedyScheduler::new().run(&instance, 5).unwrap();
    assert!(outcome.len() <= 5);
}
