//! Cross-crate integration of the extension modules: online replanning and
//! schedule metrics driven by EBSN-derived instances.

use ses::prelude::*;
use ses_core::online::OnlineSession;

fn built() -> (EbsnDataset, PaperConfig) {
    let ds = generate(&GeneratorConfig {
        num_members: 400,
        num_events: 250,
        seed: 3,
        ..GeneratorConfig::default()
    });
    let cfg = PaperConfig {
        k: 12,
        seed: 3,
        ..PaperConfig::default()
    };
    (ds, cfg)
}

#[test]
fn metrics_describe_an_ebsn_schedule_coherently() {
    let (ds, cfg) = built();
    let built = build_instance(&ds, &cfg).unwrap();
    let out = GreedyScheduler::new().run(&built.instance, cfg.k).unwrap();
    let m = schedule_metrics(&built.instance, &out.schedule);

    assert!((m.total_utility - out.total_utility).abs() < 1e-7);
    assert!(m.expected_reach > 0.0);
    assert!(m.expected_reach <= built.instance.num_users() as f64);
    assert!(m.occupied_intervals <= cfg.k);
    let per_interval_events: usize = m.intervals.iter().map(|r| r.num_events).sum();
    assert_eq!(per_interval_events, out.len());
    // Resource budgets hold in every report row.
    for r in &m.intervals {
        assert!(r.used_resources <= built.instance.budget() + 1e-9);
    }
}

#[test]
fn online_session_survives_a_disruption_storm() {
    let (ds, cfg) = built();
    let b = build_instance(&ds, &cfg).unwrap();
    let initial = GreedyScheduler::new().run(&b.instance, cfg.k).unwrap();
    let mut session = OnlineSession::new(&b.instance, &initial.schedule).unwrap();

    let population: Vec<UserId> = (0..b.instance.num_users())
        .map(|u| UserId::new(u as u32))
        .collect();
    let mut utility = session.utility();
    // Ten alternating disruptions; after each one the schedule stays
    // feasible, size-stable (modulo the extensions), and the engine's
    // running utility stays meaningful.
    for round in 0..10u32 {
        match round % 3 {
            0 => {
                let t = session
                    .schedule()
                    .occupied_intervals()
                    .next()
                    .expect("non-empty");
                let postings: Vec<(UserId, f64)> =
                    population.iter().step_by(2).map(|&u| (u, 0.7)).collect();
                let report = session.announce_competing(t, &postings);
                assert!(report.utility_after <= report.utility_before + 1e-9);
            }
            1 => {
                let victim = session.schedule().scheduled_events()[0];
                let report = session.cancel_event(victim).unwrap();
                assert!(report.recovered() >= -1e-9);
            }
            _ => {
                session.extend();
            }
        }
        b.instance.check_schedule(session.schedule()).unwrap();
        utility = session.utility();
        assert!(utility.is_finite() && utility >= 0.0);
    }
    assert!(session.schedule().len() >= cfg.k - 1);
    let _ = utility;
}

#[test]
fn annealing_slots_into_the_pipeline() {
    let (ds, cfg) = built();
    let b = build_instance(&ds, &cfg).unwrap();
    let grd = GreedyScheduler::new().run(&b.instance, cfg.k).unwrap();
    let sa = AnnealingScheduler::new(GreedyScheduler::new())
        .run(&b.instance, cfg.k)
        .unwrap();
    assert!(sa.total_utility >= grd.total_utility - 1e-9);
    b.instance.check_schedule(&sa.schedule).unwrap();
}

#[test]
fn csv_and_json_exports_agree() {
    let (ds, cfg) = built();
    let dir = std::env::temp_dir().join("ses_export_agreement");
    let json_path = dir.join("ds.json");
    std::fs::create_dir_all(&dir).unwrap();
    ds.save_json(&json_path).unwrap();
    ses_ebsn::export_csv(&ds, dir.join("csv")).unwrap();

    let from_json = EbsnDataset::load_json(&json_path).unwrap();
    let from_csv = ses_ebsn::import_csv(dir.join("csv")).unwrap();
    assert_eq!(from_json.members, from_csv.members);
    assert_eq!(from_json.events, from_csv.events);
    assert_eq!(from_json.rsvps, from_csv.rsvps);

    // Both round-trips drive the pipeline to identical schedules.
    let a = build_instance(&from_json, &cfg).unwrap();
    let c = build_instance(&from_csv, &cfg).unwrap();
    let out_a = GreedyScheduler::new().run(&a.instance, cfg.k).unwrap();
    let out_c = GreedyScheduler::new().run(&c.instance, cfg.k).unwrap();
    assert_eq!(out_a.schedule, out_c.schedule);
    std::fs::remove_dir_all(&dir).ok();
}
