//! Online replanning: keeping a published schedule healthy as the world
//! changes (extension beyond the paper's offline setting).
//!
//! A venue publishes a GRD schedule; then, over the following weeks:
//! 1. a rival announces a big event on the venue's busiest night,
//! 2. one of the scheduled acts cancels,
//! 3. the sponsor funds one extra show.
//!
//! Each disruption is absorbed by `OnlineSession`, which repairs the
//! schedule incrementally and reports the utility swing.
//!
//! ```text
//! cargo run --release --example online_replanning
//! ```

use ses::prelude::*;
use ses_core::online::OnlineSession;

fn main() {
    let dataset = generate(&GeneratorConfig {
        num_members: 1_000,
        num_events: 400,
        seed: 11,
        ..GeneratorConfig::default()
    });
    let cfg = PaperConfig {
        k: 12,
        seed: 11,
        ..PaperConfig::default()
    };
    let built = build_instance(&dataset, &cfg).expect("dataset large enough");
    let inst = &built.instance;

    let initial = GreedyScheduler::new().run(inst, cfg.k).unwrap();
    println!(
        "published schedule: {} events, Ω = {:.2}\n",
        initial.len(),
        initial.total_utility
    );
    let mut session = OnlineSession::new(inst, &initial.schedule).unwrap();

    // --- disruption 1: rival announcement on the busiest night -----------
    let busiest = session
        .schedule()
        .occupied_intervals()
        .max_by_key(|&t| session.schedule().events_at(t).len())
        .unwrap();
    // The rival's act appeals to a third of the population, strongly.
    let postings: Vec<(UserId, f64)> = (0..inst.num_users())
        .filter(|u| u % 3 == 0)
        .map(|u| (UserId::new(u as u32), 0.85))
        .collect();
    let r1 = session.announce_competing(busiest, &postings);
    println!("1) rival announced at {busiest}:");
    println!(
        "   Ω {:.2} → {:.2} (disruption), repaired to {:.2}",
        r1.utility_before, r1.utility_disrupted, r1.utility_after
    );
    if r1.moves.is_empty() {
        println!("   repair: staying put was optimal");
    }
    for (e, t) in &r1.moves {
        println!("   repair: moved {e} to {t}");
    }

    // --- disruption 2: an act cancels -------------------------------------
    let victim = session.schedule().scheduled_events()[0];
    let r2 = session.cancel_event(victim).unwrap();
    println!("\n2) act {victim} cancelled:");
    println!(
        "   Ω {:.2} → {:.2} (disruption), repaired to {:.2}",
        r2.utility_before, r2.utility_disrupted, r2.utility_after
    );
    for (e, t) in &r2.moves {
        println!("   repair: booked {e} into {t}");
    }

    // --- disruption 3: budget for one more show ---------------------------
    let r3 = session.extend().expect("candidates remain");
    println!("\n3) sponsor funds one more show:");
    for (e, t) in &r3.moves {
        println!("   added {e} at {t}");
    }
    println!("   Ω {:.2} → {:.2}", r3.utility_before, r3.utility_after);

    println!(
        "\nfinal: {} events, Ω = {:.2} (started at {:.2})",
        session.schedule().len(),
        session.utility(),
        initial.total_utility
    );
}
