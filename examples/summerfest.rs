//! The paper's motivating scenario (§I): the Summerfest festival.
//!
//! An 11-day festival with 11 stages schedules a slate of multi-themed
//! events (concerts, fashion shows, theatre) while nearby venues run
//! competing events. Users like Alice have clashing interests — she loves
//! both the Pop concert and the fashion show, but can only attend one event
//! per evening — and her availability varies by weekday.
//!
//! ```text
//! cargo run --example summerfest
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses::prelude::*;

const DAYS: usize = 11;
const STAGES: u32 = 11;
const THEMES: [&str; 5] = ["Pop", "Rock", "Jazz", "Fashion", "Theatre"];

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);

    // One evening slot per festival day (19:00–23:00).
    let intervals: Vec<TimeInterval> = (0..DAYS)
        .map(|d| {
            let start = d as u64 * 24 * 60 + 19 * 60;
            TimeInterval::new(IntervalId::new(d as u32), start, start + 4 * 60)
        })
        .collect();

    // 40 candidate events across five themes, each pinned to a stage and
    // needing 2–6 staff units.
    let num_events = 40usize;
    let events: Vec<CandidateEvent> = (0..num_events)
        .map(|e| {
            let theme = THEMES[e % THEMES.len()];
            CandidateEvent::named(
                EventId::new(e as u32),
                LocationId::new(rng.gen_range(0..STAGES)),
                rng.gen_range(2.0..6.0),
                format!("{theme} act #{e}"),
            )
        })
        .collect();

    // Each evening, 1–3 competing events run at nearby venues.
    let mut competing = Vec::new();
    for d in 0..DAYS {
        for _ in 0..rng.gen_range(1..=3) {
            competing.push(CompetingEvent::named(
                CompetingEventId::new(competing.len() as u32),
                IntervalId::new(d as u32),
                format!("rival show (day {d})"),
            ));
        }
    }

    // 3,000 festival-goers with theme affinities. Alice is user 0: a Pop and
    // Fashion lover who works late on Tuesdays (days 1 and 8).
    let num_users = 3_000usize;
    let mut interest = InterestBuilder::new(num_users, num_events, competing.len());
    let mut theme_affinity = vec![[0.0f64; THEMES.len()]; num_users];
    for (u, aff) in theme_affinity.iter_mut().enumerate() {
        // Every user cares about 1–3 themes.
        for _ in 0..rng.gen_range(1..=3) {
            aff[rng.gen_range(0..THEMES.len())] = rng.gen_range(0.4..1.0);
        }
        if u == 0 {
            // Alice: Pop 0.95, Fashion 0.9.
            *aff = [0.95, 0.0, 0.0, 0.9, 0.0];
        }
    }
    for (u, aff) in theme_affinity.iter().enumerate() {
        for (e, _ev) in events.iter().enumerate() {
            let a = aff[e % THEMES.len()];
            if a > 0.0 {
                let jitter: f64 = rng.gen_range(0.85..1.0);
                interest
                    .set(UserId::new(u as u32), EventId::new(e as u32), a * jitter)
                    .unwrap();
            }
        }
        for (c, _) in competing.iter().enumerate() {
            if rng.gen_bool(0.3) {
                interest
                    .set(
                        UserId::new(u as u32),
                        CompetingEventId::new(c as u32),
                        rng.gen_range(0.2..0.8),
                    )
                    .unwrap();
            }
        }
    }

    // Availability: most people can attend any evening with p ≈ 0.7, but
    // Alice works late on Tuesdays.
    let mut sigma = vec![vec![0.0f64; DAYS]; num_users];
    for (u, row) in sigma.iter_mut().enumerate() {
        for (d, v) in row.iter_mut().enumerate() {
            *v = rng.gen_range(0.4..0.9);
            if u == 0 {
                *v = if d % 7 == 1 { 0.05 } else { 0.9 }; // Tuesdays
            }
        }
    }

    let instance = SesInstance::builder()
        .organizer(Organizer::named(12.0, "Summerfest Inc."))
        .intervals(intervals)
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().unwrap())
        .activity(DenseActivity::from_rows(sigma).unwrap())
        .build_shared()
        .expect("valid festival instance");

    // Schedule 22 events (two per evening on average).
    let k = 22;
    let grd = GreedyScheduler::new().run(&instance, k).unwrap();
    let rand = RandomScheduler::new(7).run(&instance, k).unwrap();
    println!("Summerfest: {k} events over {DAYS} evenings, {STAGES} stages");
    println!(
        "GRD  expected attendance : {:.1}  (RAND baseline: {:.1}, +{:.0}%)\n",
        grd.total_utility,
        rand.total_utility,
        100.0 * (grd.total_utility - rand.total_utility) / rand.total_utility
    );

    let engine = AttendanceEngine::with_schedule(&instance, &grd.schedule).unwrap();
    for d in 0..DAYS {
        let t = IntervalId::new(d as u32);
        let events_today = grd.schedule.events_at(t);
        if events_today.is_empty() {
            continue;
        }
        println!(
            "day {d:>2} ({} rival shows):",
            instance.competing_at(t).len()
        );
        for &e in events_today {
            println!(
                "   {:<16} stage {:<2} expected {:>7.1}",
                instance.event(e).display_name(),
                instance.event(e).location.raw(),
                engine.expected_attendance(e).unwrap()
            );
        }
    }

    // Alice's outlook: probability of attending her favourite scheduled events.
    println!("\nAlice's schedule conflicts:");
    let alice = UserId::new(0);
    let mut attended: Vec<(f64, String)> = grd
        .schedule
        .iter()
        .filter_map(|a| {
            let rho = engine.attendance_probability(alice, a.event).unwrap();
            (rho > 0.01).then(|| {
                (
                    rho,
                    format!(
                        "day {:>2}: {:<16} ρ = {rho:.3}",
                        a.interval.raw(),
                        instance.event(a.event).display_name()
                    ),
                )
            })
        })
        .collect();
    attended.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, line) in attended.iter().take(6) {
        println!("   {line}");
    }
}
