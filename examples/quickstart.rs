//! Quickstart: build a small SES instance by hand, schedule it with the
//! paper's greedy algorithm, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ses::prelude::*;

fn main() {
    // A club owner can host events in two evening slots. Three candidate
    // events compete for them; a rival venue runs a party during slot 0.
    //
    // Four regulars, whose interest µ ∈ [0,1] we estimated elsewhere:
    //                 jazz-night  wine-tasting  open-mic   rival-party
    //   u0 (Ana)         0.9          0.2          0.0         0.5
    //   u1 (Bo)          0.7          0.0          0.3         0.0
    //   u2 (Cleo)        0.0          0.8          0.4         0.6
    //   u3 (Dee)         0.0          0.0          0.9         0.0
    let mut interest = InterestBuilder::new(4, 3, 1);
    let entries = [
        (0, 0, 0.9),
        (0, 1, 0.2),
        (1, 0, 0.7),
        (1, 2, 0.3),
        (2, 1, 0.8),
        (2, 2, 0.4),
        (3, 2, 0.9),
    ];
    for (u, e, v) in entries {
        interest
            .set(UserId::new(u), EventId::new(e), v)
            .expect("interest in range");
    }
    interest
        .set(UserId::new(0), CompetingEventId::new(0), 0.5)
        .unwrap();
    interest
        .set(UserId::new(2), CompetingEventId::new(0), 0.6)
        .unwrap();

    let instance = SesInstance::builder()
        .organizer(Organizer::named(10.0, "Blue Note Club"))
        // Two disjoint 3-hour evening slots.
        .intervals(uniform_grid(2, 180))
        .events(vec![
            CandidateEvent::named(EventId::new(0), LocationId::new(0), 4.0, "Jazz Night"),
            CandidateEvent::named(EventId::new(1), LocationId::new(1), 3.0, "Wine Tasting"),
            CandidateEvent::named(EventId::new(2), LocationId::new(0), 5.0, "Open Mic"),
        ])
        // The rival party coincides with slot 0.
        .competing(vec![CompetingEvent::named(
            CompetingEventId::new(0),
            IntervalId::new(0),
            "Rival Party",
        )])
        .interest(interest.build_sparse().unwrap())
        // Everyone is free tonight with probability 0.8.
        .activity(ConstantActivity::new(4, 2, 0.8).unwrap())
        .build_shared()
        .expect("valid instance");

    // Schedule two of the three candidates.
    let outcome = GreedyScheduler::new()
        .run(&instance, 2)
        .expect("k within bounds");

    println!("schedule   : {}", outcome.schedule);
    println!(
        "utility Ω  : {:.3} expected attendees",
        outcome.total_utility
    );
    println!("complete   : {}", outcome.complete);
    println!();

    let engine = AttendanceEngine::with_schedule(&instance, &outcome.schedule)
        .expect("schedule is feasible");
    for assignment in outcome.schedule.iter() {
        let event = instance.event(assignment.event);
        println!(
            "{:<14} at {} — expected attendance {:.3}",
            event.display_name(),
            assignment.interval,
            engine.expected_attendance(assignment.event).unwrap()
        );
        for u in 0..4u32 {
            let rho = engine
                .attendance_probability(UserId::new(u), assignment.event)
                .unwrap();
            if rho > 0.0 {
                println!("    user u{u}: ρ = {rho:.3}");
            }
        }
    }
}
