//! How competition erodes attendance — and how scheduling fights back.
//!
//! Sweeps the density of competing (third-party) events per interval and
//! reports the expected attendance GRD and RAND achieve for the same slate.
//! Two effects compound in the Luce model: competing mass steals probability
//! directly, and it flattens the score landscape so smart placement matters
//! more. GRD's *relative* edge over RAND should therefore persist (or grow)
//! as the market gets more crowded.
//!
//! ```text
//! cargo run --release --example market_competition
//! ```

use ses::prelude::*;

fn main() {
    let dataset = generate(&GeneratorConfig {
        num_members: 1_500,
        num_events: 600,
        seed: 7,
        ..GeneratorConfig::default()
    });
    println!("dataset: {}\n", dataset.summary());

    let k = 20;
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>12}",
        "competing/interval", "GRD Ω", "RAND Ω", "GRD/RAND", "GRD Ω/event"
    );
    for &mean in &[0.0, 2.0, 4.0, 8.1, 16.0, 32.0] {
        let cfg = PaperConfig {
            k,
            competing_mean: mean,
            seed: 7,
            ..PaperConfig::default()
        };
        let built = build_instance(&dataset, &cfg).expect("dataset large enough");
        let grd = GreedyScheduler::new().run(&built.instance, k).unwrap();
        let rand = RandomScheduler::new(7).run(&built.instance, k).unwrap();
        println!(
            "{:>18.1} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
            mean,
            grd.total_utility,
            rand.total_utility,
            grd.total_utility / rand.total_utility.max(1e-9),
            grd.total_utility / k as f64,
        );
    }

    println!(
        "\nReading: absolute attendance falls as the market crowds (the Luce\n\
         denominator grows), while GRD's advantage over naive placement holds."
    );
}
