//! A festival season under fire: the discrete-event simulator drives the
//! online scheduler through every built-in workload and reports how much of
//! each storm the repair loop claws back.
//!
//! ```text
//! cargo run --release --example disruption_storm
//! ```

use ses::prelude::*;
use ses::sim::{DisruptionKind, Simulator, TraceRecord, SCENARIO_NAMES};
use ses_core::testkit::{random_instance, TestInstanceConfig};

const STEPS: u64 = 2_000;
const SEED: u64 = 2024;

fn worst_hit(records: &[TraceRecord]) -> Option<&TraceRecord> {
    records.iter().max_by(|a, b| {
        let da = a.utility_before - a.utility_disrupted;
        let db = b.utility_before - b.utility_disrupted;
        da.partial_cmp(&db).unwrap()
    })
}

fn main() {
    // A mid-sized venue network: 600 users, 48 candidate acts, a 16-slot
    // season calendar, plenty of pre-existing competition.
    let inst = random_instance(&TestInstanceConfig {
        num_users: 600,
        num_events: 48,
        num_intervals: 16,
        num_competing: 24,
        num_locations: 12,
        theta: 16.0,
        xi_max: 3.0,
        interest_density: 0.25,
        seed: SEED,
    });
    let plan = GreedyScheduler::new().run(&inst, 16).expect("plan");
    println!(
        "season plan: {} events scheduled, Ω₀ = {:.2}\n",
        plan.len(),
        plan.total_utility
    );

    for &name in SCENARIO_NAMES {
        let session = OnlineSession::new(&inst, &plan.schedule).expect("feasible plan");
        let scenario = scenario_by_name(name, SEED).expect("builtin scenario");
        let mut sim = Simulator::new(session, vec![scenario]);
        let withheld = sim.withhold_fraction(0.25).len();
        let summary = sim.run(STEPS);

        println!("── {name} ({STEPS} disruptions, {withheld} late arrivals in reserve)");
        println!(
            "   Ω {:.2} → {:.2}   |S| {} → {}   repairs recovered {:.2}",
            plan.total_utility,
            summary.final_utility,
            plan.len(),
            summary.final_scheduled,
            summary.total_recovered,
        );
        let cancels = sim
            .kind_histogram()
            .into_iter()
            .find(|(k, _)| *k == DisruptionKind::Cancel)
            .map(|(_, n)| n)
            .unwrap_or(0);
        if let Some(hit) = worst_hit(sim.trace().records()) {
            println!(
                "   worst single hit: step {} ({}), Ω {:.2} → {:.2}, repair brought back {:.2}",
                hit.step,
                hit.kind.label(),
                hit.utility_before,
                hit.utility_disrupted,
                hit.recovered(),
            );
        }
        println!(
            "   {} moves across {} applied disruptions ({} cancellations); \
             {:.0} disruptions/sec\n",
            summary.total_moves, summary.applied, cancels, summary.events_per_sec,
        );
    }

    println!(
        "(competing mass only accumulates in the Luce denominator — the paper's \n\
         model has no rival expiry — so sustained storms trend Ω down; what the \n\
         repair loop buys is the recovered share reported above.)"
    );
}
