//! A venue plans its season from real-ish EBSN data.
//!
//! Generates a Meetup-like network, estimates each member's availability
//! from their simulated check-in history (σ per weekly slot), builds the
//! paper's instance, and compares all schedulers — including the local-
//! search extension — on the same season.
//!
//! ```text
//! cargo run --release --example venue_season
//! ```

use ses::prelude::*;
use ses_core::{GreedyHeapScheduler, LocalSearchScheduler};
use ses_datagen::paper::SigmaMode;
use ses_ebsn::{interest_stats, overlap_stats};

fn main() {
    // 1. The market: a mid-size city's event scene.
    let dataset = generate(&GeneratorConfig {
        num_members: 2_000,
        num_groups: 90,
        num_venues: 30,
        num_events: 800,
        horizon_weeks: 26,
        seed: 42,
        ..GeneratorConfig::default()
    });
    println!("dataset: {}", dataset.summary());
    let overlap = overlap_stats(&dataset);
    let interest = interest_stats(&dataset, 20_000, 42);
    println!(
        "market: {:.1} concurrent events on average, {:.1}% of user-event pairs show interest\n",
        overlap.mean_concurrent,
        interest.nonzero_fraction * 100.0
    );

    // 2. The season: 30 shows over ~45 slots, availability from check-ins.
    let config = PaperConfig {
        k: 30,
        sigma: SigmaMode::FromCheckins,
        seed: 42,
        ..PaperConfig::default()
    };
    let built = build_instance(&dataset, &config).expect("dataset large enough");
    let inst = &built.instance;
    println!(
        "season: scheduling k = {} shows into |T| = {} slots from |E| = {} candidates \
         against {} competing events\n",
        config.k,
        inst.num_intervals(),
        inst.num_events(),
        inst.num_competing()
    );

    // 3. Compare schedulers.
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GreedyScheduler::new()),
        Box::new(GreedyHeapScheduler::new()),
        Box::new(LocalSearchScheduler::new(GreedyScheduler::new())),
        Box::new(TopScheduler::new()),
        Box::new(RandomScheduler::new(42)),
    ];
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>9}",
        "method", "utility Ω", "time(ms)", "score evals", "placed"
    );
    let mut best: Option<(String, f64)> = None;
    for s in schedulers {
        let out = s.run(inst, config.k).expect("k within bounds");
        println!(
            "{:<8} {:>12.2} {:>10.1} {:>12} {:>9}",
            out.algorithm,
            out.total_utility,
            out.stats.elapsed.as_secs_f64() * 1e3,
            out.stats.engine.score_evaluations,
            out.len(),
        );
        if best.as_ref().is_none_or(|(_, b)| out.total_utility > *b) {
            best = Some((out.algorithm.to_owned(), out.total_utility));
        }
    }
    let (name, utility) = best.expect("at least one scheduler ran");
    println!("\nbest method: {name} with {utility:.2} expected attendees over the season");
}
