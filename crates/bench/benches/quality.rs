//! Benches for the extension machinery: exact branch-and-bound node
//! throughput (A3 runtime side) and local-search pass cost (A4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{ExactScheduler, GreedyScheduler, LocalSearchScheduler, RandomScheduler, Scheduler};
use ses_datagen::synthetic;

fn small(seed: u64) -> std::sync::Arc<ses_core::SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users: 12,
        num_events: 8,
        num_intervals: 4,
        num_competing: 6,
        num_locations: 3,
        theta: 8.0,
        xi_max: 3.0,
        interest_density: 0.45,
        seed,
    })
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bnb");
    group.sample_size(10);
    for &k in &[2usize, 3, 4] {
        let inst = small(3);
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| ExactScheduler::new().run(&inst, k).unwrap().total_utility)
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_search");
    group.sample_size(10);
    let inst = synthetic::clustered(300, 60, 30, 5, 11);
    group.bench_function("GRD_alone", |b| {
        b.iter(|| GreedyScheduler::new().run(&inst, 30).unwrap().total_utility)
    });
    group.bench_function("GRD_plus_LS", |b| {
        b.iter(|| {
            LocalSearchScheduler::new(GreedyScheduler::new())
                .run(&inst, 30)
                .unwrap()
                .total_utility
        })
    });
    group.bench_function("RAND_plus_LS", |b| {
        b.iter(|| {
            LocalSearchScheduler::new(RandomScheduler::new(1))
                .run(&inst, 30)
                .unwrap()
                .total_utility
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact, bench_local_search);
criterion_main!(benches);
