//! Criterion benches for the schedulers (ablation A1 included):
//! GRD (Algorithm 1, list-based) vs GRD-PQ (heap + lazy rescoring) vs the
//! TOP and RAND baselines, across instance scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_core::{GreedyHeapScheduler, GreedyScheduler, RandomScheduler, Scheduler, TopScheduler};
use ses_datagen::synthetic;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    for &(users, events, intervals, k) in
        &[(200usize, 40usize, 30usize, 20usize), (500, 100, 75, 50)]
    {
        let inst = synthetic::uniform(users, events, intervals, 42);
        let label = format!("u{users}_e{events}_t{intervals}_k{k}");
        group.bench_with_input(BenchmarkId::new("GRD", &label), &inst, |b, inst| {
            b.iter(|| GreedyScheduler::new().run(inst, k).unwrap().total_utility)
        });
        group.bench_with_input(BenchmarkId::new("GRD-PQ", &label), &inst, |b, inst| {
            b.iter(|| {
                GreedyHeapScheduler::new()
                    .run(inst, k)
                    .unwrap()
                    .total_utility
            })
        });
        group.bench_with_input(BenchmarkId::new("TOP", &label), &inst, |b, inst| {
            b.iter(|| TopScheduler::new().run(inst, k).unwrap().total_utility)
        });
        group.bench_with_input(BenchmarkId::new("RAND", &label), &inst, |b, inst| {
            b.iter(|| RandomScheduler::new(7).run(inst, k).unwrap().total_utility)
        });
    }
    group.finish();
}

fn bench_greedy_scaling_in_k(c: &mut Criterion) {
    // The shape behind Fig. 1b: GRD work grows with k (updates), TOP's does
    // not (no update phase).
    let mut group = c.benchmark_group("scaling_k");
    group.sample_size(10);
    let inst = synthetic::uniform(300, 80, 60, 13);
    for &k in &[10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("GRD", k), &k, |b, &k| {
            b.iter(|| GreedyScheduler::new().run(&inst, k).unwrap().total_utility)
        });
        group.bench_with_input(BenchmarkId::new("TOP", k), &k, |b, &k| {
            b.iter(|| TopScheduler::new().run(&inst, k).unwrap().total_utility)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_greedy_scaling_in_k);
criterion_main!(benches);
