//! Simulator throughput benches: disruptions/second sustained by the online
//! repair loop under each built-in workload, across two instance scales.
//!
//! The interesting comparison is rival-heavy workloads (posting-list mass
//! injection + relocate passes) against churn-heavy ones (cancel/extend,
//! which re-score the candidate pool); `EngineCounters` in `ses simulate`
//! gives the matching hardware-independent view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{GreedyScheduler, OnlineSession, Scheduler, SesInstance};
use ses_sim::{scenario_by_name, Simulator};

fn instance(
    users: usize,
    events: usize,
    intervals: usize,
    seed: u64,
) -> std::sync::Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users: users,
        num_events: events,
        num_intervals: intervals,
        num_competing: events / 2,
        num_locations: (events / 3).max(1),
        theta: 20.0,
        xi_max: 3.0,
        interest_density: 0.2,
        seed,
    })
}

fn bench_scenario_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for &(users, events, intervals, k) in
        &[(200usize, 30usize, 12usize, 10usize), (800, 80, 32, 25)]
    {
        let inst = instance(users, events, intervals, 3);
        let plan = GreedyScheduler::new().run(&inst, k).unwrap();
        let label = format!("u{users}_e{events}");
        for scenario in ["steady", "flash-crowd", "adversarial", "seasonal"] {
            group.bench_with_input(BenchmarkId::new(scenario, &label), &inst, |b, inst| {
                b.iter(|| {
                    let session = OnlineSession::new(inst, &plan.schedule).unwrap();
                    let mut sim =
                        Simulator::new(session, vec![scenario_by_name(scenario, 11).unwrap()]);
                    sim.withhold_fraction(0.3);
                    sim.run(500).final_utility
                })
            });
        }
    }
    group.finish();
}

fn bench_repair_primitives(c: &mut Criterion) {
    // The hot path under rival storms: announce + bounded relocate.
    let inst = instance(1000, 60, 24, 5);
    let plan = GreedyScheduler::new().run(&inst, 20).unwrap();
    let postings: Vec<(ses_core::UserId, f64)> = (0..inst.num_users())
        .step_by(2)
        .map(|u| (ses_core::UserId::new(u as u32), 0.6))
        .collect();
    c.bench_function("announce_competing_with_repair_1000u", |b| {
        let mut session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let busy = session.schedule().occupied_intervals().next().unwrap();
        b.iter(|| {
            let report = session.announce_competing(busy, &postings);
            report.utility_after
        })
    });
}

criterion_group!(benches, bench_scenario_throughput, bench_repair_primitives);
criterion_main!(benches);
