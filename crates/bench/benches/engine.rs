//! Engine micro-benchmarks (ablations A2 and A5):
//! * score evaluation (Eq. 4) throughput via the inverted index;
//! * dense vs sparse interest backends;
//! * assign/unassign round-trip cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::interest::{InterestBuilder, SparseInterest};
use ses_core::model::uniform_grid;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{
    AttendanceEngine, CandidateEvent, CompetingEvent, CompetingEventId, ConstantActivity,
    DenseInterest, EventId, IntervalId, LocationId, Organizer, SesInstance, UserId,
};

fn build_interest(users: usize, events: usize, density: f64) -> (SparseInterest, DenseInterest) {
    let mut rng = StdRng::seed_from_u64(99);
    let mut sparse_b = InterestBuilder::new(users, events, 1);
    let mut dense_b = InterestBuilder::new(users, events, 1);
    for u in 0..users {
        for e in 0..events {
            if rng.gen_bool(density) {
                let v = rng.gen_range(0.05..1.0);
                sparse_b
                    .set(UserId::new(u as u32), EventId::new(e as u32), v)
                    .unwrap();
                dense_b
                    .set(UserId::new(u as u32), EventId::new(e as u32), v)
                    .unwrap();
            }
        }
    }
    (
        sparse_b.build_sparse().unwrap(),
        dense_b.build_dense().unwrap(),
    )
}

fn instance_with(
    interest: impl ses_core::InterestModel + 'static,
    users: usize,
    events: usize,
) -> std::sync::Arc<SesInstance> {
    SesInstance::builder()
        .organizer(Organizer::new(1e9))
        .intervals(uniform_grid(8, 100))
        .events(
            (0..events)
                .map(|e| {
                    CandidateEvent::new(EventId::new(e as u32), LocationId::new(e as u32), 1.0)
                })
                .collect(),
        )
        .competing(vec![CompetingEvent::new(
            CompetingEventId::new(0),
            IntervalId::new(0),
        )])
        .interest(interest)
        .activity(ConstantActivity::new(users, 8, 0.7).unwrap())
        .build_shared()
        .unwrap()
}

fn bench_score_backends(c: &mut Criterion) {
    // A2: the same interest data behind the sparse and the dense backend;
    // the engine only ever walks posting lists, so the backends should be
    // close — this bench verifies that claim.
    let (users, events) = (2000usize, 64usize);
    let (sparse, dense) = build_interest(users, events, 0.3);
    let sparse_inst = instance_with(sparse, users, events);
    let dense_inst = instance_with(dense, users, events);
    let mut group = c.benchmark_group("score_backend");
    group.sample_size(20);
    for (name, inst) in [("sparse", &sparse_inst), ("dense", &dense_inst)] {
        group.bench_with_input(BenchmarkId::new(name, "64ev"), inst, |b, inst| {
            let mut engine = AttendanceEngine::new(inst);
            b.iter(|| {
                let mut acc = 0.0;
                for e in 0..inst.num_events() {
                    acc += engine.score(EventId::new(e as u32), IntervalId::new(0));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_assign_unassign(c: &mut Criterion) {
    let inst = random_instance(&TestInstanceConfig {
        num_users: 2000,
        num_events: 40,
        num_intervals: 10,
        num_competing: 30,
        num_locations: 40,
        theta: 1e9,
        xi_max: 1.0,
        interest_density: 0.3,
        seed: 5,
    });
    c.bench_function("assign_unassign_roundtrip", |b| {
        let mut engine = AttendanceEngine::new(&inst);
        b.iter(|| {
            for e in 0..10u32 {
                engine
                    .assign(EventId::new(e), IntervalId::new(e % 10))
                    .unwrap();
            }
            for e in 0..10u32 {
                engine.unassign(EventId::new(e)).unwrap();
            }
            engine.total_utility()
        })
    });
}

fn bench_initial_scoring(c: &mut Criterion) {
    // A5: the O(|E||T||U|) initial scoring phase that dominates TOP and the
    // startup of GRD.
    let inst = random_instance(&TestInstanceConfig {
        num_users: 3000,
        num_events: 60,
        num_intervals: 45,
        num_competing: 100,
        num_locations: 25,
        theta: 20.0,
        xi_max: 3.0,
        interest_density: 0.25,
        seed: 9,
    });
    c.bench_function("initial_scoring_60x45", |b| {
        let mut engine = AttendanceEngine::new(&inst);
        b.iter(|| {
            let mut acc = 0.0;
            for e in 0..inst.num_events() {
                for t in 0..inst.num_intervals() {
                    acc += engine.score(EventId::new(e as u32), IntervalId::new(t as u32));
                }
            }
            acc
        })
    });
    // The same sweep through the batch API (one `score_all` per event) —
    // quantifies what per-call overhead and interval-major slicing save.
    c.bench_function("initial_scoring_60x45_batched", |b| {
        let mut engine = AttendanceEngine::new(&inst);
        b.iter(|| {
            let mut acc = 0.0;
            for e in 0..inst.num_events() {
                acc += engine.score_all(EventId::new(e as u32)).iter().sum::<f64>();
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_score_backends,
    bench_assign_unassign,
    bench_initial_scoring
);
criterion_main!(benches);
