//! Ablation A3: solution quality of the heuristics against the exact
//! optimum on small instances (the regime where branch-and-bound is
//! tractable). Prints the mean utility ratio `heuristic / OPT` per
//! algorithm over a batch of seeded instances.
//!
//! ```text
//! cargo run -p ses-bench --release --bin quality -- [--instances N] [--k K]
//! ```

use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{
    ExactScheduler, GreedyHeapScheduler, GreedyScheduler, LocalSearchScheduler, RandomScheduler,
    Scheduler, TopScheduler,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut instances = 20usize;
    let mut k = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--instances" => {
                instances = it.next().and_then(|v| v.parse().ok()).unwrap_or(instances)
            }
            "--k" => k = it.next().and_then(|v| v.parse().ok()).unwrap_or(k),
            other => {
                eprintln!("quality: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let algos: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("GRD", Box::new(GreedyScheduler::new())),
        ("GRD-PQ", Box::new(GreedyHeapScheduler::new())),
        (
            "GRD+LS",
            Box::new(LocalSearchScheduler::new(GreedyScheduler::new())),
        ),
        ("TOP", Box::new(TopScheduler::new())),
        ("RAND", Box::new(RandomScheduler::new(0))),
    ];
    let mut ratio_sums = vec![0.0f64; algos.len()];
    let mut ratio_mins = vec![f64::INFINITY; algos.len()];
    let mut solved = 0usize;

    for seed in 0..instances as u64 {
        let inst = random_instance(&TestInstanceConfig {
            num_users: 12,
            num_events: 8,
            num_intervals: 4,
            num_competing: 6,
            num_locations: 3,
            theta: 8.0,
            xi_max: 3.0,
            interest_density: 0.45,
            seed,
        });
        let Ok(opt) = ExactScheduler::new().run(&inst, k) else {
            continue; // node budget exceeded — skip this instance
        };
        if opt.total_utility <= 0.0 {
            continue;
        }
        solved += 1;
        for (i, (_, sched)) in algos.iter().enumerate() {
            let h = sched.run(&inst, k).expect("k ≤ |E|");
            let ratio = h.total_utility / opt.total_utility;
            ratio_sums[i] += ratio;
            ratio_mins[i] = ratio_mins[i].min(ratio);
        }
    }

    if solved == 0 {
        eprintln!("quality: no instance solved exactly");
        return ExitCode::FAILURE;
    }
    println!("== A3: utility ratio vs exact optimum ({solved} instances, k = {k}) ==");
    println!("{:>8} {:>12} {:>12}", "algo", "mean ratio", "worst ratio");
    for (i, (name, _)) in algos.iter().enumerate() {
        println!(
            "{:>8} {:>12.4} {:>12.4}",
            name,
            ratio_sums[i] / solved as f64,
            ratio_mins[i]
        );
    }
    ExitCode::SUCCESS
}
