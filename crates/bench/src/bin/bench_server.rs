//! Records the serving-stack perf trajectory: starts an in-process
//! `ses-server`, drives it with the built-in closed-loop load generator,
//! runs the server-vs-simulator replay determinism check, and writes the
//! whole picture — client-side req/s + p50/p95/p99, the server's own
//! `/metrics` histograms, and the digest verdict — as `BENCH_server.json`
//! at the repo root.
//!
//! ```text
//! cargo run --release -p ses-bench --bin bench_server -- \
//!     [--clients N] [--requests N] [--shards N] [--seed S] \
//!     [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the run for CI (and, like `bench_engine --smoke`,
//! defaults its output to a temp path so throwaway numbers cannot clobber
//! the committed report). Exit status is non-zero when any request
//! answered non-2xx or the replay digests diverge, so CI can gate on it.

use ses_server::{
    serve, verify_replay, DurabilityRow, FsyncPolicy, HttpClient, LoadgenConfig, ReplayConfig,
    ServerBenchReport, ServerConfig,
};
use std::process::ExitCode;

/// Dimensions of the packed second tenant. Deliberately different from the
/// default serving instance so cross-tenant traffic exercises distinct
/// universes, and small enough that packing adds negligible startup cost.
const TENANT_USERS: usize = 5_000;
const TENANT_EVENTS: usize = 120;
const TENANT_INTERVALS: usize = 48;

/// Where full runs land (the committed report).
const DEFAULT_OUT: &str = "BENCH_server.json";
/// Where smoke runs land unless `--out` says otherwise.
const SMOKE_OUT: &str = "/tmp/BENCH_server_smoke.json";

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match arg_value(args, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v:?}")),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let clients: usize = parse_or(&args, "--clients", if smoke { 4 } else { 8 })?;
    let requests: u64 = parse_or(&args, "--requests", if smoke { 300 } else { 2000 })?;
    let shards: usize = parse_or(&args, "--shards", 4)?;
    let seed: u64 = parse_or(&args, "--seed", 0)?;
    let out = arg_value(&args, "--out")
        .unwrap_or_else(|| (if smoke { SMOKE_OUT } else { DEFAULT_OUT }).to_owned());

    // Pack a second tenant so the loadgen splits clients across two
    // universes — the per-instance rows below are the committed evidence
    // that one tenant's traffic does not distort another's latency.
    let tenant = ses_datagen::synthetic::sparse_population(
        TENANT_USERS,
        TENANT_EVENTS,
        TENANT_INTERVALS,
        8,
        6,
        seed.wrapping_add(1),
    );
    let tenant_path = std::env::temp_dir().join(format!("bench-server-tenant-{seed}.sesstore"));
    let tenant_bytes = ses_core::store::pack_to_path(&tenant, &tenant_path)
        .map_err(|e| format!("pack tenant: {e}"))?;

    // The default serving instance (`ses serve`'s defaults) plus the packed
    // tenant, ephemeral port.
    let server_cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards,
        seed,
        instances: vec![("tenant-b".to_owned(), tenant_path.clone())],
        ..ServerConfig::default()
    };
    let handle = serve(&server_cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();
    println!(
        "bench_server: {} shards on {addr}, {clients} clients × {requests} requests, \
         packed tenant {} bytes",
        shards, tenant_bytes
    );

    let loadgen_cfg = LoadgenConfig {
        addr: addr.clone(),
        clients,
        requests,
        seed,
        instances: vec!["default".to_owned(), "tenant-b".to_owned()],
        ..LoadgenConfig::default()
    };
    let summary = ses_server::loadgen::run(&loadgen_cfg)?;
    println!(
        "  {:>8.0} req/s — p50 {} µs, p95 {} µs, p99 {} µs, max {} µs ({} ok, {} errors)",
        summary.req_per_sec,
        summary.p50_micros,
        summary.p95_micros,
        summary.p99_micros,
        summary.max_micros,
        summary.ok,
        summary.errors
    );
    for row in &summary.per_instance {
        println!(
            "    [{}] {} clients, {} requests — p50 {} µs, p95 {} µs, p99 {} µs ({} errors)",
            row.instance,
            row.clients,
            row.requests,
            row.p50_micros,
            row.p95_micros,
            row.p99_micros,
            row.errors
        );
    }

    let mut client = HttpClient::new(addr);
    let digest = verify_replay(
        &mut client,
        &ReplayConfig {
            steps: if smoke { 150 } else { 400 },
            seed,
            ..ReplayConfig::default()
        },
    )?;
    println!(
        "  replay: {} disruptions, server digest {:#018x}, sim digest {:#018x} — {}",
        digest.steps,
        digest.server_digest,
        digest.sim_digest,
        if digest.matches {
            "match ✓"
        } else {
            "MISMATCH"
        }
    );

    let (status, body) = client
        .get("/metrics")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics answered {status}: {body}"));
    }
    let server: ses_server::MetricsReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /metrics body: {e}"))?;

    let durability = durability_sweep(smoke, shards, seed)?;
    let healthy = summary.errors == 0 && digest.matches && digest.utility_bits_match;
    let report = ServerBenchReport {
        loadgen: summary,
        server,
        digest: Some(digest),
        durability,
    };
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!("  wrote {out}");

    handle.shutdown();
    let _ = std::fs::remove_file(&tenant_path);
    Ok(healthy)
}

/// Measures the durability cost curve: for each fsync policy, a fresh
/// WAL-backed server on a scratch directory takes the same closed-loop
/// load, and the resulting throughput + append/fsync tails become one
/// committed row. Policies run weakest-first so the `per-record` row —
/// the one that pays a sync per event — closes the table.
fn durability_sweep(smoke: bool, shards: usize, seed: u64) -> Result<Vec<DurabilityRow>, String> {
    let policies = [
        FsyncPolicy::Off,
        FsyncPolicy::Interval { millis: 25 },
        FsyncPolicy::PerRecord,
    ];
    let mut rows = Vec::new();
    for policy in policies {
        let tag = policy.label().replace(':', "-");
        let wal_dir =
            std::env::temp_dir().join(format!("bench-server-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let handle = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards,
            seed,
            wal_dir: Some(wal_dir.clone()),
            fsync: policy,
            ..ServerConfig::default()
        })
        .map_err(|e| format!("bind durable server ({tag}): {e}"))?;
        let summary = ses_server::loadgen::run(&LoadgenConfig {
            addr: handle.addr().to_string(),
            clients: if smoke { 2 } else { 4 },
            requests: if smoke { 100 } else { 500 },
            seed,
            ..LoadgenConfig::default()
        })?;
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&wal_dir);
        let wal = summary
            .wal
            .as_ref()
            .ok_or_else(|| format!("durable server ({tag}) reported no wal metrics"))?;
        let row = DurabilityRow {
            policy: wal.policy.clone(),
            req_per_sec: summary.req_per_sec,
            p50_micros: summary.p50_micros,
            p99_micros: summary.p99_micros,
            durable_acks: wal.durable_acks,
            append_p99_micros: wal.append.as_ref().map_or(0, |l| l.p99_micros),
            fsync_p99_micros: wal.fsync.as_ref().map_or(0, |l| l.p99_micros),
        };
        println!(
            "  durability [{}] {:>8.0} req/s — p99 {} µs, append p99 {} µs, fsync p99 {} µs, \
             {} durable acks",
            row.policy,
            row.req_per_sec,
            row.p99_micros,
            row.append_p99_micros,
            row.fsync_p99_micros,
            row.durable_acks
        );
        if summary.errors > 0 {
            return Err(format!(
                "durability sweep ({tag}): {} non-2xx responses",
                summary.errors
            ));
        }
        rows.push(row);
    }
    Ok(rows)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_server: FAILED (non-2xx responses or digest mismatch)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_server: {e}");
            ExitCode::FAILURE
        }
    }
}
