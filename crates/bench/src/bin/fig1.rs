//! Regenerates every panel of the paper's Figure 1.
//!
//! * Panel (a): utility vs `k` — GRD, TOP, RAND
//! * Panel (b): time vs `k`
//! * Panel (c): utility vs `|T|` (at `k = 100`)
//! * Panel (d): time vs `|T|`
//!
//! ```text
//! cargo run -p ses-bench --release --bin fig1 -- [--users N] [--seed S]
//!     [--panel a|b|c|d|all] [--ablation] [--localsearch] [--serial]
//!     [--full] [--json PATH]
//! ```
//!
//! `--users` controls the simulated population (default 3000; `--full` uses
//! the paper's 42,444 — slow). GRD cost is linear in `|U|`, so subsampling
//! rescales both axes uniformly without changing orderings (EXPERIMENTS.md).

use ses_bench::harness::{run_sweep, HarnessConfig};
use ses_bench::report::{panel_table, write_json, PanelMetric};
use ses_core::SchedulerSpec;
use ses_datagen::sweep::paper_sweeps;
use ses_ebsn::{generate, interest_stats, overlap_stats, GeneratorConfig};
use std::process::ExitCode;

struct Args {
    users: usize,
    seed: u64,
    panels: Vec<char>,
    ablation: bool,
    localsearch: bool,
    serial: bool,
    threads: usize,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        users: 3000,
        seed: 0,
        panels: vec!['a', 'b', 'c', 'd'],
        ablation: false,
        localsearch: false,
        serial: false,
        threads: 1,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--users" => {
                args.users = it
                    .next()
                    .ok_or("--users needs a value")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--panel" => {
                let p = it.next().ok_or("--panel needs a value")?;
                args.panels = match p.as_str() {
                    "all" => vec!['a', 'b', 'c', 'd'],
                    one if one.len() == 1 && "abcd".contains(one) => {
                        vec![one.chars().next().unwrap()]
                    }
                    other => return Err(format!("unknown panel '{other}'")),
                };
            }
            "--ablation" => args.ablation = true,
            "--localsearch" => args.localsearch = true,
            "--serial" => args.serial = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--full" => args.users = 42_444,
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--help" | "-h" => {
                println!(
                    "fig1 — regenerate Fig. 1 of 'Social Event Scheduling' (ICDE 2018)\n\
                     options: --users N | --seed S | --panel a|b|c|d|all | --ablation\n\
                     \x20        --localsearch | --serial | --threads N | --full | --json PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig1: {e}");
            return ExitCode::FAILURE;
        }
    };

    // --- dataset ---------------------------------------------------------
    let mut gen_cfg = GeneratorConfig::meetup_california_scaled(args.users);
    gen_cfg.seed = args.seed;
    // The k-sweep needs |E| = 2·500 candidates plus a competing pool; keep a
    // healthy margin at small population scales.
    gen_cfg.num_events = gen_cfg.num_events.max(1500);
    eprintln!(
        "[fig1] generating Meetup-like dataset: {} members, {} events …",
        gen_cfg.num_members, gen_cfg.num_events
    );
    let dataset = generate(&gen_cfg);
    let overlap = overlap_stats(&dataset);
    let interest = interest_stats(&dataset, 20_000, args.seed);
    eprintln!("[fig1] dataset: {}", dataset.summary());
    eprintln!(
        "[fig1] calibration: mean concurrent events = {:.2} (paper: 8.1), \
         interest nonzero fraction = {:.3}, mean nonzero Jaccard = {:.3}",
        overlap.mean_concurrent, interest.nonzero_fraction, interest.mean_nonzero_interest
    );

    // --- sweeps ----------------------------------------------------------
    let mut algos = SchedulerSpec::paper_set();
    if args.ablation {
        algos.push(SchedulerSpec::GreedyHeap);
    }
    if args.localsearch {
        algos.push(SchedulerSpec::GreedyLocalSearch);
    }
    let cfg = HarnessConfig {
        algos,
        parallel: !args.serial,
        seed: args.seed,
        threads: args.threads,
    };
    let (k_cells, t_cells) = paper_sweeps(args.seed);

    let need_k = args.panels.iter().any(|&p| p == 'a' || p == 'b');
    let need_t = args.panels.iter().any(|&p| p == 'c' || p == 'd');

    let mut all_rows = Vec::new();
    let k_rows = if need_k {
        eprintln!(
            "[fig1] running k sweep ({} cells × {} algos) …",
            k_cells.len(),
            cfg.algos.len()
        );
        let rows = run_sweep(&dataset, &k_cells, &cfg);
        all_rows.extend(rows.clone());
        rows
    } else {
        Vec::new()
    };
    let t_rows = if need_t {
        eprintln!(
            "[fig1] running |T| sweep ({} cells × {} algos) …",
            t_cells.len(),
            cfg.algos.len()
        );
        let rows = run_sweep(&dataset, &t_cells, &cfg);
        all_rows.extend(rows.clone());
        rows
    } else {
        Vec::new()
    };

    // --- panels ----------------------------------------------------------
    for &panel in &args.panels {
        let table = match panel {
            'a' => panel_table("Fig 1a: utility vs k", &k_rows, PanelMetric::Utility),
            'b' => panel_table("Fig 1b: time vs k", &k_rows, PanelMetric::TimeMillis),
            'c' => panel_table("Fig 1c: utility vs |T|", &t_rows, PanelMetric::Utility),
            'd' => panel_table("Fig 1d: time vs |T|", &t_rows, PanelMetric::TimeMillis),
            _ => unreachable!("validated in parse_args"),
        };
        println!("{table}");
    }
    // Hardware-independent companion tables for the time panels.
    if args.panels.contains(&'b') && !k_rows.is_empty() {
        println!(
            "{}",
            panel_table(
                "Fig 1b (op counts): score evaluations vs k",
                &k_rows,
                PanelMetric::ScoreEvaluations
            )
        );
    }
    if args.panels.contains(&'d') && !t_rows.is_empty() {
        println!(
            "{}",
            panel_table(
                "Fig 1d (op counts): score evaluations vs |T|",
                &t_rows,
                PanelMetric::ScoreEvaluations
            )
        );
    }

    if let Some(path) = &args.json {
        if let Err(e) = write_json(path, &all_rows) {
            eprintln!("fig1: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[fig1] wrote {} rows to {path}", all_rows.len());
    }
    ExitCode::SUCCESS
}
