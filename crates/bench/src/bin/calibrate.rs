//! Prints the calibration statistics of a generated dataset against the
//! numbers the paper extracts from the Meetup dumps (§IV-A):
//! mean concurrent events (paper: 8.1), spatio-temporal conflict rate
//! (behind the 25-locations choice) and Jaccard interest sparsity.
//!
//! ```text
//! cargo run -p ses-bench --release --bin calibrate -- [--users N] [--seed S]
//! ```

use ses_ebsn::{
    estimate_slot_activity, generate, interest_stats, mean_activity_by_slot, overlap_stats,
    slot_label, GeneratorConfig, SmoothingConfig, SLOTS_PER_WEEK,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut users = 3000usize;
    let mut seed = 0u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--users" => users = it.next().and_then(|v| v.parse().ok()).unwrap_or(users),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--full" => users = 42_444,
            other => {
                eprintln!("calibrate: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut cfg = GeneratorConfig::meetup_california_scaled(users);
    cfg.seed = seed;
    let ds = generate(&cfg);
    println!("dataset: {}", ds.summary());

    let o = overlap_stats(&ds);
    println!("\n== temporal overlap (paper measures 8.1 mean concurrent) ==");
    println!("mean concurrent events : {:.2}", o.mean_concurrent);
    println!("max concurrent events  : {}", o.max_concurrent);
    println!(
        "temporal conflicts     : {:.4}% of event pairs",
        o.temporal_conflict_fraction * 100.0
    );
    println!(
        "spatio-temporal        : {:.4}% of event pairs (basis for 25 locations)",
        o.spatiotemporal_conflict_fraction * 100.0
    );

    let i = interest_stats(&ds, 50_000, seed);
    println!("\n== Jaccard interest sparsity ==");
    println!("nonzero fraction       : {:.3}", i.nonzero_fraction);
    println!("mean interest          : {:.4}", i.mean_interest);
    println!("mean nonzero interest  : {:.4}", i.mean_nonzero_interest);

    let profile = estimate_slot_activity(&ds, SmoothingConfig::default());
    let means = mean_activity_by_slot(&profile);
    println!("\n== estimated σ by weekly slot (from simulated check-ins) ==");
    for (s, mean) in means.iter().enumerate().take(SLOTS_PER_WEEK) {
        println!("{:<14} {:.4}", slot_label(s), mean);
    }
    ExitCode::SUCCESS
}
