//! Records the engine perf trajectory and gates it in CI: release-mode GRD
//! and GRD-PQ (CELF lazy) solves over the Fig. 1 `k` sweep, columnar engine
//! vs the frozen hash-map baseline (`ses_bench::baseline`), plus a
//! users-axis sweep (10k → 1M members on the sparse-population family) that
//! records the blocked layout's resident bytes and slot counts per cell —
//! all written as `BENCH_engine.json` at the repo root.
//!
//! ```text
//! cargo run --release -p ses-bench --bin bench_engine -- \
//!     [--users N] [--seed S] [--threads N] [--smoke] [--check] \
//!     [--committed PATH] [--out PATH]
//! ```
//!
//! Per cell the report carries utility, wall-clock millis, the
//! hardware-independent `score_evaluations` / `posting_visits` counters and
//! a speedup: GRD cells compare against the frozen hash-map baseline,
//! GRD-PQ cells against the *same cell's* eager columnar GRD — so the lazy
//! saving is legible separately from the layout saving. Every cell's Ω is
//! checked against the from-scratch `evaluate_schedule` oracle before it is
//! accepted.
//!
//! Full runs additionally embed a `smoke_reference` section: the operation
//! counters of the small CI sweep (`--smoke` sizing), which are
//! deterministic and hardware-independent. `--check` is the CI
//! perf-regression gate: it re-runs the smoke sweep and exits non-zero if
//! any cell's `score_evaluations`/`posting_visits` exceed the committed
//! reference by more than 10%, or its utility drifts. `--smoke` alone (and
//! `--check`, without an explicit `--out`) writes to a temp path so neither
//! can clobber the committed `BENCH_engine.json` with throwaway numbers.

use serde::{Deserialize, Serialize};
use ses_bench::baseline::greedy_hashmap;
use ses_core::{evaluate_schedule, registry, SchedulerSpec};
use ses_datagen::pipeline::build_instance;
use ses_datagen::sweep::k_sweep;
use ses_datagen::synthetic::sparse_population;
use ses_ebsn::{generate, GeneratorConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Headroom the `--check` gate grants over the committed counters before it
/// fails: counters are deterministic, so the slack only absorbs *intended*
/// small regressions between reference regenerations, never noise.
const CHECK_HEADROOM: f64 = 1.10;

/// Relative utility drift `--check` tolerates against the committed
/// reference (the in-run oracle check is tighter still).
const CHECK_UTILITY_TOL: f64 = 1e-6;

/// User-universe size of the smoke/CI sweep.
const SMOKE_USERS: usize = 400;

/// `k` values of the smoke/CI sweep (the full sweep is Fig. 1's).
const SMOKE_KS: &[usize] = &[20, 40];

/// Users-axis sweep of the full run: the sparse-population family through a
/// million members at fixed `k` — the regime the blocked column layout
/// exists for (resident bytes must scale with nnz, not `|T|·|union|`).
const USERS_AXIS: &[usize] = &[10_000, 100_000, 1_000_000];

/// Fixed `k` of the full users-axis sweep.
const USERS_AXIS_K: usize = 20;

/// Users-axis values of the smoke/CI sweep (counters and resident bytes are
/// deterministic, so `--check` pins these cells like the k-sweep ones).
const SMOKE_USERS_AXIS: &[usize] = &[2_000, 8_000];

/// Fixed `k` of the smoke users-axis sweep.
const SMOKE_USERS_AXIS_K: usize = 10;

/// Interests per user / active intervals per user of the users-axis family
/// (`sparse_population`): a few postings and a short activity window each,
/// so nnz grows linearly in users while the dense-equivalent layout grows
/// as `|T| · union`.
const USERS_AXIS_INTERESTS: usize = 3;
const USERS_AXIS_ACTIVE: usize = 3;

/// Shape of the pack→cold-open comparison universe (full runs): the
/// acceptance sizing — 100k sparse users.
const STORE_COLD_OPEN_USERS: usize = 100_000;
/// Users for the workload-profile cold-open row: the same generator family
/// `ses serve` boots for its default tenant, sized so one timing round
/// stays in the hundreds of milliseconds on the bench host.
const STORE_WORKLOAD_USERS: usize = 30_000;
/// Interleaved timing rounds per store row; each row records the *minimum*
/// rebuild and cold-open wall clocks across rounds. The bench host is a
/// single shared core with wildly variable steal time, so a minimum over
/// interleaved rounds is the only estimator that compares like with like.
const STORE_TIMING_ROUNDS: usize = 3;
/// Sparse-row population shape, matching the `ses pack` CLI defaults.
const STORE_SPARSE_INTERESTS: usize = 8;
const STORE_SPARSE_ACTIVE: usize = 6;
const STORE_COLD_OPEN_EVENTS: usize = 400;
const STORE_COLD_OPEN_INTERVALS: usize = 64;

/// Greedy schedule size of the cold-open Ω bit-match check.
const STORE_COLD_OPEN_K: usize = 32;

/// One (cell × algorithm) comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineCell {
    axis: String,
    value: f64,
    algorithm: String,
    /// Columnar Ω (equals the oracle's within float accumulation noise).
    utility: f64,
    /// Ω recomputed from scratch by the `evaluate_schedule` oracle.
    oracle_utility: f64,
    millis: f64,
    score_evaluations: u64,
    posting_visits: u64,
    scheduled: usize,
    /// Wall-clock millis of this cell's baseline: the frozen hash-map
    /// engine for GRD rows, the same cell's eager columnar GRD for GRD-PQ
    /// rows.
    baseline_millis: f64,
    /// `baseline_millis / millis`. Users-axis cells have no hash-map
    /// baseline (the dense-era layout does not fit at that scale — the
    /// point of the axis), so their GRD rows carry `0.0`.
    speedup: f64,
    /// Resident `(t, rank)` slots of the cell's engine (blocked layout
    /// nnz). Absent in pre-PR-8 JSON.
    #[serde(default)]
    column_slots: u64,
    /// Slots a dense uniform-stride layout would have held (`|T|·stride`).
    #[serde(default)]
    dense_slots: u64,
    /// Resident engine bytes (columns + runs).
    #[serde(default)]
    resident_bytes: u64,
    /// Wall-clock millis spent building the slot index/columns/runs.
    #[serde(default)]
    build_millis: f64,
}

/// The deterministic small-sweep counters the CI `--check` gate compares
/// against (hardware-independent, so committed numbers hold on any runner).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SmokeReference {
    users: usize,
    seed: u64,
    cells: Vec<EngineCell>,
}

/// One cold-open vs rebuild comparison row for the packed instance store
/// (DESIGN.md §12). The packed file is written once; then rebuild (run the
/// generator again) and cold-open (reopen the file) alternate for
/// [`STORE_TIMING_ROUNDS`] rounds and the row records each side's minimum.
/// The reopened instance must reproduce greedy Ω and the engine's
/// deterministic memory accounting bit for bit — the booleans are a gate,
/// the wall clocks are the evidence. Two rows are recorded: the `sparse`
/// pack-profile universe (cheap RNG generator — the store's worst case)
/// and the `workload` profile `ses serve` actually boots, where the dense
/// generation pass is what cold-open avoids.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreColdOpen {
    profile: String,
    users: usize,
    events: usize,
    intervals: usize,
    seed: u64,
    /// Size of the packed file on disk.
    packed_bytes: u64,
    /// Wall-clock millis to build the instance from the generator.
    rebuild_millis: f64,
    /// Wall-clock millis to cold-open the packed file.
    cold_open_millis: f64,
    /// `rebuild_millis / cold_open_millis` (both side's round minima).
    speedup: f64,
    /// Greedy Ω at [`STORE_COLD_OPEN_K`] identical to the last bit.
    omega_bits_match: bool,
    /// Engine slot/byte accounting identical (wall-clock `build_millis`
    /// excluded — it is the one nondeterministic stat).
    memory_stats_match: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineReport {
    generator: String,
    users: usize,
    seed: u64,
    threads: usize,
    smoke: bool,
    cells: Vec<EngineCell>,
    /// Per-algorithm speedup at each algorithm's largest k-sweep cell: GRD
    /// against the frozen hash-map baseline, GRD-PQ against the same cell's
    /// eager columnar GRD — so lazy gains are first-class in the
    /// trajectory, not folded into a GRD-only scalar.
    largest_cell_speedup: BTreeMap<String, f64>,
    /// Lazy GRD-PQ score evaluations at the largest sweep cell vs eager
    /// GRD's (strictly fewer with identical utility).
    lazy_eval_ratio_at_max_k: f64,
    #[serde(default)]
    smoke_reference: Option<SmokeReference>,
    /// Pack→cold-open rows; full runs only (empty under `--smoke`/`--check`,
    /// so the gate compares the same sections it always did).
    #[serde(default)]
    store: Vec<StoreColdOpen>,
}

struct Args {
    users: usize,
    seed: u64,
    threads: usize,
    smoke: bool,
    check: bool,
    /// Run the sweep inside an active trace scope and, under `--check`,
    /// demand *bit-identical* counters and utility against the committed
    /// reference — the tracing-overhead gate: span recording must never
    /// change what the engine computes, only observe it.
    spans: bool,
    committed: String,
    out: Option<String>,
}

impl Args {
    /// `--out` if given; otherwise the committed trajectory file for full
    /// runs, and a temp path for `--smoke`/`--check` — so the documented CI
    /// invocations can never clobber the committed `BENCH_engine.json`
    /// with throwaway numbers.
    fn out_path(&self) -> String {
        match (&self.out, self.smoke || self.check) {
            (Some(path), _) => path.clone(),
            (None, false) => "BENCH_engine.json".to_owned(),
            (None, true) => std::env::temp_dir()
                .join("BENCH_engine_smoke.json")
                .to_string_lossy()
                .into_owned(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        users: 3000,
        seed: 0,
        threads: 1,
        smoke: false,
        check: false,
        spans: false,
        committed: "BENCH_engine.json".to_owned(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--users" => {
                args.users = it
                    .next()
                    .ok_or("--users needs a value")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--spans" => args.spans = true,
            "--committed" => args.committed = it.next().ok_or("--committed needs a path")?,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                println!(
                    "bench_engine — record/gate the engine perf trajectory (BENCH_engine.json)\n\
                     options: --users N | --seed S | --threads N | --smoke | --check \
                     | --spans | --committed PATH | --out PATH\n\
                     --check re-runs the smoke sweep and fails if counters regress >10% \
                     against the committed BENCH_engine.json\n\
                     --spans runs the sweep inside an active trace scope; with --check the \
                     gate tightens to bit-identical counters and utility (tracing overhead \
                     must be observational only)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.smoke || args.check {
        args.users = args.users.min(SMOKE_USERS);
    }
    Ok(args)
}

/// Runs the GRD + GRD-PQ sweep over `k_values` on a fresh dataset of
/// `users` members; every cell's Ω is verified against the
/// `evaluate_schedule` oracle.
fn build_cells(
    users: usize,
    seed: u64,
    threads: usize,
    k_values: &[usize],
) -> Result<Vec<EngineCell>, String> {
    let max_k = *k_values.last().expect("sweep is non-empty");
    let mut gen_cfg = GeneratorConfig::meetup_california_scaled(users);
    gen_cfg.seed = seed;
    // Each cell samples |E| = 2k candidates plus a competing pool.
    gen_cfg.num_events = gen_cfg.num_events.max(2 * max_k + max_k / 2 + 10);
    eprintln!(
        "[bench_engine] dataset: {} members, {} events (seed {seed})",
        gen_cfg.num_members, gen_cfg.num_events
    );
    let dataset = generate(&gen_cfg);

    let mut cells = Vec::new();
    for cell in k_sweep(k_values, seed) {
        let built = build_instance(&dataset, &cell.config)
            .map_err(|e| format!("cell k={} failed to build: {e}", cell.value))?;
        let mut cell_rows: Vec<EngineCell> = Vec::new();
        for spec in [SchedulerSpec::Greedy, SchedulerSpec::GreedyHeap] {
            let scheduler = registry::build_threaded(spec, threads);
            let outcome = scheduler
                .run(&built.instance, cell.config.k)
                .expect("k ≤ |E| by construction");
            let oracle = evaluate_schedule(&built.instance, &outcome.schedule);
            let drift = (outcome.total_utility - oracle.total_utility).abs()
                / oracle.total_utility.abs().max(1.0);
            if drift > 1e-9 {
                return Err(format!(
                    "{} Ω {} drifted from oracle {} at k={} (rel {drift:.2e})",
                    spec.name(),
                    outcome.total_utility,
                    oracle.total_utility,
                    cell.value
                ));
            }
            let millis = outcome.stats.elapsed.as_secs_f64() * 1e3;
            // GRD rows: the frozen hash-map engine is the baseline.
            // GRD-PQ rows: this cell's eager columnar GRD is the baseline,
            // isolating the lazy saving from the layout saving.
            let baseline_millis = match spec {
                SchedulerSpec::Greedy => greedy_hashmap(&built.instance, cell.config.k).millis,
                _ => cell_rows
                    .first()
                    .map(|grd: &EngineCell| grd.millis)
                    .unwrap_or(0.0),
            };
            let row = EngineCell {
                axis: cell.axis.clone(),
                value: cell.value,
                algorithm: spec.name().to_owned(),
                utility: outcome.total_utility,
                oracle_utility: oracle.total_utility,
                millis,
                score_evaluations: outcome.stats.engine.score_evaluations,
                posting_visits: outcome.stats.engine.posting_visits,
                scheduled: outcome.len(),
                baseline_millis,
                speedup: baseline_millis / millis.max(1e-9),
                column_slots: outcome.stats.memory.column_slots,
                dense_slots: outcome.stats.memory.dense_slots,
                resident_bytes: outcome.stats.memory.total_resident_bytes(),
                build_millis: outcome.stats.memory.build_millis,
            };
            eprintln!(
                "[bench_engine] k={:>3} {:>6}: {:>9.2} ms vs baseline {:>9.2} ms ({:.2}x), \
                 Ω = {:.3}, {} score evals, {} posting visits",
                cell.value,
                row.algorithm,
                row.millis,
                row.baseline_millis,
                row.speedup,
                row.utility,
                row.score_evaluations,
                row.posting_visits
            );
            cell_rows.push(row);
        }
        cells.extend(cell_rows);
    }
    Ok(cells)
}

/// The users-axis sweep: GRD + GRD-PQ on the `sparse_population` family at
/// fixed `k`, one cell per universe size. There is no hash-map baseline row
/// at this scale — the dense-era layout is exactly what these cells prove
/// unnecessary — so GRD rows carry speedup 0 and GRD-PQ rows still compare
/// against the same cell's eager GRD. Resident bytes and slot counts come
/// from the engine's own exact accounting, so they are deterministic and
/// `--check`-pinnable like the operation counters.
fn build_users_cells(
    users_values: &[usize],
    k: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<EngineCell>, String> {
    let num_events = 2 * k;
    let num_intervals = 3 * k / 2;
    let mut cells = Vec::new();
    for &users in users_values {
        let inst = sparse_population(
            users,
            num_events,
            num_intervals,
            USERS_AXIS_INTERESTS,
            USERS_AXIS_ACTIVE,
            seed,
        );
        let mut cell_rows: Vec<EngineCell> = Vec::new();
        for spec in [SchedulerSpec::Greedy, SchedulerSpec::GreedyHeap] {
            let scheduler = registry::build_threaded(spec, threads);
            let outcome = scheduler.run(&inst, k).expect("k ≤ |E| by construction");
            let oracle = evaluate_schedule(&inst, &outcome.schedule);
            let drift = (outcome.total_utility - oracle.total_utility).abs()
                / oracle.total_utility.abs().max(1.0);
            if drift > 1e-9 {
                return Err(format!(
                    "{} Ω {} drifted from oracle {} at users={users} (rel {drift:.2e})",
                    spec.name(),
                    outcome.total_utility,
                    oracle.total_utility,
                ));
            }
            let millis = outcome.stats.elapsed.as_secs_f64() * 1e3;
            let baseline_millis = match spec {
                SchedulerSpec::Greedy => 0.0,
                _ => cell_rows
                    .first()
                    .map(|grd: &EngineCell| grd.millis)
                    .unwrap_or(0.0),
            };
            let mem = outcome.stats.memory;
            let row = EngineCell {
                axis: "users".to_owned(),
                value: users as f64,
                algorithm: spec.name().to_owned(),
                utility: outcome.total_utility,
                oracle_utility: oracle.total_utility,
                millis,
                score_evaluations: outcome.stats.engine.score_evaluations,
                posting_visits: outcome.stats.engine.posting_visits,
                scheduled: outcome.len(),
                baseline_millis,
                speedup: if baseline_millis > 0.0 {
                    baseline_millis / millis.max(1e-9)
                } else {
                    0.0
                },
                column_slots: mem.column_slots,
                dense_slots: mem.dense_slots,
                resident_bytes: mem.total_resident_bytes(),
                build_millis: mem.build_millis,
            };
            eprintln!(
                "[bench_engine] users={users:>9} {:>6}: {:>9.2} ms (build {:>7.2} ms), \
                 Ω = {:.3}, {} slots of {} dense ({:.1}%), {:.1} MiB resident",
                row.algorithm,
                row.millis,
                row.build_millis,
                row.utility,
                row.column_slots,
                row.dense_slots,
                100.0 * row.column_slots as f64 / row.dense_slots.max(1) as f64,
                row.resident_bytes as f64 / (1024.0 * 1024.0),
            );
            cell_rows.push(row);
        }
        cells.extend(cell_rows);
    }
    Ok(cells)
}

/// The `--check` gate: every fresh smoke cell must stay within
/// [`CHECK_HEADROOM`] of the committed reference counters and within
/// [`CHECK_UTILITY_TOL`] of the committed utility — and every *committed*
/// cell must have been re-measured, so a sweep that silently stops
/// producing rows (an algorithm dropped from the loop) cannot pass
/// vacuously. Returns the violations.
fn check_against_reference(fresh: &[EngineCell], reference: &SmokeReference) -> Vec<String> {
    let mut violations = Vec::new();
    for committed in &reference.cells {
        if !fresh.iter().any(|c| {
            c.algorithm == committed.algorithm
                && c.axis == committed.axis
                && c.value == committed.value
        }) {
            violations.push(format!(
                "committed reference cell {} {}={} was not re-measured by this sweep",
                committed.algorithm, committed.axis, committed.value
            ));
        }
    }
    for cell in fresh {
        let Some(committed) = reference.cells.iter().find(|c| {
            c.algorithm == cell.algorithm && c.axis == cell.axis && c.value == cell.value
        }) else {
            violations.push(format!(
                "{} {}={} has no committed reference cell — regenerate BENCH_engine.json",
                cell.algorithm, cell.axis, cell.value
            ));
            continue;
        };
        let eval_limit = (committed.score_evaluations as f64 * CHECK_HEADROOM) as u64;
        if cell.score_evaluations > eval_limit {
            violations.push(format!(
                "{} {}={}: score_evaluations {} exceed committed {} by >{:.0}% (limit {})",
                cell.algorithm,
                cell.axis,
                cell.value,
                cell.score_evaluations,
                committed.score_evaluations,
                (CHECK_HEADROOM - 1.0) * 100.0,
                eval_limit
            ));
        }
        let visit_limit = (committed.posting_visits as f64 * CHECK_HEADROOM) as u64;
        if cell.posting_visits > visit_limit {
            violations.push(format!(
                "{} {}={}: posting_visits {} exceed committed {} by >{:.0}% (limit {})",
                cell.algorithm,
                cell.axis,
                cell.value,
                cell.posting_visits,
                committed.posting_visits,
                (CHECK_HEADROOM - 1.0) * 100.0,
                visit_limit
            ));
        }
        let drift = (cell.utility - committed.utility).abs() / committed.utility.abs().max(1.0);
        if drift > CHECK_UTILITY_TOL {
            violations.push(format!(
                "{} {}={}: utility {} drifted from committed {} (rel {drift:.2e})",
                cell.algorithm, cell.axis, cell.value, cell.utility, committed.utility
            ));
        }
        // Memory accounting is exact byte arithmetic, not a measurement:
        // any change is a layout change and must come with a regenerated
        // reference. (Zero committed slots means a pre-PR-8 reference.)
        if committed.column_slots != 0
            && (cell.column_slots != committed.column_slots
                || cell.resident_bytes != committed.resident_bytes)
        {
            violations.push(format!(
                "{} {}={}: resident layout {} slots / {} bytes differs from committed \
                 {} slots / {} bytes — regenerate BENCH_engine.json",
                cell.algorithm,
                cell.axis,
                cell.value,
                cell.column_slots,
                cell.resident_bytes,
                committed.column_slots,
                committed.resident_bytes
            ));
        }
    }
    violations
}

/// The `--check --spans` tightening: with a trace scope active the engine
/// must do *exactly* the committed work — identical counters and identical
/// utility bits. Any drift means span recording leaked into the computation
/// (an allocation, a reordered float sum, a skipped candidate) rather than
/// merely observing it.
fn check_bit_identical(fresh: &[EngineCell], reference: &SmokeReference) -> Vec<String> {
    let mut violations = Vec::new();
    for cell in fresh {
        let Some(committed) = reference.cells.iter().find(|c| {
            c.algorithm == cell.algorithm && c.axis == cell.axis && c.value == cell.value
        }) else {
            violations.push(format!(
                "{} k={} has no committed reference cell — regenerate BENCH_engine.json",
                cell.algorithm, cell.value
            ));
            continue;
        };
        if cell.score_evaluations != committed.score_evaluations
            || cell.posting_visits != committed.posting_visits
        {
            violations.push(format!(
                "{} k={}: counters with spans enabled ({} evals / {} visits) are not \
                 bit-identical to committed ({} / {})",
                cell.algorithm,
                cell.value,
                cell.score_evaluations,
                cell.posting_visits,
                committed.score_evaluations,
                committed.posting_visits
            ));
        }
        if cell.utility.to_bits() != committed.utility.to_bits() {
            violations.push(format!(
                "{} k={}: utility {} with spans enabled differs in bits from committed {}",
                cell.algorithm, cell.value, cell.utility, committed.utility
            ));
        }
    }
    violations
}

/// Measures one store row: builds the universe, packs it to a temp file,
/// then alternates generator rebuilds and cold opens for
/// [`STORE_TIMING_ROUNDS`] rounds (recording each side's minimum), and
/// compares greedy Ω and engine memory accounting bit for bit between the
/// first build and the first reopen. The wall clocks are reporting; the
/// bit-match booleans are the gate.
fn measure_store_profile(
    profile: &str,
    users: usize,
    events: usize,
    intervals: usize,
    seed: u64,
    build: &dyn Fn() -> std::sync::Arc<ses_core::SesInstance>,
) -> Result<StoreColdOpen, String> {
    let built = build();
    let path =
        std::env::temp_dir().join(format!("bench-engine-cold-open-{profile}-{seed}.sesstore"));
    let packed_bytes = ses_core::store::pack_to_path(&built, &path).map_err(|e| e.to_string())?;

    let open_start = std::time::Instant::now();
    let reopened = ses_core::store::open_path(&path).map_err(|e| e.to_string())?;
    let mut cold_open_millis = open_start.elapsed().as_secs_f64() * 1e3;
    let mut rebuild_millis = f64::INFINITY;
    for _ in 0..STORE_TIMING_ROUNDS {
        let rebuild_start = std::time::Instant::now();
        let again = build();
        rebuild_millis = rebuild_millis.min(rebuild_start.elapsed().as_secs_f64() * 1e3);
        drop(again);
        let open_start = std::time::Instant::now();
        let again = ses_core::store::open_path(&path).map_err(|e| e.to_string())?;
        cold_open_millis = cold_open_millis.min(open_start.elapsed().as_secs_f64() * 1e3);
        drop(again);
    }
    std::fs::remove_file(&path).ok();

    let solve_built = registry::build(SchedulerSpec::Greedy)
        .run(&built, STORE_COLD_OPEN_K)
        .map_err(|e| e.to_string())?;
    let solve_reopened = registry::build(SchedulerSpec::Greedy)
        .run(&reopened, STORE_COLD_OPEN_K)
        .map_err(|e| e.to_string())?;
    let omega_bits_match =
        solve_built.total_utility.to_bits() == solve_reopened.total_utility.to_bits();

    let stats_built = ses_core::AttendanceEngine::new(&built).memory_stats();
    let stats_reopened = ses_core::AttendanceEngine::new(&reopened).memory_stats();
    let memory_stats_match = stats_built.column_slots == stats_reopened.column_slots
        && stats_built.dense_slots == stats_reopened.dense_slots
        && stats_built.resident_column_bytes == stats_reopened.resident_column_bytes
        && stats_built.run_bytes == stats_reopened.run_bytes;

    Ok(StoreColdOpen {
        profile: profile.to_owned(),
        users,
        events,
        intervals,
        seed,
        packed_bytes,
        rebuild_millis,
        cold_open_millis,
        speedup: rebuild_millis / cold_open_millis.max(1e-6),
        omega_bits_match,
        memory_stats_match,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    let k_values: &[usize] = if args.smoke || args.check {
        SMOKE_KS
    } else {
        &[100, 300, 500]
    };

    // `--spans` runs the sweep under an active trace scope so every engine
    // span is recorded with a live trace id — the worst case for the
    // recording path. Spans themselves are always on; the scope only makes
    // them attributable (and thus collectable).
    let trace = args.spans.then(ses_obs::TraceId::generate);
    let (users_axis, users_axis_k): (&[usize], usize) = if args.smoke || args.check {
        (SMOKE_USERS_AXIS, SMOKE_USERS_AXIS_K)
    } else {
        (USERS_AXIS, USERS_AXIS_K)
    };
    let cells = {
        let _scope = trace.map(ses_obs::trace_scope);
        let mut cells = match build_cells(args.users, args.seed, args.threads, k_values) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("bench_engine: {e}");
                return ExitCode::FAILURE;
            }
        };
        match build_users_cells(users_axis, users_axis_k, args.seed, args.threads) {
            Ok(users_cells) => cells.extend(users_cells),
            Err(e) => {
                eprintln!("bench_engine: {e}");
                return ExitCode::FAILURE;
            }
        }
        cells
    };
    if let Some(id) = trace {
        eprintln!(
            "[bench_engine] trace {id}: {} spans recorded during the sweep",
            ses_obs::collect_trace(id).len()
        );
    }

    // Full runs re-measure the CI smoke sweep too, so the committed file
    // always carries the reference counters `--check` gates against.
    let smoke_reference = if args.smoke || args.check {
        None
    } else {
        eprintln!("[bench_engine] recording the smoke-sweep reference counters");
        let smoke_cells = build_cells(args.users.min(SMOKE_USERS), args.seed, 1, SMOKE_KS)
            .and_then(|mut cells| {
                cells.extend(build_users_cells(
                    SMOKE_USERS_AXIS,
                    SMOKE_USERS_AXIS_K,
                    args.seed,
                    1,
                )?);
                Ok(cells)
            });
        match smoke_cells {
            Ok(cells) => Some(SmokeReference {
                users: args.users.min(SMOKE_USERS),
                seed: args.seed,
                cells,
            }),
            Err(e) => {
                eprintln!("bench_engine: smoke reference failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Full runs also measure the packed store's cold-open rows; a bit
    // mismatch is a correctness failure, not a perf number.
    let store = if args.smoke || args.check {
        Vec::new()
    } else {
        let seed = args.seed;
        type UniverseBuilder = Box<dyn Fn() -> std::sync::Arc<ses_core::SesInstance>>;
        let profiles: [(&str, usize, UniverseBuilder); 2] = [
            (
                "sparse",
                STORE_COLD_OPEN_USERS,
                Box::new(move || {
                    sparse_population(
                        STORE_COLD_OPEN_USERS,
                        STORE_COLD_OPEN_EVENTS,
                        STORE_COLD_OPEN_INTERVALS,
                        STORE_SPARSE_INTERESTS,
                        STORE_SPARSE_ACTIVE,
                        seed,
                    )
                }),
            ),
            (
                "workload",
                STORE_WORKLOAD_USERS,
                Box::new(move || {
                    ses_core::testkit::workload_instance(
                        STORE_WORKLOAD_USERS,
                        STORE_COLD_OPEN_EVENTS,
                        STORE_COLD_OPEN_INTERVALS,
                        seed,
                    )
                }),
            ),
        ];
        let mut rows = Vec::new();
        for (profile, users, build) in &profiles {
            eprintln!(
                "[bench_engine] measuring pack→cold-open on the {users}-user {profile} universe"
            );
            match measure_store_profile(
                profile,
                *users,
                STORE_COLD_OPEN_EVENTS,
                STORE_COLD_OPEN_INTERVALS,
                seed,
                build.as_ref(),
            ) {
                Ok(row) => {
                    if !row.omega_bits_match || !row.memory_stats_match {
                        eprintln!(
                            "bench_engine: {profile} cold-open is not bit-exact \
                             (Ω match {}, memory match {})",
                            row.omega_bits_match, row.memory_stats_match
                        );
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "[bench_engine] {profile}: cold-open {:.1} ms vs rebuild {:.1} ms \
                         ({:.1}x, {} packed bytes, min of {STORE_TIMING_ROUNDS} rounds)",
                        row.cold_open_millis, row.rebuild_millis, row.speedup, row.packed_bytes
                    );
                    rows.push(row);
                }
                Err(e) => {
                    eprintln!("bench_engine: {profile} store cold-open failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        rows
    };

    // Per-algorithm headline: each algorithm's speedup at its largest
    // k-sweep cell (cells arrive in ascending k order, so the last insert
    // wins). Users-axis cells are excluded — they have no dense baseline.
    let mut largest_cell_speedup: BTreeMap<String, f64> = BTreeMap::new();
    for cell in cells.iter().filter(|c| c.axis == "k") {
        largest_cell_speedup.insert(cell.algorithm.clone(), cell.speedup);
    }
    let lazy_eval_ratio_at_max_k = match (
        cells
            .iter()
            .rfind(|c| c.axis == "k" && c.algorithm == "GRD"),
        cells
            .iter()
            .rfind(|c| c.axis == "k" && c.algorithm == "GRD-PQ"),
    ) {
        (Some(grd), Some(lazy)) => {
            lazy.score_evaluations as f64 / grd.score_evaluations.max(1) as f64
        }
        _ => 0.0,
    };
    let report = EngineReport {
        generator: "ses-bench bench_engine (GRD + GRD-PQ lazy, Fig. 1 k sweep)".to_owned(),
        users: args.users,
        seed: args.seed,
        threads: args.threads,
        smoke: args.smoke || args.check,
        cells,
        largest_cell_speedup,
        lazy_eval_ratio_at_max_k,
        smoke_reference,
        store,
    };
    let out = args.out_path();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("bench_engine: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let speedup_summary = report
        .largest_cell_speedup
        .iter()
        .map(|(algo, s)| format!("{algo} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    eprintln!(
        "[bench_engine] wrote {out} ({} cells, largest-cell speedups [{speedup_summary}], \
         lazy/eager evals at max k {:.3})",
        report.cells.len(),
        lazy_eval_ratio_at_max_k
    );

    if args.check {
        let committed: EngineReport = match std::fs::read_to_string(&args.committed)
            .map_err(|e| format!("cannot read {}: {e}", args.committed))
            .and_then(|text| {
                serde_json::from_str(&text)
                    .map_err(|e| format!("cannot parse {}: {e}", args.committed))
            }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_engine --check: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(reference) = committed.smoke_reference.as_ref() else {
            eprintln!(
                "bench_engine --check: {} has no smoke_reference section — \
                 regenerate it with a full run",
                args.committed
            );
            return ExitCode::FAILURE;
        };
        if reference.users != args.users || reference.seed != args.seed {
            eprintln!(
                "bench_engine --check: reference was recorded at users={} seed={}, \
                 this run used users={} seed={}",
                reference.users, reference.seed, args.users, args.seed
            );
            return ExitCode::FAILURE;
        }
        let mut violations = check_against_reference(&report.cells, reference);
        if args.spans {
            violations.extend(check_bit_identical(&report.cells, reference));
        }
        if !violations.is_empty() {
            eprintln!("bench_engine --check: perf regression gate FAILED:");
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
        if args.spans {
            eprintln!(
                "[bench_engine] --check --spans passed: {} cells bit-identical to the \
                 committed counters with tracing active",
                report.cells.len()
            );
        } else {
            eprintln!(
                "[bench_engine] --check passed: {} cells within {:.0}% of committed counters",
                report.cells.len(),
                (CHECK_HEADROOM - 1.0) * 100.0
            );
        }
    }
    ExitCode::SUCCESS
}
