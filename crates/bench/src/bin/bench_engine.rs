//! Records the engine perf trajectory: release-mode GRD solves over the
//! Fig. 1 `k` sweep, columnar engine vs the frozen hash-map baseline
//! (`ses_bench::baseline`), written as `BENCH_engine.json` at the repo root.
//!
//! ```text
//! cargo run --release -p ses-bench --bin bench_engine -- \
//!     [--users N] [--seed S] [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! Per cell the report carries utility, wall-clock millis, the
//! hardware-independent `score_evaluations` / `posting_visits` counters, the
//! baseline's millis and the resulting speedup; the columnar Ω is checked
//! against the from-scratch `evaluate_schedule` oracle before a cell is
//! accepted. `--smoke` shrinks the sweep for CI (it proves the pipeline
//! runs, not the speedup) and, without an explicit `--out`, writes to a
//! temp path so it cannot clobber the committed `BENCH_engine.json`.

use serde::Serialize;
use ses_bench::baseline::greedy_hashmap;
use ses_core::{evaluate_schedule, registry, SchedulerSpec};
use ses_datagen::pipeline::build_instance;
use ses_datagen::sweep::k_sweep;
use ses_ebsn::{generate, GeneratorConfig};
use std::process::ExitCode;

/// One (cell × layout) comparison row.
#[derive(Debug, Clone, Serialize)]
struct EngineCell {
    axis: String,
    value: f64,
    algorithm: String,
    /// Columnar Ω (equals the oracle's within float accumulation noise).
    utility: f64,
    /// Ω recomputed from scratch by the `evaluate_schedule` oracle.
    oracle_utility: f64,
    millis: f64,
    score_evaluations: u64,
    posting_visits: u64,
    scheduled: usize,
    /// Wall-clock millis of the frozen hash-map baseline on the same cell.
    baseline_millis: f64,
    /// `baseline_millis / millis`.
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct EngineReport {
    generator: String,
    users: usize,
    seed: u64,
    threads: usize,
    smoke: bool,
    cells: Vec<EngineCell>,
    /// Speedup at the largest sweep cell (the acceptance headline).
    largest_cell_speedup: f64,
}

struct Args {
    users: usize,
    seed: u64,
    threads: usize,
    smoke: bool,
    out: Option<String>,
}

impl Args {
    /// `--out` if given; otherwise the committed trajectory file for full
    /// runs, and a temp path for `--smoke` — so the documented smoke
    /// invocation can never clobber the committed `BENCH_engine.json`
    /// with throwaway numbers.
    fn out_path(&self) -> String {
        match (&self.out, self.smoke) {
            (Some(path), _) => path.clone(),
            (None, false) => "BENCH_engine.json".to_owned(),
            (None, true) => std::env::temp_dir()
                .join("BENCH_engine_smoke.json")
                .to_string_lossy()
                .into_owned(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        users: 3000,
        seed: 0,
        threads: 1,
        smoke: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--users" => {
                args.users = it
                    .next()
                    .ok_or("--users needs a value")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                println!(
                    "bench_engine — record the engine perf trajectory (BENCH_engine.json)\n\
                     options: --users N | --seed S | --threads N | --smoke | --out PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.smoke {
        args.users = args.users.min(400);
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    let k_values: &[usize] = if args.smoke {
        &[20, 40]
    } else {
        &[100, 300, 500]
    };
    let max_k = *k_values.last().expect("sweep is non-empty");

    let mut gen_cfg = GeneratorConfig::meetup_california_scaled(args.users);
    gen_cfg.seed = args.seed;
    // Each cell samples |E| = 2k candidates plus a competing pool.
    gen_cfg.num_events = gen_cfg.num_events.max(2 * max_k + max_k / 2 + 10);
    eprintln!(
        "[bench_engine] dataset: {} members, {} events (seed {})",
        gen_cfg.num_members, gen_cfg.num_events, args.seed
    );
    let dataset = generate(&gen_cfg);

    let mut cells = Vec::new();
    for cell in k_sweep(k_values, args.seed) {
        let built = match build_instance(&dataset, &cell.config) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_engine: cell k={} failed to build: {e}", cell.value);
                return ExitCode::FAILURE;
            }
        };
        let scheduler = registry::build_threaded(SchedulerSpec::Greedy, args.threads);
        let columnar = scheduler
            .run(&built.instance, cell.config.k)
            .expect("k ≤ |E| by construction");
        let oracle = evaluate_schedule(&built.instance, &columnar.schedule);
        let drift = (columnar.total_utility - oracle.total_utility).abs()
            / oracle.total_utility.abs().max(1.0);
        if drift > 1e-9 {
            eprintln!(
                "bench_engine: columnar Ω {} drifted from oracle {} (rel {drift:.2e})",
                columnar.total_utility, oracle.total_utility
            );
            return ExitCode::FAILURE;
        }
        let baseline = greedy_hashmap(&built.instance, cell.config.k);
        let millis = columnar.stats.elapsed.as_secs_f64() * 1e3;
        let row = EngineCell {
            axis: cell.axis.clone(),
            value: cell.value,
            algorithm: "GRD".to_owned(),
            utility: columnar.total_utility,
            oracle_utility: oracle.total_utility,
            millis,
            score_evaluations: columnar.stats.engine.score_evaluations,
            posting_visits: columnar.stats.engine.posting_visits,
            scheduled: columnar.len(),
            baseline_millis: baseline.millis,
            speedup: baseline.millis / millis.max(1e-9),
        };
        eprintln!(
            "[bench_engine] k={:>3}: columnar {:>9.2} ms, hashmap {:>9.2} ms ({:.2}x), \
             Ω = {:.3}, {} score evals, {} posting visits",
            cell.value,
            row.millis,
            row.baseline_millis,
            row.speedup,
            row.utility,
            row.score_evaluations,
            row.posting_visits
        );
        cells.push(row);
    }

    let largest_cell_speedup = cells.last().map(|c| c.speedup).unwrap_or(0.0);
    let report = EngineReport {
        generator: "ses-bench bench_engine (GRD, Fig. 1 k sweep)".to_owned(),
        users: args.users,
        seed: args.seed,
        threads: args.threads,
        smoke: args.smoke,
        cells,
        largest_cell_speedup,
    };
    let out = args.out_path();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("bench_engine: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[bench_engine] wrote {out} ({} cells, largest-cell speedup {:.2}x)",
        report.cells.len(),
        largest_cell_speedup
    );
    ExitCode::SUCCESS
}
