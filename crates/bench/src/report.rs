//! Result formatting: per-panel tables (the textual equivalent of the
//! paper's figure panels) and JSON dumps for downstream plotting.

use crate::harness::CellResult;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Which measurement a panel displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelMetric {
    /// Total utility Ω (Fig. 1a / 1c).
    Utility,
    /// Wall-clock milliseconds (Fig. 1b / 1d).
    TimeMillis,
    /// Hardware-independent score evaluations (supplementary).
    ScoreEvaluations,
}

impl PanelMetric {
    fn header(&self) -> &'static str {
        match self {
            PanelMetric::Utility => "utility Ω",
            PanelMetric::TimeMillis => "time (ms)",
            PanelMetric::ScoreEvaluations => "score evals",
        }
    }

    fn extract(&self, row: &CellResult) -> f64 {
        match self {
            PanelMetric::Utility => row.utility,
            PanelMetric::TimeMillis => row.millis,
            PanelMetric::ScoreEvaluations => row.score_evaluations as f64,
        }
    }
}

/// Renders one panel as an aligned text table: one row per axis value, one
/// column per algorithm (in first-appearance order).
pub fn panel_table(title: &str, rows: &[CellResult], metric: PanelMetric) -> String {
    let mut algos: Vec<String> = Vec::new();
    for r in rows {
        if !algos.contains(&r.algorithm) {
            algos.push(r.algorithm.clone());
        }
    }
    let axis = rows.first().map(|r| r.axis.clone()).unwrap_or_default();
    let values: BTreeSet<u64> = rows.iter().map(|r| r.value.round() as u64).collect();

    let mut out = String::new();
    let _ = writeln!(out, "== {title} — {} ==", metric.header());
    let _ = write!(out, "{axis:>8}");
    for a in &algos {
        let _ = write!(out, " {a:>14}");
    }
    out.push('\n');
    for v in values {
        let _ = write!(out, "{v:>8}");
        for a in &algos {
            let cell = rows
                .iter()
                .find(|r| r.value.round() as u64 == v && &r.algorithm == a)
                .map(|r| metric.extract(r));
            match cell {
                Some(x) if metric == PanelMetric::TimeMillis => {
                    let _ = write!(out, " {x:>14.2}");
                }
                Some(x) => {
                    let _ = write!(out, " {x:>14.3}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Writes all rows as JSON (array of objects) for external plotting.
pub fn write_json(path: impl AsRef<Path>, rows: &[CellResult]) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(rows).expect("rows serialize");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(axis: &str, value: f64, algo: &str, utility: f64, millis: f64) -> CellResult {
        CellResult {
            axis: axis.into(),
            value,
            algorithm: algo.into(),
            utility,
            millis,
            scheduled: 10,
            complete: true,
            score_evaluations: 100,
            posting_visits: 1000,
            updates: 5,
        }
    }

    #[test]
    fn table_lays_out_axis_by_algorithm() {
        let rows = vec![
            row("k", 100.0, "GRD", 50.0, 10.0),
            row("k", 100.0, "TOP", 20.0, 2.0),
            row("k", 200.0, "GRD", 90.0, 30.0),
            row("k", 200.0, "TOP", 35.0, 4.0),
        ];
        let t = panel_table("Fig 1a", &rows, PanelMetric::Utility);
        assert!(t.contains("Fig 1a"));
        assert!(t.contains("GRD"));
        assert!(t.contains("TOP"));
        assert!(t.contains("50.000"));
        assert!(t.contains("90.000"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + title + 2 value rows");
    }

    #[test]
    fn table_handles_missing_cells() {
        let rows = vec![
            row("k", 100.0, "GRD", 50.0, 10.0),
            row("k", 200.0, "TOP", 35.0, 4.0),
        ];
        let t = panel_table("x", &rows, PanelMetric::TimeMillis);
        assert!(t.contains('-'));
        assert!(t.contains("4.00"));
    }

    #[test]
    fn json_roundtrip() {
        let rows = vec![row("k", 100.0, "GRD", 50.0, 10.0)];
        let dir = std::env::temp_dir().join("ses_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        write_json(&path, &rows).unwrap();
        let back: Vec<CellResult> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_file(path).ok();
    }
}
