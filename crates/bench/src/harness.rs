//! Sweep execution: dataset → instances → scheduler runs → result rows.
//!
//! Algorithm selection goes through the core registry
//! ([`ses_core::registry`]): sweeps are configured with
//! [`SchedulerSpec`] values (parsed from CLI strings by the registry, never
//! string-matched here) and instantiated per cell with [`registry::build`].

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use ses_core::{registry, ScheduleOutcome, SchedulerSpec};
use ses_datagen::pipeline::build_instance;
use ses_datagen::sweep::SweepCell;
use ses_ebsn::EbsnDataset;

/// Harness settings shared by all cells of a sweep.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Algorithms to run per cell.
    pub algos: Vec<SchedulerSpec>,
    /// Run cells on scoped threads (one per cell).
    pub parallel: bool,
    /// Seed for the stochastic schedulers.
    pub seed: u64,
    /// Scoring threads *within* each scheduler run (greedy-family sweeps;
    /// see [`registry::build_threaded`]). Orthogonal to `parallel`, which
    /// spreads whole cells: use `threads > 1` with `parallel: false` when
    /// wall-clock per cell is the measurement.
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            algos: SchedulerSpec::paper_set(),
            parallel: true,
            seed: 0,
            threads: 1,
        }
    }
}

/// One (cell × algorithm) measurement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Sweep axis label ("k" or "|T|").
    pub axis: String,
    /// Axis value.
    pub value: f64,
    /// Algorithm display name.
    pub algorithm: String,
    /// Total utility Ω of the produced schedule.
    pub utility: f64,
    /// Wall-clock milliseconds of the scheduler run.
    pub millis: f64,
    /// Assignments placed (== k unless constraints bind).
    pub scheduled: usize,
    /// Whether all k assignments were placed.
    pub complete: bool,
    /// Eq. 4 evaluations performed.
    pub score_evaluations: u64,
    /// Posting entries visited.
    pub posting_visits: u64,
    /// Score updates performed after selections.
    pub updates: u64,
}

impl CellResult {
    fn from_outcome(cell: &SweepCell, spec: SchedulerSpec, outcome: &ScheduleOutcome) -> Self {
        Self {
            axis: cell.axis.clone(),
            value: cell.value,
            algorithm: spec.name().to_owned(),
            utility: outcome.total_utility,
            millis: outcome.stats.elapsed.as_secs_f64() * 1e3,
            scheduled: outcome.len(),
            complete: outcome.complete,
            score_evaluations: outcome.stats.engine.score_evaluations,
            posting_visits: outcome.stats.engine.posting_visits,
            updates: outcome.stats.updates,
        }
    }
}

fn run_cell(dataset: &EbsnDataset, cell: &SweepCell, cfg: &HarnessConfig) -> Vec<CellResult> {
    let built = build_instance(dataset, &cell.config)
        .expect("dataset sized for the sweep (harness checks up front)");
    cfg.algos
        .iter()
        .map(|&spec| {
            let scheduler = registry::build_threaded(spec.with_seed(cfg.seed), cfg.threads);
            let outcome = scheduler
                .run(&built.instance, cell.config.k)
                .expect("k ≤ |E| by construction");
            CellResult::from_outcome(cell, spec, &outcome)
        })
        .collect()
}

/// Runs every cell of a sweep over the dataset, returning rows ordered by
/// (axis value, algorithm order in `cfg.algos`).
pub fn run_sweep(
    dataset: &EbsnDataset,
    cells: &[SweepCell],
    cfg: &HarnessConfig,
) -> Vec<CellResult> {
    let results: Mutex<Vec<(usize, Vec<CellResult>)>> = Mutex::new(Vec::new());
    if cfg.parallel {
        std::thread::scope(|scope| {
            for (i, cell) in cells.iter().enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let rows = run_cell(dataset, cell, cfg);
                    results.lock().push((i, rows));
                });
            }
        });
    } else {
        for (i, cell) in cells.iter().enumerate() {
            let rows = run_cell(dataset, cell, cfg);
            results.lock().push((i, rows));
        }
    }
    let mut indexed = results.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().flat_map(|(_, rows)| rows).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_datagen::sweep::k_sweep;
    use ses_ebsn::{generate, GeneratorConfig};

    fn small_dataset() -> EbsnDataset {
        generate(&GeneratorConfig::default())
    }

    #[test]
    fn specs_parse_through_the_registry() {
        assert_eq!(
            "grd".parse::<SchedulerSpec>().unwrap(),
            SchedulerSpec::Greedy
        );
        assert_eq!(
            "GRD-PQ".parse::<SchedulerSpec>().unwrap(),
            SchedulerSpec::GreedyHeap
        );
        assert_eq!(
            "rand".parse::<SchedulerSpec>().unwrap(),
            SchedulerSpec::Random(0)
        );
        assert!("nope".parse::<SchedulerSpec>().is_err());
    }

    #[test]
    fn sweep_produces_rows_per_cell_and_algo() {
        let ds = small_dataset();
        let cells = k_sweep(&[10, 20], 0);
        let cfg = HarnessConfig {
            algos: vec![SchedulerSpec::Greedy, SchedulerSpec::Random(0)],
            parallel: false,
            seed: 0,
            threads: 1,
        };
        let rows = run_sweep(&ds, &cells, &cfg);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].algorithm, "GRD");
        assert_eq!(rows[0].value, 10.0);
        assert_eq!(rows[3].algorithm, "RAND");
        assert_eq!(rows[3].value, 20.0);
        assert!(rows.iter().all(|r| r.utility >= 0.0));
        assert!(rows.iter().all(|r| r.scheduled > 0));
    }

    #[test]
    fn parallel_and_serial_agree_on_deterministic_fields() {
        let ds = small_dataset();
        let cells = k_sweep(&[10, 15], 0);
        let serial = run_sweep(
            &ds,
            &cells,
            &HarnessConfig {
                parallel: false,
                ..HarnessConfig::default()
            },
        );
        let parallel = run_sweep(&ds, &cells, &HarnessConfig::default());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.value, b.value);
            assert!((a.utility - b.utility).abs() < 1e-9);
            assert_eq!(a.scheduled, b.scheduled);
        }
    }

    #[test]
    fn scoring_threads_do_not_change_results() {
        // In-run scoring shards read frozen engine state, so a threaded
        // sweep must reproduce the serial rows bit-for-bit (utility and
        // hardware-independent counters alike).
        let ds = small_dataset();
        let cells = k_sweep(&[15], 0);
        let serial = run_sweep(
            &ds,
            &cells,
            &HarnessConfig {
                parallel: false,
                ..HarnessConfig::default()
            },
        );
        let threaded = run_sweep(
            &ds,
            &cells,
            &HarnessConfig {
                parallel: false,
                threads: 4,
                ..HarnessConfig::default()
            },
        );
        assert_eq!(serial.len(), threaded.len());
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "{}", a.algorithm);
            assert_eq!(a.scheduled, b.scheduled);
            assert_eq!(a.score_evaluations, b.score_evaluations);
            assert_eq!(a.posting_visits, b.posting_visits);
        }
    }

    #[test]
    fn grd_beats_baselines_on_utility_in_sweep() {
        let ds = small_dataset();
        let cells = k_sweep(&[20], 0);
        let rows = run_sweep(&ds, &cells, &HarnessConfig::default());
        let util = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm == name)
                .map(|r| r.utility)
                .unwrap()
        };
        assert!(util("GRD") >= util("TOP"));
        assert!(util("GRD") >= util("RAND"));
    }
}
