//! The frozen **hash-map scoring baseline**: the engine layout this
//! workspace shipped before the columnar mass table, kept verbatim so the
//! perf trajectory (`BENCH_engine.json`) always measures the win against a
//! fixed reference instead of against a moving target.
//!
//! Layout under measurement: per-interval `FxHashMap<UserId, f64>` tables
//! for both the competing mass `B_t` and the scheduled mass `M_t`, with the
//! activity probability `σ(u,t)` fetched through the `ActivityModel` vtable
//! on every posting visit — two hash probes and one virtual call per posting,
//! exactly the access pattern `ses_core::engine` replaced with flat columns.
//!
//! Only what the greedy solve needs is reproduced (scoring, assignment
//! bookkeeping, feasibility tracking); the selection logic is the same
//! Algorithm 1 as `GreedyScheduler`, tie-breaks included, so the baseline
//! and the columnar engine pick identical schedules and any wall-clock
//! difference is attributable to the data layout alone.

use ses_core::util::float::{luce_ratio, total_cmp};
use ses_core::util::fxhash::FxHashMap;
use ses_core::{EventId, IntervalId, SesInstance, UserId};
use std::sync::Arc;
use std::time::Instant;

/// What one baseline greedy solve measured.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Total utility Ω of the schedule (must match the columnar engine).
    pub utility: f64,
    /// Wall-clock milliseconds of the solve.
    pub millis: f64,
    /// Eq. 4 evaluations performed.
    pub score_evaluations: u64,
    /// Posting entries visited while scoring.
    pub posting_visits: u64,
    /// Assignments placed.
    pub scheduled: usize,
}

/// The pre-columnar incremental engine, hash maps and all.
struct HashMapEngine<'a> {
    inst: &'a SesInstance,
    /// Per-interval competing mass `B_t`.
    b: Vec<FxHashMap<UserId, f64>>,
    /// Per-interval scheduled mass `M_t`.
    m: Vec<FxHashMap<UserId, f64>>,
    used_resources: Vec<f64>,
    used_locations: Vec<FxHashMap<u32, EventId>>,
    scheduled: Vec<bool>,
    num_scheduled: usize,
    total_utility: f64,
    score_evaluations: u64,
    posting_visits: u64,
}

impl<'a> HashMapEngine<'a> {
    fn new(inst: &'a SesInstance) -> Self {
        let nt = inst.num_intervals();
        let mut b: Vec<FxHashMap<UserId, f64>> = vec![FxHashMap::default(); nt];
        for c in inst.competing() {
            let postings = inst.interest().interested_users(c.id.into());
            let map = &mut b[c.interval.index()];
            for &(u, mu) in postings {
                *map.entry(u).or_insert(0.0) += mu;
            }
        }
        Self {
            inst,
            b,
            m: vec![FxHashMap::default(); nt],
            used_resources: vec![0.0; nt],
            used_locations: vec![FxHashMap::default(); nt],
            scheduled: vec![false; inst.num_events()],
            num_scheduled: 0,
            total_utility: 0.0,
            score_evaluations: 0,
            posting_visits: 0,
        }
    }

    fn is_valid(&self, event: EventId, interval: IntervalId) -> bool {
        if self.scheduled[event.index()] {
            return false;
        }
        let ev = self.inst.event(event);
        let ti = interval.index();
        if self.used_locations[ti].contains_key(&ev.location.raw()) {
            return false;
        }
        self.used_resources[ti] + ev.required_resources <= self.inst.budget()
    }

    fn score(&mut self, event: EventId, interval: IntervalId) -> f64 {
        self.score_evaluations += 1;
        let postings = self.inst.interest().interested_users(event.into());
        self.posting_visits += postings.len() as u64;
        let ti = interval.index();
        let bt = &self.b[ti];
        let mt = &self.m[ti];
        let activity = self.inst.activity();
        let mut sum = 0.0;
        for &(u, mu) in postings {
            let b = bt.get(&u).copied().unwrap_or(0.0);
            let m = mt.get(&u).copied().unwrap_or(0.0);
            let before = luce_ratio(m, b + m);
            let after = luce_ratio(m + mu, b + m + mu);
            sum += activity.activity(u, interval) * (after - before);
        }
        sum
    }

    fn assign(&mut self, event: EventId, interval: IntervalId) {
        let gain = self.score(event, interval);
        let ti = interval.index();
        let postings = self.inst.interest().interested_users(event.into());
        let mt = &mut self.m[ti];
        for &(u, mu) in postings {
            *mt.entry(u).or_insert(0.0) += mu;
        }
        let ev = self.inst.event(event);
        self.used_resources[ti] += ev.required_resources;
        self.used_locations[ti].insert(ev.location.raw(), event);
        self.scheduled[event.index()] = true;
        self.num_scheduled += 1;
        self.total_utility += gain;
    }
}

#[derive(Clone, Copy)]
struct ListEntry {
    event: EventId,
    interval: IntervalId,
    score: f64,
}

/// The paper's GRD (Algorithm 1) over the hash-map engine — selection logic
/// and tie-breaks identical to `ses_core::GreedyScheduler`, so the produced
/// schedule (and Ω) matches the columnar run and only the layout differs.
pub fn greedy_hashmap(inst: &Arc<SesInstance>, k: usize) -> BaselineOutcome {
    let start = Instant::now();
    let mut engine = HashMapEngine::new(inst);

    let mut list: Vec<ListEntry> = Vec::with_capacity(inst.num_events() * inst.num_intervals());
    for e in 0..inst.num_events() {
        let event = EventId::new(e as u32);
        for t in 0..inst.num_intervals() {
            let interval = IntervalId::new(t as u32);
            list.push(ListEntry {
                event,
                interval,
                score: engine.score(event, interval),
            });
        }
    }

    while engine.num_scheduled < k {
        let Some(top_idx) = list
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                total_cmp(a.score, b.score)
                    .then_with(|| b.event.cmp(&a.event))
                    .then_with(|| b.interval.cmp(&a.interval))
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let top = list.swap_remove(top_idx);
        if !engine.is_valid(top.event, top.interval) {
            continue;
        }
        engine.assign(top.event, top.interval);

        if engine.num_scheduled < k {
            let selected_interval = top.interval;
            let mut i = 0;
            while i < list.len() {
                let entry = list[i];
                if !engine.is_valid(entry.event, entry.interval) {
                    list.swap_remove(i);
                    continue;
                }
                if entry.interval == selected_interval {
                    list[i].score = engine.score(entry.event, entry.interval);
                }
                i += 1;
            }
        }
    }

    BaselineOutcome {
        utility: engine.total_utility,
        millis: start.elapsed().as_secs_f64() * 1e3,
        score_evaluations: engine.score_evaluations,
        posting_visits: engine.posting_visits,
        scheduled: engine.num_scheduled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::testkit;
    use ses_core::{GreedyScheduler, Scheduler};

    #[test]
    fn baseline_matches_the_columnar_greedy_exactly() {
        // Same algorithm, same tie-breaks, same float operations per posting
        // — the two layouts must agree on the schedule and on the counters,
        // and on Ω to within accumulation noise.
        for seed in 0..5u64 {
            let inst = testkit::medium_instance(seed);
            let columnar = GreedyScheduler::new().run(&inst, 6).unwrap();
            let baseline = greedy_hashmap(&inst, 6);
            assert_eq!(baseline.scheduled, columnar.len(), "seed {seed}");
            assert!(
                (baseline.utility - columnar.total_utility).abs()
                    <= 1e-9 * columnar.total_utility.abs().max(1.0),
                "seed {seed}: baseline {} vs columnar {}",
                baseline.utility,
                columnar.total_utility
            );
            assert_eq!(
                baseline.score_evaluations,
                columnar.stats.engine.score_evaluations
            );
            assert_eq!(
                baseline.posting_visits,
                columnar.stats.engine.posting_visits
            );
        }
    }
}
