//! # ses-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation (§IV, Fig. 1a–1d) and
//! the ablations listed in `DESIGN.md`. The `fig1` binary drives
//! [`run_sweep`] over the paper's sweeps and prints one table per panel;
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod harness;
pub mod report;

pub use harness::{run_sweep, CellResult, HarnessConfig};
pub use report::{panel_table, write_json};
pub use ses_core::SchedulerSpec;
