//! A small blocking HTTP/1.1 client with keep-alive, for the load
//! generator, the replay determinism check and the integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A keep-alive connection to one server. Reconnects lazily after the
/// server closes the connection or an I/O error poisons it.
pub struct HttpClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    last_trace: Option<String>,
}

impl HttpClient {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`). No connection is
    /// made until the first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            conn: None,
            last_trace: None,
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The `x-ses-trace-id` the server echoed on the most recent response
    /// (`None` before the first response, or if the server sent none).
    pub fn last_trace_id(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    fn ensure_connected(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. Returns
    /// `(status, body)`; transport failures poison the connection so the
    /// next request reconnects.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let result = self.request_inner(method, path, body);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let addr = self.addr.clone();
        let conn = self.ensure_connected()?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len(),
        );
        conn.get_mut().write_all(request.as_bytes())?;

        // Status line; interim 1xx responses (100 Continue) carry no body,
        // so skip them until the final status arrives.
        let mut status = read_status_line(conn)?;
        while (100..200).contains(&status) {
            skip_headers(conn)?;
            status = read_status_line(conn)?;
        }

        // Headers.
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut trace = None;
        loop {
            let mut line = String::new();
            if conn.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside response headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.trim().parse().map_err(|_| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("bad content-length {value:?}"),
                            )
                        })?;
                    }
                    "connection" => {
                        keep_alive = !value.to_ascii_lowercase().contains("close");
                    }
                    "x-ses-trace-id" => {
                        trace = Some(value.trim().to_owned());
                    }
                    _ => {}
                }
            }
        }

        let mut buf = vec![0u8; content_length];
        conn.read_exact(&mut buf)?;
        let body = String::from_utf8(buf).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response body")
        })?;
        if !keep_alive {
            self.conn = None;
        }
        self.last_trace = trace;
        Ok((status, body))
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// Drops the connection (the next request reconnects).
    pub fn close(&mut self) {
        self.conn = None;
    }
}

/// Reads one `HTTP/1.1 <status> …` line and parses the status code.
fn read_status_line(conn: &mut BufReader<TcpStream>) -> std::io::Result<u16> {
    let mut line = String::new();
    if conn.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ));
    }
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {line:?}"),
            )
        })
}

fn skip_headers(conn: &mut BufReader<TcpStream>) -> std::io::Result<()> {
    loop {
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside interim response",
            ));
        }
        if line.trim_end().is_empty() {
            return Ok(());
        }
    }
}
