//! Model-check suites for the server's lock-free accounting, run under
//! the `shuttle` interleaving explorer (`RUSTFLAGS="--cfg ses_shuttle"
//! cargo test -p ses-server -- model_`). The gauges route their atomics
//! through `ses_obs::sync`, so these explore the shipping code.

use crate::metrics::{Endpoint, ServerMetrics, ShardGauge};
use shuttle::{check_with, Config};
use std::sync::Arc;

#[test]
fn model_shard_gauge_depth_never_goes_negative_or_drifts() {
    // Dispatch-side enqueue racing worker-side serve: depth is a zero-sum
    // pair of relaxed RMWs, so it must end exactly balanced and the
    // handled/busy counters must not lose updates.
    let report = check_with(Config::default(), || {
        let g = Arc::new(ShardGauge::default());
        let g2 = Arc::clone(&g);
        // The worker serves the one request the dispatcher accounted for
        // before spawning (the real protocol: served() follows a
        // successful enqueued() via the channel's happens-before edge).
        let first_depth = g.enqueued();
        assert_eq!(first_depth, 1);
        let worker = shuttle::thread::spawn(move || {
            g2.served(2_000);
        });
        // Dispatcher concurrently accounts a second request.
        let d = g.enqueued();
        assert!(d >= 1 && d <= 2, "observed arrival depth out of range: {d}");
        worker.join().unwrap();
        assert_eq!(g.depth(), 1, "one request still queued");
        assert_eq!(g.handled(), 1);
        assert_eq!(g.busy_micros(), 2);
    });
    assert!(report.exhaustive);
}

#[test]
fn model_status_counters_are_exact_under_contention() {
    let report = check_with(Config::default(), || {
        let m = Arc::new(ServerMetrics::new());
        let m2 = Arc::clone(&m);
        let t = shuttle::thread::spawn(move || {
            m2.record(Endpoint::Event, 200, 10);
        });
        m.record(Endpoint::Solve, 500, 20);
        t.join().unwrap();
        assert_eq!(m.requests_2xx(), 1);
        assert_eq!(m.requests_5xx(), 1);
        assert_eq!(m.requests_4xx(), 0);
        let lines = m.endpoint_latencies();
        assert_eq!(lines.len(), 2, "both endpoints' histograms kept their hit");
    });
    assert!(report.exhaustive);
}
