//! The built-in closed-loop load generator.
//!
//! N client threads each hold one keep-alive connection and one private
//! server session, and drive a seeded mix of solve / session-event /
//! report traffic as fast as the server answers (closed loop: the next
//! request leaves when the previous response lands). Latencies are
//! recorded client-side into the same log-bucketed histograms the server
//! uses, then merged; the summary carries req/s, p50/p95/p99 and the
//! per-endpoint mix.

use crate::client::HttpClient;
use crate::metrics::{EndpointLatency, Histogram, HistogramSnapshot, MetricsReport};
use crate::replay::DigestCheck;
use crate::server::{HealthReport, InstancesReport};
use crate::shard::ErrorBody;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ses_core::{EventId, IntervalId, SchedulerSpec};
use ses_datagen::streams::{rival_postings, RivalProfile};
use ses_service::{
    Announcement, Arrival, Cancellation, CapacityChange, InstanceName, SessionEvent, SessionOpen,
    SolveRequest,
};
use std::time::Instant;

/// What traffic to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent closed-loop clients (one connection + session each).
    pub clients: usize,
    /// Requests per client (the open/close bracket is extra).
    pub requests: u64,
    /// Fraction of requests that are stateless `POST /solve` calls.
    pub solve_fraction: f64,
    /// `k` of those solve calls (small: solves are the expensive op).
    pub solve_k: usize,
    /// `k` of each client's session.
    pub k: usize,
    /// Algorithm for solves and session opens.
    pub spec: SchedulerSpec,
    /// Scoring threads per solve (keep at 1 under concurrent load).
    pub threads: usize,
    /// Mix seed.
    pub seed: u64,
    /// The registered instances the clients target, round-robin by client
    /// index — client `i` binds its session (and its solves) to
    /// `instances[i % len]`. One entry = single-tenant load; several =
    /// a cross-tenant isolation run with a per-instance latency breakdown
    /// in the summary.
    pub instances: Vec<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            clients: 8,
            requests: 2000,
            solve_fraction: 0.02,
            solve_k: 8,
            k: 12,
            spec: SchedulerSpec::Greedy,
            threads: 1,
            seed: 0,
            instances: vec!["default".to_owned()],
        }
    }
}

/// What the run measured, across all clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenSummary {
    /// Client threads.
    pub clients: u64,
    /// Total requests sent (including each client's open/close bracket).
    pub requests: u64,
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests answered anything else.
    pub errors: u64,
    /// Wall-clock of the whole run.
    pub elapsed_millis: f64,
    /// Aggregate closed-loop throughput.
    pub req_per_sec: f64,
    /// Mean client-observed latency (µs).
    pub mean_micros: f64,
    /// Median client-observed latency (µs).
    pub p50_micros: u64,
    /// 95th-percentile latency (µs).
    pub p95_micros: u64,
    /// 99th-percentile latency (µs).
    pub p99_micros: u64,
    /// Worst observed latency (µs).
    pub max_micros: u64,
    /// Requests per endpoint label.
    pub mix: Vec<(String, u64)>,
    /// Non-2xx responses broken down by exact status code, ascending.
    #[serde(default)]
    pub status_counts: Vec<StatusCount>,
    /// The slowest requests of the whole run (at most
    /// [`SLOWEST_KEPT`]), worst first, each with the trace id the server
    /// echoed — paste it into `GET /trace/{id}` while the run is fresh.
    #[serde(default)]
    pub slowest: Vec<SlowRequest>,
    /// A sample of error bodies (first few), for diagnosis.
    pub error_samples: Vec<String>,
    /// Per-instance latency breakdown (name order) when the run targeted
    /// more than zero instances — the cross-tenant isolation view: compare
    /// rows to see whether one tenant's load degrades another's latency.
    #[serde(default)]
    pub per_instance: Vec<InstanceLatency>,
    /// Durability view when the server runs with a WAL: client-observed
    /// durable acks next to the server's own append/fsync latency lines.
    /// `None` against a non-durable server (and in legacy summaries).
    #[serde(default)]
    pub wal: Option<WalDurability>,
}

/// The durability side of a load run: how many event replies carried a
/// WAL LSN (the client-side proof the write was logged before it was
/// answered), and what appends and fsyncs cost server-side — read from
/// `/metrics` after the last client finishes, so the latency lines cover
/// exactly this run against a fresh server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalDurability {
    /// Fsync policy label the server runs under (`per-record`,
    /// `interval:25ms`, `off`).
    pub policy: String,
    /// WAL records the server has appended.
    pub records: u64,
    /// fsync calls the server has issued.
    pub fsyncs: u64,
    /// Event replies observed by the clients that carried a WAL LSN.
    pub durable_acks: u64,
    /// Server-side append latency (absent when nothing was appended).
    #[serde(default)]
    pub append: Option<EndpointLatency>,
    /// Server-side fsync latency (absent under `--fsync off`).
    #[serde(default)]
    pub fsync: Option<EndpointLatency>,
}

/// Client-observed latency of one instance's traffic in a (possibly
/// multi-tenant) load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceLatency {
    /// The registered instance name.
    pub instance: String,
    /// Clients bound to this instance.
    pub clients: u64,
    /// Requests this instance's clients sent.
    pub requests: u64,
    /// Non-2xx responses among them.
    pub errors: u64,
    /// Mean client-observed latency (µs).
    pub mean_micros: f64,
    /// Median latency (µs).
    pub p50_micros: u64,
    /// 95th-percentile latency (µs).
    pub p95_micros: u64,
    /// 99th-percentile latency (µs).
    pub p99_micros: u64,
    /// Worst observed latency (µs).
    pub max_micros: u64,
}

/// How many of the slowest requests the summary keeps.
pub const SLOWEST_KEPT: usize = 10;

/// One non-2xx status code's tally in a [`LoadgenSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusCount {
    /// HTTP status code.
    pub status: u64,
    /// Responses with that code.
    pub count: u64,
}

/// One of the slowest requests of a load run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Endpoint label (`open`, `solve`, `event`, `report`, `close`).
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u64,
    /// Client-observed latency (µs).
    pub micros: u64,
    /// The `x-ses-trace-id` the server echoed (empty if none arrived).
    pub trace: String,
}

/// The report `ses loadgen --out` and `bench_server` write (the committed
/// `BENCH_server.json`): client-side load numbers, the server's own
/// `/metrics` view, and the replay determinism verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerBenchReport {
    /// Client-side measurements.
    pub loadgen: LoadgenSummary,
    /// The server's `/metrics` at the end of the run.
    pub server: crate::metrics::MetricsReport,
    /// The server-vs-simulator digest check (when run).
    pub digest: Option<DigestCheck>,
    /// The durability sweep: one row per fsync policy, each from a fresh
    /// WAL-backed server under identical load — the committed cost curve
    /// of the durability knob. Empty in legacy reports and when the sweep
    /// is skipped.
    #[serde(default)]
    pub durability: Vec<DurabilityRow>,
}

/// One fsync policy's measured cost in the durability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityRow {
    /// Fsync policy label (`off`, `interval:<millis>`, `per-record`).
    pub policy: String,
    /// Closed-loop throughput under this policy.
    pub req_per_sec: f64,
    /// Median client-observed latency (µs).
    pub p50_micros: u64,
    /// 99th-percentile client-observed latency (µs).
    pub p99_micros: u64,
    /// Event replies that carried a WAL LSN.
    pub durable_acks: u64,
    /// Server-side 99th-percentile append latency (µs; 0 if none).
    pub append_p99_micros: u64,
    /// Server-side 99th-percentile fsync latency (µs; 0 under `off`).
    pub fsync_p99_micros: u64,
}

struct WorkerOutcome {
    instance: String,
    histogram: HistogramSnapshot,
    ok: u64,
    errors: u64,
    durable_acks: u64,
    mix: Vec<(&'static str, u64)>,
    status_counts: Vec<StatusCount>,
    slowest: Vec<SlowRequest>,
    error_samples: Vec<String>,
}

/// Runs the load. Transport-level failures abort the run with an error
/// (they mean the server is gone, not slow); HTTP-level non-2xx responses
/// are counted and sampled instead.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    let clients = cfg.clients.max(1);
    let start = Instant::now();
    let outcomes: Vec<Result<WorkerOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| scope.spawn(move || worker(cfg, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut merged: Option<HistogramSnapshot> = None;
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut durable_acks = 0u64;
    let mut mix: Vec<(String, u64)> = Vec::new();
    let mut status_counts: Vec<StatusCount> = Vec::new();
    let mut slowest: Vec<SlowRequest> = Vec::new();
    let mut error_samples = Vec::new();
    // Per-instance accumulators: (name, clients, histogram, ok, errors).
    let mut per: Vec<(String, u64, HistogramSnapshot, u64, u64)> = Vec::new();
    for outcome in outcomes {
        let outcome = outcome?;
        match per.iter_mut().find(|(name, ..)| *name == outcome.instance) {
            Some((_, n, h, p_ok, p_err)) => {
                *n += 1;
                h.merge(&outcome.histogram);
                *p_ok += outcome.ok;
                *p_err += outcome.errors;
            }
            None => per.push((
                outcome.instance.clone(),
                1,
                outcome.histogram.clone(),
                outcome.ok,
                outcome.errors,
            )),
        }
        merged = Some(match merged {
            None => outcome.histogram,
            Some(mut m) => {
                m.merge(&outcome.histogram);
                m
            }
        });
        ok += outcome.ok;
        errors += outcome.errors;
        durable_acks += outcome.durable_acks;
        for (label, n) in outcome.mix {
            match mix.iter_mut().find(|(l, _)| l == label) {
                Some((_, total)) => *total += n,
                None => mix.push((label.to_owned(), n)),
            }
        }
        for sc in outcome.status_counts {
            match status_counts.iter_mut().find(|c| c.status == sc.status) {
                Some(c) => c.count += sc.count,
                None => status_counts.push(sc),
            }
        }
        slowest.extend(outcome.slowest);
        for sample in outcome.error_samples {
            if error_samples.len() < 5 {
                error_samples.push(sample);
            }
        }
    }
    status_counts.sort_by_key(|c| c.status);
    slowest.sort_by_key(|s| std::cmp::Reverse(s.micros));
    slowest.truncate(SLOWEST_KEPT);
    per.sort_by(|a, b| a.0.cmp(&b.0));
    let per_instance = per
        .into_iter()
        .map(|(instance, clients, h, p_ok, p_err)| InstanceLatency {
            instance,
            clients,
            requests: p_ok + p_err,
            errors: p_err,
            mean_micros: h.mean(),
            p50_micros: h.quantile(0.50),
            p95_micros: h.quantile(0.95),
            p99_micros: h.quantile(0.99),
            max_micros: h.max,
        })
        .collect();
    // Durability view: the server's own append/fsync histograms, fetched
    // after the last client finished so the lines cover this run. Best
    // effort — a server without `--wal-dir` reports no `wal` section and
    // the summary's durability view stays `None`.
    let wal = fetch_wal_view(&cfg.addr, durable_acks);
    let snap = merged.expect("at least one client");
    let requests = ok + errors;
    let secs = elapsed.as_secs_f64();
    Ok(LoadgenSummary {
        clients: clients as u64,
        requests,
        ok,
        errors,
        elapsed_millis: secs * 1e3,
        req_per_sec: if secs > 0.0 {
            requests as f64 / secs
        } else {
            f64::INFINITY
        },
        mean_micros: snap.mean(),
        p50_micros: snap.quantile(0.50),
        p95_micros: snap.quantile(0.95),
        p99_micros: snap.quantile(0.99),
        max_micros: snap.max,
        mix,
        status_counts,
        slowest,
        error_samples,
        per_instance,
        wal,
    })
}

/// Reads the server's WAL stats from `/metrics` into a [`WalDurability`]
/// view. Returns `None` when the server is not durable (no `wal` section)
/// or the scrape fails — durability reporting never fails a load run.
fn fetch_wal_view(addr: &str, durable_acks: u64) -> Option<WalDurability> {
    let mut client = HttpClient::new(addr.to_owned());
    let (status, body) = client.get("/metrics").ok()?;
    if status != 200 {
        return None;
    }
    let report: MetricsReport = serde_json::from_str(&body).ok()?;
    let wal = report.wal?;
    Some(WalDurability {
        policy: wal.policy,
        records: wal.records,
        fsyncs: wal.fsyncs,
        durable_acks,
        append: wal.append,
        fsync: wal.fsync,
    })
}

/// One timed request; records latency + status into the worker's tallies
/// and hands back the response body (so the event path can check for a
/// durable ack without a second parse site).
fn timed_post(
    client: &mut HttpClient,
    path: &str,
    body: &str,
    label: &'static str,
    out: &mut WorkerTally,
) -> Result<String, String> {
    let start = Instant::now();
    let (status, resp) = client
        .post(path, body)
        .map_err(|e| format!("{label} request failed: {e}"))?;
    let micros = start.elapsed().as_micros() as u64;
    out.histogram.record(micros);
    out.mix
        .iter_mut()
        .find(|(l, _)| *l == label)
        .expect("label pre-registered")
        .1 += 1;
    out.slowest.push(SlowRequest {
        endpoint: label.to_owned(),
        status: u64::from(status),
        micros,
        trace: client.last_trace_id().unwrap_or_default().to_owned(),
    });
    if out.slowest.len() > SLOWEST_KEPT {
        out.slowest.sort_by_key(|s| std::cmp::Reverse(s.micros));
        out.slowest.truncate(SLOWEST_KEPT);
    }
    if (200..300).contains(&status) {
        out.ok += 1;
    } else {
        out.errors += 1;
        let code = u64::from(status);
        match out.status_counts.iter_mut().find(|c| c.status == code) {
            Some(c) => c.count += 1,
            None => out.status_counts.push(StatusCount {
                status: code,
                count: 1,
            }),
        }
        if out.error_samples.len() < 3 {
            let detail = serde_json::from_str::<ErrorBody>(&resp)
                .map(|b| format!("{status} {}: {}", b.kind, b.error))
                .unwrap_or_else(|_| format!("{status}: {resp}"));
            out.error_samples.push(detail);
        }
    }
    Ok(resp)
}

struct WorkerTally {
    histogram: Histogram,
    ok: u64,
    errors: u64,
    durable_acks: u64,
    mix: Vec<(&'static str, u64)>,
    status_counts: Vec<StatusCount>,
    slowest: Vec<SlowRequest>,
    error_samples: Vec<String>,
}

fn worker(cfg: &LoadgenConfig, index: usize) -> Result<WorkerOutcome, String> {
    let mut client = HttpClient::new(cfg.addr.clone());
    let (status, body) = client
        .get("/healthz")
        .map_err(|e| format!("GET /healthz failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /healthz answered {status}: {body}"));
    }
    let health: HealthReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /healthz body: {e}"))?;

    // This client's tenant: round-robin over the configured instances.
    let instance = match cfg.instances.get(index % cfg.instances.len().max(1)) {
        Some(name) => name.clone(),
        None => "default".to_owned(),
    };
    // The health report only describes the "default" workload instance;
    // other tenants' universe shapes come from `GET /instances` (touching
    // the instance first, so a lazily-registered packed file is cold-opened
    // and its dimensions are visible).
    let (users, events, intervals) = if instance == "default" {
        (
            health.users as usize,
            health.events as u32,
            health.intervals as u32,
        )
    } else {
        let warm = SolveRequest {
            spec: cfg.spec,
            k: 1,
            threads: cfg.threads,
            instance: InstanceName::new(&*instance),
        };
        let warm_body = serde_json::to_string(&warm).map_err(|e| e.to_string())?;
        let (status, body) = client
            .post("/solve", &warm_body)
            .map_err(|e| format!("warm solve on '{instance}' failed: {e}"))?;
        if status != 200 {
            return Err(format!(
                "warm solve on '{instance}' answered {status}: {body}"
            ));
        }
        let (status, body) = client
            .get("/instances")
            .map_err(|e| format!("GET /instances failed: {e}"))?;
        if status != 200 {
            return Err(format!("GET /instances answered {status}: {body}"));
        }
        let report: InstancesReport =
            serde_json::from_str(&body).map_err(|e| format!("bad /instances body: {e}"))?;
        let info = report
            .instances
            .iter()
            .find(|i| i.name == instance && i.loaded)
            .ok_or_else(|| format!("instance '{instance}' not loaded after a warm solve"))?;
        (info.users, info.events as u32, info.intervals as u32)
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let session = format!("lg-{}-{index}", cfg.seed);
    let mut tally = WorkerTally {
        histogram: Histogram::new(),
        ok: 0,
        errors: 0,
        durable_acks: 0,
        mix: ["open", "solve", "event", "report", "close"]
            .into_iter()
            .map(|l| (l, 0u64))
            .collect(),
        status_counts: Vec::new(),
        slowest: Vec::new(),
        error_samples: Vec::new(),
    };

    let open = SessionOpen {
        name: session.clone(),
        spec: cfg.spec,
        k: cfg.k.min(events as usize),
        threads: cfg.threads,
        instance: InstanceName::new(&*instance),
    };
    let open_body = serde_json::to_string(&open).map_err(|e| e.to_string())?;
    timed_post(
        &mut client,
        &format!("/sessions/{session}/open"),
        &open_body,
        "open",
        &mut tally,
    )?;

    let event_path = format!("/sessions/{session}/event");
    let report_path = format!("/sessions/{session}/report");
    for _ in 0..cfg.requests {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < cfg.solve_fraction {
            let req = SolveRequest {
                spec: cfg.spec,
                k: cfg.solve_k.min(events as usize),
                threads: cfg.threads,
                instance: InstanceName::new(&*instance),
            };
            let body = serde_json::to_string(&req).map_err(|e| e.to_string())?;
            timed_post(&mut client, "/solve", &body, "solve", &mut tally)?;
            continue;
        }
        // Session traffic: mostly announcements (the paper's headline
        // disruption), plus schedule churn and reports.
        let event = match rng.gen_range(0u32..100) {
            0..=44 => SessionEvent::Announce(Announcement {
                interval: IntervalId::new(rng.gen_range(0..intervals)),
                postings: rival_postings(&mut rng, users, &RivalProfile::mild()),
            }),
            45..=56 => SessionEvent::Extend,
            57..=68 => SessionEvent::Cancel(Cancellation {
                event: EventId::new(rng.gen_range(0..events)),
            }),
            69..=79 => SessionEvent::Arrive(Arrival {
                event: EventId::new(rng.gen_range(0..events)),
            }),
            80..=84 => SessionEvent::Capacity(CapacityChange {
                budget: 20.0 * rng.gen_range(0.5..1.5),
            }),
            _ => {
                timed_post(&mut client, &report_path, "", "report", &mut tally)?;
                continue;
            }
        };
        let body = serde_json::to_string(&event).map_err(|e| e.to_string())?;
        let resp = timed_post(&mut client, &event_path, &body, "event", &mut tally)?;
        // A reply carrying a WAL LSN means the event was logged before it
        // was answered — the client-side half of the durability contract.
        if let Ok(report) = serde_json::from_str::<ses_service::EventReport>(&resp) {
            if report.lsn > 0 {
                tally.durable_acks += 1;
            }
        }
    }

    timed_post(
        &mut client,
        &format!("/sessions/{session}/close"),
        "",
        "close",
        &mut tally,
    )?;

    Ok(WorkerOutcome {
        instance,
        histogram: tally.histogram.snapshot(),
        ok: tally.ok,
        errors: tally.errors,
        durable_acks: tally.durable_acks,
        mix: tally.mix,
        status_counts: tally.status_counts,
        slowest: tally.slowest,
        error_samples: tally.error_samples,
    })
}
