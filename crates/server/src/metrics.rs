//! Per-endpoint latency histograms, per-shard gauges, and the `/metrics`
//! report.
//!
//! Latencies are recorded in microseconds into the lock-free log-bucketed
//! [`Histogram`] from `ses-obs` (8 sub-buckets per power of two, so every
//! bucket is at most 12.5% wide) — recording is a single relaxed fetch-add
//! on the hot path, snapshotting is lock-free, and p50/p95/p99 come out of
//! the cumulative bucket counts with bounded relative error. The report
//! also folds in the span-stage latency distributions that the tracing
//! layer accumulates process-wide ([`ses_obs::stage_latencies`]).

use serde::{Deserialize, Serialize};
use ses_core::EngineCounters;
use ses_obs::StageLatency;
// Atomics come through the ses-obs facade so the `cfg(ses_shuttle)`
// model-check build explores this module's gauges too.
use ses_obs::sync::atomic::{AtomicU64, Ordering};

pub use ses_obs::{Histogram, HistogramSnapshot};

/// The endpoints the server tracks latencies for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /solve`
    Solve,
    /// `POST /eval`
    Eval,
    /// `POST /sessions/{name}/open`
    Open,
    /// `POST /sessions/{name}/event`
    Event,
    /// `POST /sessions/{name}/report`
    Report,
    /// `POST /sessions/{name}/close`
    Close,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /trace/{id}`
    Trace,
    /// `GET /instances`
    Instances,
    /// `POST /admin/rebalance` (live session migration).
    Rebalance,
    /// Anything that did not route (404s, bad methods, parse-level 400s).
    Other,
}

/// All endpoints, in display order.
pub const ENDPOINTS: [Endpoint; 12] = [
    Endpoint::Solve,
    Endpoint::Eval,
    Endpoint::Open,
    Endpoint::Event,
    Endpoint::Report,
    Endpoint::Close,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Trace,
    Endpoint::Instances,
    Endpoint::Rebalance,
    Endpoint::Other,
];

impl Endpoint {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Solve => "solve",
            Endpoint::Eval => "eval",
            Endpoint::Open => "open",
            Endpoint::Event => "event",
            Endpoint::Report => "report",
            Endpoint::Close => "close",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Trace => "trace",
            Endpoint::Instances => "instances",
            Endpoint::Rebalance => "rebalance",
            Endpoint::Other => "other",
        }
    }

    // A total match instead of a positional search: runs on the request
    // path, where the server's panic-discipline lint bans `.expect()`.
    fn index(self) -> usize {
        match self {
            Endpoint::Solve => 0,
            Endpoint::Eval => 1,
            Endpoint::Open => 2,
            Endpoint::Event => 3,
            Endpoint::Report => 4,
            Endpoint::Close => 5,
            Endpoint::Healthz => 6,
            Endpoint::Metrics => 7,
            Endpoint::Trace => 8,
            Endpoint::Instances => 9,
            Endpoint::Rebalance => 10,
            Endpoint::Other => 11,
        }
    }
}

/// All server-side request accounting: one histogram per endpoint plus
/// status-class counters. Shared (behind an `Arc`) by every connection
/// handler; every member is atomic.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    latencies: [Histogram; 12],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
}

impl ServerMetrics {
    /// A zeroed metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        self.latencies[endpoint.index()].record(micros);
        let counter = match status {
            200..=299 => &self.status_2xx,
            500..=599 => &self.status_5xx,
            _ => &self.status_4xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-endpoint latency lines of the `/metrics` report (endpoints
    /// that served no requests are omitted).
    pub fn endpoint_latencies(&self) -> Vec<EndpointLatency> {
        ENDPOINTS
            .iter()
            .filter_map(|&e| {
                let snap = self.latencies[e.index()].snapshot();
                (snap.count > 0).then(|| EndpointLatency::from_snapshot(e.label(), &snap))
            })
            .collect()
    }

    /// Requests answered with a 2xx status.
    pub fn requests_2xx(&self) -> u64 {
        self.status_2xx.load(Ordering::Relaxed)
    }

    /// Requests answered with a 4xx status.
    pub fn requests_4xx(&self) -> u64 {
        self.status_4xx.load(Ordering::Relaxed)
    }

    /// Requests answered with a 5xx status.
    pub fn requests_5xx(&self) -> u64 {
        self.status_5xx.load(Ordering::Relaxed)
    }
}

/// Live occupancy gauges for one shard worker, shared between the dispatch
/// side (which counts enqueues) and the worker loop (which counts dequeues
/// and service time). All relaxed atomics: these are monitoring gauges, and
/// a reader racing a writer sees a value that was true a moment ago.
#[derive(Debug, Default)]
pub struct ShardGauge {
    depth: AtomicU64,
    handled: AtomicU64,
    busy_ns: AtomicU64,
}

impl ShardGauge {
    /// Notes one enqueued request and returns the queue depth *including*
    /// it — the depth the request observed on arrival.
    pub fn enqueued(&self) -> u64 {
        self.depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Notes a request leaving the queue after `queue_ns` waiting, then
    /// being served for `busy_ns`.
    pub fn served(&self, busy_ns: u64) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.handled.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
    }

    /// Notes an enqueue that never reached the worker (the shard's sender
    /// was already closed during shutdown).
    pub fn abandoned(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently queued (or in service) on this shard.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Requests this shard has finished serving.
    pub fn handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed)
    }

    /// Cumulative service time (µs) this shard has spent on requests.
    pub fn busy_micros(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed) / 1_000
    }
}

/// One shard's line in the `/metrics` report: live queue state plus the
/// session accounting its worker reported.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: u64,
    /// Requests currently queued (or in service) on this shard.
    pub queue_depth: u64,
    /// Requests this shard has finished serving.
    pub handled: u64,
    /// Cumulative service time (µs).
    pub busy_micros: u64,
    /// Open sessions on this shard.
    pub sessions: u64,
    /// Session events applied on this shard.
    pub events_applied: u64,
    /// Resident engine-column slots across this shard's open sessions
    /// (blocked column layout; absent in pre-`memory` JSON).
    #[serde(default)]
    pub column_slots: u64,
    /// Resident engine bytes (columns + runs) across this shard's open
    /// sessions.
    #[serde(default)]
    pub resident_bytes: u64,
}

/// One endpoint's latency line in the `/metrics` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointLatency {
    /// Endpoint label (`solve`, `event`, …).
    pub endpoint: String,
    /// Requests served.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_micros: f64,
    /// Median latency (µs, log-bucket lower bound).
    pub p50_micros: u64,
    /// 95th-percentile latency (µs).
    pub p95_micros: u64,
    /// 99th-percentile latency (µs).
    pub p99_micros: u64,
    /// Worst observed latency (µs, exact).
    pub max_micros: u64,
}

impl EndpointLatency {
    /// Builds a report line from a histogram snapshot.
    pub fn from_snapshot(label: &str, snap: &HistogramSnapshot) -> Self {
        Self {
            endpoint: label.to_owned(),
            count: snap.count,
            mean_micros: snap.mean(),
            p50_micros: snap.quantile(0.50),
            p95_micros: snap.quantile(0.95),
            p99_micros: snap.quantile(0.99),
            max_micros: snap.max,
        }
    }
}

/// Aggregate engine-side accounting across every open session of every
/// shard: how much scoring work and schedule churn the server has absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTotals {
    /// Open sessions across all shards.
    pub sessions: u64,
    /// Session events applied across all open sessions.
    pub events_applied: u64,
    /// Summed engine mutation clocks (schedule churn).
    pub clock: u64,
    /// Summed engine operation counters (scoring work).
    pub counters: EngineCounters,
    /// Summed resident engine-column slots across all open sessions
    /// (blocked column layout; absent in pre-`memory` JSON).
    #[serde(default)]
    pub column_slots: u64,
    /// Summed resident engine bytes (columns + runs) across all open
    /// sessions — what the server actually holds for scoring state.
    #[serde(default)]
    pub resident_bytes: u64,
}

impl EngineTotals {
    /// Adds one shard's totals.
    pub fn merge(&mut self, other: &EngineTotals) {
        self.sessions += other.sessions;
        self.events_applied += other.events_applied;
        self.clock += other.clock;
        self.counters.merge(other.counters);
        self.column_slots += other.column_slots;
        self.resident_bytes += other.resident_bytes;
    }
}

/// The durability section of `/metrics`, present only when the server
/// runs with `--wal-dir`: WAL accounting summed across every shard, plus
/// append/fsync latency distributions in the same line shape as the
/// endpoint latencies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WalReport {
    /// Fsync policy label (`per-record`, `interval:<millis>`, `off`).
    pub policy: String,
    /// Records appended since boot, all shards.
    pub records: u64,
    /// Bytes appended since boot (framing included).
    pub appended_bytes: u64,
    /// `fdatasync` calls issued since boot.
    pub fsyncs: u64,
    /// Snapshot files written since boot.
    pub snapshots: u64,
    /// Segment files currently on disk (sealed + live).
    pub segments: u64,
    /// Sealed segments deleted by truncation since boot.
    pub segments_removed: u64,
    /// Open sessions mirrored in shard journals.
    pub sessions: u64,
    /// Append latency distribution (`wal_append`), absent before the
    /// first append.
    #[serde(default)]
    pub append: Option<EndpointLatency>,
    /// Fsync latency distribution (`wal_fsync`), absent before the first
    /// sync.
    #[serde(default)]
    pub fsync: Option<EndpointLatency>,
}

impl WalReport {
    /// Folds one shard's WAL stats into the totals (the policy is uniform
    /// across shards — the first one seen wins).
    pub fn merge_stats(&mut self, stats: &ses_durable::WalStats) {
        if self.policy.is_empty() {
            self.policy = stats.policy.clone();
        }
        self.records += stats.records;
        self.appended_bytes += stats.appended_bytes;
        self.fsyncs += stats.fsyncs;
        self.snapshots += stats.snapshots;
        self.segments += stats.segments;
        self.segments_removed += stats.segments_removed;
        self.sessions += stats.sessions;
    }
}

/// The `GET /metrics` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Milliseconds since the server started.
    pub uptime_millis: f64,
    /// Number of shard workers.
    pub shards: u64,
    /// Requests answered 2xx.
    pub requests_2xx: u64,
    /// Requests answered 4xx.
    pub requests_4xx: u64,
    /// Requests answered 5xx.
    pub requests_5xx: u64,
    /// Per-endpoint latency distributions.
    pub endpoints: Vec<EndpointLatency>,
    /// Engine-side totals across all shards' sessions.
    pub engine: EngineTotals,
    /// Per-shard queue depth / occupancy / session gauges.
    #[serde(default)]
    pub shards_detail: Vec<ShardStatus>,
    /// Process-wide span-stage latency distributions (queue wait, service,
    /// solve, engine phases, …) from the tracing layer.
    #[serde(default)]
    pub span_stages: Vec<StageLatency>,
    /// Durability accounting, when the server runs with a WAL (absent —
    /// and absent from legacy JSON — otherwise).
    #[serde(default)]
    pub wal: Option<WalReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_metrics_track_status_classes() {
        let m = ServerMetrics::new();
        m.record(Endpoint::Solve, 200, 50);
        m.record(Endpoint::Event, 200, 10);
        m.record(Endpoint::Event, 404, 5);
        m.record(Endpoint::Other, 500, 1);
        assert_eq!(m.requests_2xx(), 2);
        assert_eq!(m.requests_4xx(), 1);
        assert_eq!(m.requests_5xx(), 1);
        let lines = m.endpoint_latencies();
        assert_eq!(lines.len(), 3, "only endpoints with traffic are listed");
        let event = lines.iter().find(|l| l.endpoint == "event").unwrap();
        assert_eq!(event.count, 2);
        assert_eq!(event.max_micros, 10);
    }

    #[test]
    fn endpoint_index_matches_display_order() {
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i, "{e:?} out of step with ENDPOINTS");
        }
    }

    #[test]
    fn wal_report_merges_shard_stats_and_parses_legacy_json() {
        let mut wal = WalReport::default();
        wal.merge_stats(&ses_durable::WalStats {
            policy: "per-record".to_owned(),
            records: 10,
            appended_bytes: 1000,
            fsyncs: 10,
            snapshots: 1,
            segments: 2,
            segments_removed: 1,
            last_lsn: 10,
            sessions: 3,
        });
        wal.merge_stats(&ses_durable::WalStats {
            policy: "per-record".to_owned(),
            records: 5,
            sessions: 1,
            ..ses_durable::WalStats::default()
        });
        assert_eq!(wal.policy, "per-record");
        assert_eq!(wal.records, 15);
        assert_eq!(wal.sessions, 4);
        assert_eq!(wal.segments, 2);
        // A pre-durability metrics body (no `wal` key) still parses, with
        // the section absent.
        let legacy: MetricsReport = serde_json::from_str(
            r#"{"uptime_millis":1.0,"shards":2,"requests_2xx":0,"requests_4xx":0,
                "requests_5xx":0,"endpoints":[],"engine":{"sessions":0,"events_applied":0,
                "clock":0,"counters":{"score_evaluations":0,"posting_visits":0,
                "assigns":0,"unassigns":0}}}"#,
        )
        .expect("legacy metrics JSON parses");
        assert!(legacy.wal.is_none());
    }

    #[test]
    fn shard_gauges_track_depth_and_occupancy() {
        let g = ShardGauge::default();
        assert_eq!(g.enqueued(), 1);
        assert_eq!(g.enqueued(), 2);
        assert_eq!(g.depth(), 2);
        g.served(3_000);
        g.served(1_500);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.handled(), 2);
        assert_eq!(g.busy_micros(), 4);
    }
}
