//! Minimal HTTP/1.1 framing over blocking TCP — request heads, bodies and
//! responses, hand-rolled on `std::io` (the offline dependency set has no
//! HTTP crate, and the server speaks a five-route JSON dialect that does
//! not need one).
//!
//! Supported surface: request line + headers + `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default, `Connection: close` honored),
//! `Expect: 100-continue`. Chunked transfer encoding is intentionally
//! rejected — every client of this server (the CLI load generator, the
//! replay checker, curl with `-d`) sends sized bodies.

use std::io::{BufRead, Write};

/// Hard cap on the request line + headers, independent of the body cap.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head (everything before the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are kept verbatim; the router
    /// does not use them).
    pub path: String,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Whether the client asked for `100 Continue` before sending the body.
    pub expect_continue: bool,
    /// The raw `x-ses-trace-id` header value, if the client sent one (the
    /// server validates and either honors or replaces it).
    pub trace: Option<String>,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RecvError {
    /// Clean end of stream between requests — the peer hung up.
    Closed,
    /// The read timed out with no request bytes consumed — the connection
    /// is idle, not broken; the caller may poll again.
    Idle,
    /// The head or body violated the HTTP subset (bad request line,
    /// oversized head, non-UTF-8 body, chunked encoding, …).
    Malformed(String),
    /// Transport error (including timeouts mid-request).
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Idle => write!(f, "connection idle"),
            RecvError::Malformed(m) => write!(f, "malformed request: {m}"),
            RecvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// How many socket read-timeouts a *started* head may ride out before the
/// connection is dropped: once the first byte of a request has arrived,
/// the caller's short idle-poll timeout stops being a deadline for the
/// peer and becomes a retry tick (≈10 s total at the server's 250 ms
/// poll), mirroring the generous in-request deadline bodies get.
const HEAD_RETRY_TICKS: u32 = 40;

/// Reads one `\n`-terminated line, never consuming (or buffering) more
/// than `budget + 1` bytes — the cap holds even when the peer streams an
/// endless newline-less line, which a plain `read_line` would happily
/// accumulate into an unbounded allocation. Read timeouts are retried
/// while `*ticks > 0` (decrementing it), so partial lines survive a slow
/// link instead of killing the connection.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    budget: usize,
    line: &mut String,
    ticks: &mut u32,
) -> std::io::Result<usize> {
    let start = line.len();
    loop {
        let remaining = budget + 1 - (line.len() - start);
        // UFCS so `take` binds to the `impl Read for &mut R` (method-call
        // syntax would auto-deref and try to move `R` itself).
        let mut limited = std::io::Read::take(&mut *reader, remaining as u64);
        match limited.read_line(line) {
            Ok(_) => {
                let consumed = line.len() - start;
                if consumed > budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "line exceeds the head budget",
                    ));
                }
                return Ok(consumed);
            }
            Err(e) if is_timeout(&e) && *ticks > 0 => *ticks -= 1,
            Err(e) => return Err(e),
        }
    }
}

/// Reads one request head. [`RecvError::Idle`] is returned only when the
/// very first read timed out with nothing consumed, so callers can keep
/// polling a keep-alive connection and re-check their shutdown flag; once
/// any head byte has arrived, timeouts are instead retried (for
/// `HEAD_RETRY_TICKS` socket-timeout ticks, ≈10 s at the server's 250 ms
/// poll) so a slow peer's request is not silently dropped.
pub fn read_head<R: BufRead>(reader: &mut R) -> Result<Head, RecvError> {
    let oversized = || RecvError::Malformed(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
    let mut line = String::new();
    // No retry budget until the request has started: the first timeout on
    // an empty line is the caller's idle tick, not a slow peer.
    let mut ticks = 0u32;
    let mut granted = false;
    let first = loop {
        match read_line_capped(reader, MAX_HEAD_BYTES, &mut line, &mut ticks) {
            Ok(n) => break n,
            Err(e) if is_timeout(&e) && !granted => {
                if line.is_empty() {
                    return Err(RecvError::Idle);
                }
                // The head has started; grant the slow-peer budget once.
                granted = true;
                ticks = HEAD_RETRY_TICKS;
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => return Err(oversized()),
            Err(e) => return Err(RecvError::Io(e)),
        }
    };
    if first == 0 {
        return Err(RecvError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_owned(), p.to_owned(), v.to_owned()),
        _ => return Err(RecvError::Malformed(format!("bad request line {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RecvError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut head = Head {
        method,
        path,
        content_length: 0,
        keep_alive: version == "HTTP/1.1",
        expect_continue: false,
        trace: None,
    };
    // Headers are part of a started request: give them the slow-peer
    // budget up front (if the request line already consumed some of it,
    // whatever remains is shared).
    if !granted {
        ticks = HEAD_RETRY_TICKS;
    }
    let mut budget = MAX_HEAD_BYTES.saturating_sub(line.len());
    loop {
        if budget == 0 {
            return Err(oversized());
        }
        let mut line = String::new();
        match read_line_capped(reader, budget, &mut line, &mut ticks) {
            Ok(0) => return Err(RecvError::Malformed("eof inside headers".into())),
            Ok(n) => budget -= n,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => return Err(oversized()),
            Err(e) => return Err(RecvError::Io(e)),
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                head.content_length = value
                    .parse()
                    .map_err(|_| RecvError::Malformed(format!("bad content-length {value:?}")))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    head.keep_alive = false;
                } else if v.contains("keep-alive") {
                    head.keep_alive = true;
                }
            }
            "expect" if value.to_ascii_lowercase().contains("100-continue") => {
                head.expect_continue = true;
            }
            "x-ses-trace-id" => {
                head.trace = Some(value.to_owned());
            }
            "transfer-encoding" => {
                return Err(RecvError::Malformed(
                    "chunked transfer encoding is not supported; send Content-Length".into(),
                ));
            }
            _ => {}
        }
    }
    Ok(head)
}

/// Reads a `Content-Length`-sized UTF-8 body.
pub fn read_body<R: BufRead>(reader: &mut R, len: usize) -> Result<String, RecvError> {
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf).map_err(RecvError::Io)?;
    String::from_utf8(buf).map_err(|_| RecvError::Malformed("body is not valid UTF-8".into()))
}

/// The reason phrase of the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response (the only content type this server speaks).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_ex(writer, status, body, keep_alive, &[], false)
}

/// [`write_response`] with extra response headers and an optional
/// headers-only mode: a `HEAD` answer advertises the `Content-Length` the
/// matching `GET` would carry but sends no body bytes (RFC 9110 §9.3.2).
pub fn write_response_ex<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
    head_only: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        status_text(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    if !head_only {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}

/// Writes the interim `100 Continue` response.
pub fn write_continue<W: Write>(writer: &mut W) -> std::io::Result<()> {
    writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn head_of(raw: &str) -> Result<Head, RecvError> {
        read_head(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let mut reader = BufReader::new(raw.as_bytes());
        let head = read_head(&mut reader).unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/solve");
        assert_eq!(head.content_length, 4);
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(read_body(&mut reader, head.content_length).unwrap(), "body");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let head = head_of("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!head.keep_alive);
        let head = head_of("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!head.keep_alive);
        let head = head_of("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(head.keep_alive);
    }

    #[test]
    fn expect_continue_is_flagged() {
        let head =
            head_of("POST /eval HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n{}")
                .unwrap();
        assert!(head.expect_continue);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(
            head_of("GARBAGE\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            head_of("GET / HTTP/2\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            head_of("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            head_of("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(head_of(""), Err(RecvError::Closed)));
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(head_of(&raw), Err(RecvError::Malformed(_))));
    }

    #[test]
    fn endless_newline_less_lines_are_capped_not_accumulated() {
        // A peer streaming bytes with no '\n' must be cut off at the head
        // budget — both on the request line and inside headers — instead
        // of growing an unbounded String.
        let flood = "A".repeat(4 * MAX_HEAD_BYTES);
        assert!(matches!(head_of(&flood), Err(RecvError::Malformed(_))));
        let raw = format!("GET / HTTP/1.1\r\nX-Flood: {flood}");
        assert!(matches!(head_of(&raw), Err(RecvError::Malformed(_))));
    }

    #[test]
    fn responses_are_framed_with_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
