//! The server runtime: listener, connection handlers, routing, shutdown.
//!
//! Concurrency model (see `DESIGN.md` §8):
//!
//! * one **acceptor** thread polls a non-blocking listener;
//! * a fixed pool of **connection handlers** waits on a rendezvous channel;
//!   when every pool worker is busy (keep-alive connections pin a worker
//!   for their lifetime) the acceptor spawns a tracked *overflow* handler
//!   instead of queueing — a connection is never stuck behind another
//!   connection, only behind its own shard;
//! * N **shard workers** each own a [`SchedulerService`]; sessions route
//!   by name hash, stateless solves round-robin. Shards never share
//!   mutable state, so there is no global lock anywhere on the request
//!   path.
//!
//! Every request is traced (see `DESIGN.md` §9): a valid inbound
//! `x-ses-trace-id` header is honored, anything else gets a fresh id, and
//! the id is echoed on the response. The connection handler records
//! `request`/`parse`/`respond` spans, the shard worker adds
//! `queue`/`service`, and the engine layers below add their own — the whole
//! timeline is queryable at `GET /trace/{id}` while it is still in the
//! rings, and requests slower than [`ServerConfig::slow_request_millis`]
//! dump it to the structured log.
//!
//! Shutdown is cooperative: a control flag (from [`ServerHandle::shutdown`]
//! or a SIGTERM/SIGINT handler installed via
//! [`install_signal_handlers`]) stops the acceptor, connection handlers
//! notice at their next request boundary or idle tick, and shard workers
//! exit when the last request sender is dropped.
//!
//! [`SchedulerService`]: ses_service::SchedulerService

use crate::http::{self, RecvError};
use crate::metrics::{
    Endpoint, EndpointLatency, EngineTotals, MetricsReport, ServerMetrics, ShardGauge, ShardStatus,
    WalReport,
};
use crate::shard::{run_shard, shard_of, ApiError, ShardMsg, ShardOp, ShardReply};
use serde::{Deserialize, Serialize};
use ses_core::testkit::workload_instance;
use ses_durable::{FsyncPolicy, RecoveredLog, SessionJournal, ShardWal, WalConfig};
use ses_obs::{Level, OpsDelta, Stage, TraceId};
use ses_service::{
    EvalRequest, InstanceInfo, InstanceRegistry, SessionEvent, SessionOpen, SessionReport,
    SolveRequest,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::time::{Duration, Instant};

/// How the server is built: network shape, concurrency, limits, and the
/// workload instance every request runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests do this).
    pub addr: String,
    /// Shard workers (each owns a `SchedulerService`).
    pub shards: usize,
    /// Pre-spawned connection-handler pool size. More concurrent
    /// keep-alive connections than this are still served — by tracked
    /// overflow threads — so this sizes the steady state, not a limit.
    pub io_threads: usize,
    /// Largest accepted request body; longer bodies get `413`.
    pub max_body_bytes: usize,
    /// Requests slower than this dump their span timeline to the log at
    /// `warn` level.
    pub slow_request_millis: u64,
    /// Users in the workload instance (see
    /// [`ses_core::testkit::workload_instance`]).
    pub users: usize,
    /// Candidate events in the workload instance.
    pub events: usize,
    /// Intervals in the workload instance.
    pub intervals: usize,
    /// Instance seed.
    pub seed: u64,
    /// Additional named instances, registered as paths to packed files
    /// (`ses pack` output). Each is opened lazily on its first request;
    /// the in-memory workload instance is always registered as
    /// `"default"`. A `"default"` entry here *replaces* the workload
    /// instance, so a server can boot entirely from packed files.
    pub instances: Vec<(String, PathBuf)>,
    /// Durability: when set, every shard keeps a [`ses_durable::ShardWal`]
    /// under `<wal_dir>/shard-{i}`, recovers its sessions at boot, and
    /// `POST /admin/rebalance` can migrate live sessions between shards.
    /// `None` (the default) runs fully in-memory, exactly as before.
    pub wal_dir: Option<PathBuf>,
    /// Fsync policy for WAL appends (ignored without `wal_dir`).
    pub fsync: FsyncPolicy,
    /// Snapshot a session's journal after this many events (`0` disables
    /// snapshots and WAL truncation; ignored without `wal_dir`).
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            shards: 4,
            io_threads: 8,
            max_body_bytes: 1 << 20,
            slow_request_millis: 250,
            users: 400,
            events: 60,
            intervals: 24,
            seed: 0,
            instances: Vec::new(),
            wal_dir: None,
            fsync: FsyncPolicy::Interval { millis: 25 },
            snapshot_every: 64,
        }
    }
}

/// The `GET /healthz` response: liveness plus the instance identity a
/// client needs to rebuild the server's universe bit-for-bit (the replay
/// determinism check does exactly that).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Users in the workload instance.
    pub users: u64,
    /// Candidate events in the workload instance.
    pub events: u64,
    /// Intervals in the workload instance.
    pub intervals: u64,
    /// Instance seed.
    pub seed: u64,
    /// Shard workers serving sessions.
    pub shards: u64,
}

/// The `GET /instances` response body: every registered instance, loaded
/// or not, in name order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstancesReport {
    /// One entry per registered instance (see
    /// [`ses_service::InstanceInfo`]).
    pub instances: Vec<InstanceInfo>,
}

/// The `GET /trace/{id}` response body: one request's span timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// The trace id, wire form (16 hex digits).
    pub trace: String,
    /// Spans still in the rings for this trace.
    pub span_count: u64,
    /// Wall span of the timeline: last end minus first start (ns).
    pub total_nanos: u64,
    /// The spans, sorted by start time (parents before children).
    pub spans: Vec<SpanView>,
}

/// One span of a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanView {
    /// Stage label (`request`, `queue`, `service`, `solve`, `select`, …).
    pub stage: String,
    /// Start, nanoseconds since the process epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
    /// Engine-operation delta attributed to this span.
    pub ops: OpsDelta,
    /// First stage-specific auxiliary counter (see [`ses_obs::Stage`]).
    pub aux_a: u64,
    /// Second stage-specific auxiliary counter.
    pub aux_b: u64,
    /// Thread that recorded the span.
    pub thread: String,
}

impl From<&ses_obs::SpanRecord> for SpanView {
    fn from(s: &ses_obs::SpanRecord) -> Self {
        Self {
            stage: s.stage.label().to_owned(),
            start_nanos: s.start_ns,
            dur_nanos: s.dur_ns,
            ops: s.ops,
            aux_a: s.aux[0],
            aux_b: s.aux[1],
            thread: s.thread.clone(),
        }
    }
}

/// Set by the SIGTERM/SIGINT handler; checked by the acceptor and every
/// connection handler alongside the per-server control flag.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM + SIGINT handlers that request a graceful shutdown of
/// every server in the process (`ses serve` calls this; tests use
/// [`ServerHandle::shutdown`] instead). The handler only stores to an
/// atomic — the async-signal-safe minimum.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the C standard library's handler registration,
    // declared with its exact ABI; SIGINT/SIGTERM are valid signal numbers
    // on every unix this builds for. The handler itself only performs a
    // single atomic store to a `static AtomicBool` — no allocation, locks,
    // formatting, or non-reentrant libc calls — which keeps it within the
    // async-signal-safe subset, and `extern "C" fn(i32)` matches the
    // handler type `signal` expects. Replacing a previously installed
    // handler is the documented, race-free behavior of `signal`.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op outside unix (the ctrl-channel path still works everywhere).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Whether a process-wide signal shutdown has been requested.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Where a session's requests route while (or after) a migration.
enum RouteState {
    /// A rebalance is in flight: requests for the session wait briefly and
    /// retry, exactly as if the session were mid-close.
    Pending,
    /// The session now lives on this shard instead of its name-hash home.
    To(usize),
}

/// Shared, all-atomic server state (config copies, flags, metrics).
struct ServerState {
    ctrl_shutdown: AtomicBool,
    max_body_bytes: usize,
    slow_request_micros: u64,
    shards: usize,
    round_robin: AtomicUsize,
    overflow_active: AtomicUsize,
    started: Instant,
    metrics: ServerMetrics,
    /// One gauge per shard, shared with that shard's worker thread.
    gauges: Vec<Arc<ShardGauge>>,
    health: HealthReport,
    /// The instance registry shared with every shard worker; `GET
    /// /instances` answers from it without touching any shard queue.
    registry: Arc<InstanceRegistry>,
    /// Whether shards run with a WAL (gates `POST /admin/rebalance`).
    durable: bool,
    /// Session-name → route override, consulted before the name hash.
    /// Touched only by rebalances and by session routes of overridden
    /// names; the common case is one uncontended read of an empty map.
    route_overrides: RwLock<HashMap<String, RouteState>>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.ctrl_shutdown.load(Ordering::SeqCst) || signal_shutdown_requested()
    }

    /// The shard `name`'s requests go to right now: the override when one
    /// is set, the stable name hash otherwise. While a migration is in
    /// flight the request waits (bounded), then answers 503 — the same
    /// contract as racing any other connection's close.
    fn effective_shard(&self, name: &str) -> Result<usize, ApiError> {
        // ~2 s at 5 ms per poll; a migration is two shard-queue round
        // trips, normally well under one tick.
        for _ in 0..400 {
            {
                // A poisoned lock means a handler panicked mid-insert;
                // the map itself is still sound, keep routing.
                let map = self
                    .route_overrides
                    .read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                match map.get(name) {
                    None => return Ok(shard_of(name, self.shards)),
                    Some(RouteState::To(shard)) => return Ok(*shard),
                    Some(RouteState::Pending) => {}
                }
            }
            if self.shutting_down() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Err(ApiError::new(
            503,
            "rebalancing",
            format!("session '{name}' is migrating between shards; retry"),
        ))
    }

    /// Sets (`Some`) or clears (`None`) a session's route override,
    /// normalizing "override equals the name hash" back to no entry.
    fn set_route(&self, name: &str, value: Option<RouteState>) {
        let mut map = self
            .route_overrides
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match value {
            Some(RouteState::To(shard)) if shard == shard_of(name, self.shards) => {
                map.remove(name);
            }
            Some(v) => {
                map.insert(name.to_owned(), v);
            }
            None => {
                map.remove(name);
            }
        }
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: std::thread::JoinHandle<()>,
    pool: Vec<std::thread::JoinHandle<()>>,
    shard_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown over the control channel and waits for
    /// every thread to drain: in-flight requests finish, new connections
    /// are no longer accepted.
    pub fn shutdown(self) {
        ses_obs::log(Level::Info, "server", "shutdown requested", &[]);
        self.state.ctrl_shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Waits for the server to stop on its own (control flag or signal).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.pool {
            let _ = worker.join();
        }
        // Overflow handlers are detached; wait for their counter to drain.
        while self.state.overflow_active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        for shard in self.shard_threads {
            let _ = shard.join();
        }
        ses_obs::log(Level::Info, "server", "stopped", &[]);
    }
}

/// Binds the listener, spawns shard workers and the connection-handler
/// pool, and returns a handle. The server is serving when this returns.
pub fn serve(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // The registry every shard resolves requests through: the in-memory
    // workload instance under "default", then every configured packed file
    // (registered lazily — a path is not touched until its first request,
    // which is what makes multi-tenant boot cheap).
    let registry = Arc::new(InstanceRegistry::new());
    registry.register(
        "default",
        workload_instance(cfg.users, cfg.events, cfg.intervals, cfg.seed),
    );
    for (name, path) in &cfg.instances {
        registry.register_path(name.clone(), path.clone());
    }
    let shards = cfg.shards.max(1);

    // Durability: open every shard's WAL on this thread, *before* any
    // worker spawns — a bad --wal-dir (or an unsupported on-disk format)
    // must fail the boot with a typed error, not a half-started server.
    let mut shard_wals: Vec<Option<(ShardWal, RecoveredLog)>> = Vec::with_capacity(shards);
    for i in 0..shards {
        match &cfg.wal_dir {
            None => shard_wals.push(None),
            Some(dir) => {
                let wal_cfg = WalConfig {
                    dir: dir.join(format!("shard-{i}")),
                    fsync: cfg.fsync,
                    snapshot_every: cfg.snapshot_every,
                    ..WalConfig::new(dir.clone())
                };
                let opened = ShardWal::open(wal_cfg).map_err(std::io::Error::other)?;
                shard_wals.push(Some(opened));
            }
        }
    }

    // A migrated session recovers on the shard whose WAL holds it — which
    // is not its name-hash home. Seed the route overrides from the
    // recovered logs so those sessions stay reachable across restarts
    // (the override map is otherwise in-memory only).
    let mut recovered_routes = HashMap::new();
    for (i, wal) in shard_wals.iter().enumerate() {
        if let Some((_, log)) = wal {
            for session in &log.sessions {
                if shard_of(&session.name, shards) != i {
                    recovered_routes.insert(session.name.clone(), RouteState::To(i));
                }
            }
        }
    }

    let gauges: Vec<Arc<ShardGauge>> = (0..shards)
        .map(|_| Arc::new(ShardGauge::default()))
        .collect();
    let mut shard_senders = Vec::with_capacity(shards);
    let mut shard_threads = Vec::with_capacity(shards);
    for (i, (gauge, wal)) in gauges.iter().zip(shard_wals).enumerate() {
        let (tx, rx) = mpsc::channel::<ShardMsg>();
        let registry = Arc::clone(&registry);
        let gauge = Arc::clone(gauge);
        shard_senders.push(tx);
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("ses-shard-{i}"))
                .spawn(move || run_shard(registry, rx, i, gauge, wal))
                // ses-analyze: allow(server-panic-discipline): boot-time spawn, fails fast before serving
                .expect("spawn shard worker"),
        );
    }

    let state = Arc::new(ServerState {
        ctrl_shutdown: AtomicBool::new(false),
        max_body_bytes: cfg.max_body_bytes,
        slow_request_micros: cfg.slow_request_millis.saturating_mul(1_000),
        shards,
        round_robin: AtomicUsize::new(0),
        overflow_active: AtomicUsize::new(0),
        started: Instant::now(),
        metrics: ServerMetrics::new(),
        gauges,
        health: HealthReport {
            status: "ok".to_owned(),
            users: cfg.users as u64,
            events: cfg.events as u64,
            intervals: cfg.intervals as u64,
            seed: cfg.seed,
            shards: shards as u64,
        },
        registry,
        durable: cfg.wal_dir.is_some(),
        route_overrides: RwLock::new(recovered_routes),
    });

    // Rendezvous channel: a send succeeds only while a pool worker is
    // already blocked in recv, which is exactly the "is anyone idle?"
    // question the acceptor needs answered race-free.
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(0);
    let conn_rx = Arc::new(std::sync::Mutex::new(conn_rx));
    let mut pool = Vec::with_capacity(cfg.io_threads.max(1));
    for i in 0..cfg.io_threads.max(1) {
        let state = Arc::clone(&state);
        let conn_rx = Arc::clone(&conn_rx);
        let senders = shard_senders.clone();
        pool.push(
            std::thread::Builder::new()
                .name(format!("ses-conn-{i}"))
                .spawn(move || loop {
                    // A poisoned lock only means a sibling handler panicked
                    // while holding it; the receiver inside is still sound,
                    // so keep serving instead of tearing down the pool.
                    let received = conn_rx
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .recv();
                    match received {
                        Ok(stream) => serve_connection(stream, &state, &senders),
                        Err(_) => break, // acceptor gone, pool drains
                    }
                })
                // ses-analyze: allow(server-panic-discipline): boot-time spawn, fails fast before serving
                .expect("spawn connection handler"),
        );
    }

    let acceptor_state = Arc::clone(&state);
    let acceptor = std::thread::Builder::new()
        .name("ses-acceptor".to_owned())
        .spawn(move || {
            accept_loop(listener, conn_tx, acceptor_state, shard_senders);
        })
        // ses-analyze: allow(server-panic-discipline): boot-time spawn, fails fast before serving
        .expect("spawn acceptor");

    ses_obs::log(
        Level::Info,
        "server",
        "listening",
        &[
            ("addr", addr.to_string().into()),
            ("shards", shards.into()),
            ("io_threads", cfg.io_threads.max(1).into()),
            ("slow_request_millis", cfg.slow_request_millis.into()),
            ("instances", state.registry.names().len().into()),
        ],
    );

    Ok(ServerHandle {
        addr,
        state,
        acceptor,
        pool,
        shard_threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: mpsc::SyncSender<TcpStream>,
    state: Arc<ServerState>,
    shard_senders: Vec<mpsc::Sender<ShardMsg>>,
) {
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Every pool worker is pinned to a live connection;
                        // spawn a tracked overflow handler so this
                        // connection is not starved behind them.
                        let state2 = Arc::clone(&state);
                        let senders = shard_senders.clone();
                        state.overflow_active.fetch_add(1, Ordering::SeqCst);
                        ses_obs::log(
                            Level::Debug,
                            "server",
                            "pool saturated, spawning overflow handler",
                            &[(
                                "active",
                                state.overflow_active.load(Ordering::SeqCst).into(),
                            )],
                        );
                        let spawned = std::thread::Builder::new()
                            .name("ses-conn-overflow".to_owned())
                            .spawn(move || {
                                serve_connection(stream, &state2, &senders);
                                state2.overflow_active.fetch_sub(1, Ordering::SeqCst);
                            });
                        if spawned.is_err() {
                            state.overflow_active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping `conn_tx` + our shard senders lets the pool and shards wind
    // down once every in-flight connection finishes.
}

/// Per-connection read timeout between requests: bounds how long a handler
/// can sit blocked on an idle keep-alive connection before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Read timeout while a request body is in flight. Much longer than the
/// idle poll: a client that received `100 Continue` (or is simply on a
/// slow link) may legitimately take more than one idle tick to deliver
/// its body, and dropping it mid-request would lose the request without
/// a response.
const BODY_TIMEOUT: Duration = Duration::from_secs(30);

fn serve_connection(
    stream: TcpStream,
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    loop {
        let head = match http::read_head(&mut reader) {
            Ok(head) => head,
            Err(RecvError::Idle) => {
                if state.shutting_down() {
                    break;
                }
                continue;
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => break,
            Err(RecvError::Malformed(m)) => {
                let err = ApiError::new(400, "malformed_http", m);
                let _ = http::write_response(&mut writer, err.status, &err.body(), false);
                state.metrics.record(Endpoint::Other, 400, 0);
                break;
            }
        };

        let start = Instant::now();
        // Honor a valid inbound trace id, mint one otherwise; everything
        // recorded on this thread until the scope drops belongs to it.
        let trace = head
            .trace
            .as_deref()
            .and_then(TraceId::parse)
            .unwrap_or_else(TraceId::generate);
        let trace_hex = trace.to_string();
        let _trace_guard = ses_obs::trace_scope(trace);
        let mut request_span = ses_obs::span(Stage::Request);

        // Body-size cap *before* reading the body (satellite: oversized
        // ingestion is rejected up front with a structured 413).
        if head.content_length > state.max_body_bytes {
            let err = ApiError::new(
                413,
                "body_too_large",
                format!(
                    "request body of {} bytes exceeds the {}-byte cap",
                    head.content_length, state.max_body_bytes
                ),
            );
            let _ = http::write_response_ex(
                &mut writer,
                err.status,
                &err.body(),
                false,
                &[("x-ses-trace-id", trace_hex.as_str())],
                false,
            );
            state
                .metrics
                .record(Endpoint::Other, 413, start.elapsed().as_micros() as u64);
            break; // the unread body makes the stream unusable
        }
        if head.expect_continue && http::write_continue(&mut writer).is_err() {
            break;
        }
        // The idle-poll timeout is for *between* requests; give the body
        // its own, much longer deadline (the socket is shared with the
        // reader's cloned handle, so setting it on `writer` covers both).
        let _ = writer.set_read_timeout(Some(BODY_TIMEOUT));
        let body = {
            let _parse_span = ses_obs::span(Stage::Parse);
            match http::read_body(&mut reader, head.content_length) {
                Ok(body) => body,
                Err(_) => break,
            }
        };
        let _ = writer.set_read_timeout(Some(IDLE_POLL));

        // OPTIONS answers with the route's Allow list; HEAD routes as GET
        // and sends headers only (both satellites: no more blanket 405/404
        // on known routes).
        let (endpoint, status, response_body, allow) = if head.method == "OPTIONS" {
            match allow_for(&head.path) {
                Some((endpoint, allow)) => (
                    endpoint,
                    200,
                    format!("{{\"allow\":\"{allow}\"}}"),
                    Some(allow),
                ),
                None => {
                    let err = ApiError::new(
                        404,
                        "unknown_route",
                        format!("no route for OPTIONS {}", head.path),
                    );
                    (Endpoint::Other, err.status, err.body(), None)
                }
            }
        } else {
            let method = if head.method == "HEAD" {
                "GET"
            } else {
                head.method.as_str()
            };
            let (endpoint, result) = route(state, shard_senders, method, &head.path, &body, trace);
            let (status, response_body) = match result {
                Ok(body) => (200, body),
                Err(e) => (e.status, e.body()),
            };
            (endpoint, status, response_body, None)
        };

        let keep_alive = head.keep_alive && !state.shutting_down();
        let mut extra_headers: Vec<(&str, &str)> = vec![("x-ses-trace-id", trace_hex.as_str())];
        if let Some(allow) = allow {
            extra_headers.push(("Allow", allow));
        }
        let written = {
            let _respond_span = ses_obs::span(Stage::Respond);
            http::write_response_ex(
                &mut writer,
                status,
                &response_body,
                keep_alive,
                &extra_headers,
                head.method == "HEAD",
            )
        };

        let micros = start.elapsed().as_micros() as u64;
        request_span.set_aux(u64::from(status), 0);
        drop(request_span); // recorded now, so the slow log sees it
        state.metrics.record(endpoint, status, micros);
        if micros >= state.slow_request_micros && ses_obs::log_enabled(Level::Warn) {
            let timeline = ses_obs::format_trace(trace, &ses_obs::collect_trace(trace));
            ses_obs::log(
                Level::Warn,
                "server",
                "slow request",
                &[
                    ("method", head.method.as_str().into()),
                    ("path", head.path.as_str().into()),
                    ("status", status.into()),
                    ("millis", (micros as f64 / 1e3).into()),
                    ("trace", trace_hex.as_str().into()),
                    ("timeline", timeline.into()),
                ],
            );
        }
        if written.is_err() || !keep_alive {
            break;
        }
    }
    let _ = writer.flush();
}

/// Parses a request body, turning shim parse errors into structured 400s
/// (satellite: parse failures must answer, not drop the connection).
fn parse_body<T: serde::Deserialize>(body: &str, what: &str) -> Result<T, ApiError> {
    serde_json::from_str(body)
        .map_err(|e| ApiError::new(400, "parse", format!("invalid {what} body: {e}")))
}

/// Routes one request and produces its response body (or typed error).
fn route(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
    method: &str,
    path: &str,
    body: &str,
    trace: TraceId,
) -> (Endpoint, Result<String, ApiError>) {
    let path = path.split('?').next().unwrap_or(path);
    match (method, path) {
        ("GET", "/healthz") => {
            // Serialization of this plain struct cannot fail today, but the
            // request path answers a structured 500 rather than panicking
            // if the shim ever grows a failure mode.
            let body = serde_json::to_string(&state.health)
                .map_err(|e| ApiError::new(500, "internal", format!("health report: {e}")));
            (Endpoint::Healthz, body)
        }
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            metrics_report(state, shard_senders, trace),
        ),
        ("GET", "/instances") => {
            let report = InstancesReport {
                instances: state.registry.describe(),
            };
            let body = serde_json::to_string(&report)
                .map_err(|e| ApiError::new(500, "serialize", e.to_string()));
            (Endpoint::Instances, body)
        }
        ("GET", p) if p.starts_with("/trace/") => {
            (Endpoint::Trace, trace_report(&p["/trace/".len()..]))
        }
        ("POST", "/solve") => {
            let result = parse_body::<SolveRequest>(body, "SolveRequest").and_then(|req| {
                let shard = state.round_robin.fetch_add(1, Ordering::Relaxed) % state.shards;
                dispatch(state, shard_senders, shard, ShardOp::Solve(req), trace)
            });
            (Endpoint::Solve, result)
        }
        ("POST", "/eval") => {
            let result = parse_body::<EvalRequest>(body, "EvalRequest").and_then(|req| {
                let shard = state.round_robin.fetch_add(1, Ordering::Relaxed) % state.shards;
                dispatch(state, shard_senders, shard, ShardOp::Eval(req), trace)
            });
            (Endpoint::Eval, result)
        }
        ("POST", "/admin/rebalance") => (
            Endpoint::Rebalance,
            rebalance(state, shard_senders, body, trace),
        ),
        _ => match session_route(path) {
            Some((name, action)) if method == "POST" => {
                let op = match action {
                    "open" => parse_body::<SessionOpen>(body, "SessionOpen").and_then(|open| {
                        if open.name != name {
                            Err(ApiError::new(
                                400,
                                "name_mismatch",
                                format!(
                                    "session name '{}' in the body does not match '{name}' in the path",
                                    open.name
                                ),
                            ))
                        } else {
                            Ok(ShardOp::Open(open))
                        }
                    }),
                    "event" => parse_body::<SessionEvent>(body, "SessionEvent").map(|event| {
                        ShardOp::Event {
                            name: name.clone(),
                            event,
                        }
                    }),
                    "report" => Ok(ShardOp::Report { name: name.clone() }),
                    "close" => Ok(ShardOp::Close { name: name.clone() }),
                    other => Err(ApiError::new(
                        404,
                        "unknown_route",
                        format!("unknown session action '{other}'"),
                    )),
                };
                let endpoint = match action {
                    "open" => Endpoint::Open,
                    "event" => Endpoint::Event,
                    "report" => Endpoint::Report,
                    "close" => Endpoint::Close,
                    _ => Endpoint::Other,
                };
                (
                    endpoint,
                    op.and_then(|op| {
                        // The override map first (a migrated session no
                        // longer lives on its name-hash shard), then the
                        // stable hash.
                        let shard = state.effective_shard(&name)?;
                        dispatch(state, shard_senders, shard, op, trace)
                    }),
                )
            }
            Some(_) => (
                Endpoint::Other,
                Err(ApiError::new(
                    405,
                    "method_not_allowed",
                    format!("{method} is not allowed here (session routes are POST)"),
                )),
            ),
            None => (
                Endpoint::Other,
                Err(ApiError::new(
                    404,
                    "unknown_route",
                    format!("no route for {method} {path}"),
                )),
            ),
        },
    }
}

/// The `POST /admin/rebalance` request body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceRequest {
    /// The session to migrate.
    pub session: String,
    /// The shard index it should live on.
    pub target: usize,
}

/// The `POST /admin/rebalance` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalanceResponse {
    /// The migrated session.
    pub session: String,
    /// Shard it moved from.
    pub from: u64,
    /// Shard it lives on now.
    pub to: u64,
    /// Journaled events shipped with it.
    pub events_moved: u64,
    /// The session's report after replay on the target (`None` when the
    /// request was a no-op because the session was already there).
    #[serde(default)]
    pub report: Option<SessionReport>,
}

/// Live session migration. The session is drained on its owning shard
/// (FIFO with in-flight requests), its journal extracted (leaving a close
/// record, so a crash never resurrects it at the source), installed on the
/// target (re-logged with fresh LSNs, then replayed through the service),
/// and finally re-routed. While the override is `Pending`, requests for
/// the session wait briefly — to every client the migration is
/// indistinguishable from a close immediately followed by a reopen
/// elsewhere. On an install failure the journal is re-installed at the
/// source and the route restored.
fn rebalance(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
    body: &str,
    trace: TraceId,
) -> Result<String, ApiError> {
    let req: RebalanceRequest = parse_body(body, "RebalanceRequest")?;
    if !state.durable {
        return Err(ApiError::new(
            400,
            "not_durable",
            "session migration requires the server to run with --wal-dir",
        ));
    }
    if req.target >= state.shards {
        return Err(ApiError::new(
            400,
            "bad_target",
            format!(
                "target shard {} out of range (server has {} shards)",
                req.target, state.shards
            ),
        ));
    }
    let source = state.effective_shard(&req.session)?;
    let respond = |resp: &RebalanceResponse| {
        serde_json::to_string(resp).map_err(|e| ApiError::new(500, "serialize", e.to_string()))
    };
    if source == req.target {
        // Already home — but "rebalance a session that does not exist"
        // must still be a 404, so ask the shard before declaring no-op.
        dispatch(
            state,
            shard_senders,
            source,
            ShardOp::Report {
                name: req.session.clone(),
            },
            trace,
        )?;
        return respond(&RebalanceResponse {
            session: req.session,
            from: source as u64,
            to: req.target as u64,
            events_moved: 0,
            report: None,
        });
    }

    // Park the session's route: requests arriving from here on wait for
    // the migration to settle instead of racing it.
    state.set_route(&req.session, Some(RouteState::Pending));
    let extracted = dispatch(
        state,
        shard_senders,
        source,
        ShardOp::Extract {
            name: req.session.clone(),
        },
        trace,
    );
    let journal_json = match extracted {
        Ok(body) => body,
        Err(e) => {
            // Nothing moved; the session (if it exists) still lives where
            // it was.
            state.set_route(&req.session, Some(RouteState::To(source)));
            return Err(e);
        }
    };
    let journal: SessionJournal = match serde_json::from_str(&journal_json) {
        Ok(j) => j,
        Err(e) => {
            state.set_route(&req.session, Some(RouteState::To(source)));
            return Err(ApiError::new(
                500,
                "internal",
                format!("extracted journal did not parse: {e}"),
            ));
        }
    };
    let events_moved = journal.events.len() as u64;

    let installed = dispatch(
        state,
        shard_senders,
        req.target,
        ShardOp::Install {
            journal: Box::new(journal.clone()),
        },
        trace,
    );
    match installed {
        Ok(report_json) => {
            state.set_route(&req.session, Some(RouteState::To(req.target)));
            ses_obs::log(
                Level::Info,
                "server",
                "session rebalanced",
                &[
                    ("session", req.session.as_str().into()),
                    ("from", source.into()),
                    ("to", req.target.into()),
                    ("events_moved", events_moved.into()),
                ],
            );
            let report = serde_json::from_str::<SessionReport>(&report_json).ok();
            respond(&RebalanceResponse {
                session: req.session,
                from: source as u64,
                to: req.target as u64,
                events_moved,
                report,
            })
        }
        Err(e) => {
            // Roll back: the journal is still in hand — reinstall at the
            // source so the session survives the failed migration.
            let restored = dispatch(
                state,
                shard_senders,
                source,
                ShardOp::Install {
                    journal: Box::new(journal),
                },
                trace,
            );
            state.set_route(&req.session, Some(RouteState::To(source)));
            ses_obs::log(
                Level::Warn,
                "server",
                "rebalance install failed, session restored at source",
                &[
                    ("session", req.session.as_str().into()),
                    ("error", e.message.as_str().into()),
                    ("restored", restored.is_ok().into()),
                ],
            );
            Err(ApiError::new(
                500,
                "rebalance_failed",
                format!(
                    "install on shard {} failed ({}); session restored on shard {source}",
                    req.target, e.message
                ),
            ))
        }
    }
}

/// Builds the `GET /trace/{id}` response: bad ids are 400, traces with no
/// spans left in the rings (never seen, or evicted by wrapping) are 404.
fn trace_report(raw: &str) -> Result<String, ApiError> {
    let Some(id) = TraceId::parse(raw) else {
        return Err(ApiError::new(
            400,
            "bad_trace_id",
            format!("'{raw}' is not a trace id (1-16 hex digits, non-zero)"),
        ));
    };
    let spans = ses_obs::collect_trace(id);
    if spans.is_empty() {
        return Err(ApiError::new(
            404,
            "unknown_trace",
            format!("trace {id} has no recorded spans (never seen, or evicted)"),
        ));
    }
    let origin = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end = spans.iter().map(|s| s.end_ns()).max().unwrap_or(origin);
    let report = TraceReport {
        trace: id.to_string(),
        span_count: spans.len() as u64,
        total_nanos: end.saturating_sub(origin),
        spans: spans.iter().map(SpanView::from).collect(),
    };
    serde_json::to_string(&report).map_err(|e| ApiError::new(500, "serialize", e.to_string()))
}

/// The `Allow` list for a known route (`None` = 404). Used by the OPTIONS
/// handler.
fn allow_for(path: &str) -> Option<(Endpoint, &'static str)> {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/healthz" => Some((Endpoint::Healthz, "GET, HEAD, OPTIONS")),
        "/metrics" => Some((Endpoint::Metrics, "GET, HEAD, OPTIONS")),
        "/instances" => Some((Endpoint::Instances, "GET, HEAD, OPTIONS")),
        "/solve" => Some((Endpoint::Solve, "POST, OPTIONS")),
        "/eval" => Some((Endpoint::Eval, "POST, OPTIONS")),
        "/admin/rebalance" => Some((Endpoint::Rebalance, "POST, OPTIONS")),
        p if p.starts_with("/trace/") && !p["/trace/".len()..].is_empty() => {
            Some((Endpoint::Trace, "GET, HEAD, OPTIONS"))
        }
        p => {
            let (_, action) = session_route(p)?;
            let endpoint = match action {
                "open" => Endpoint::Open,
                "event" => Endpoint::Event,
                "report" => Endpoint::Report,
                "close" => Endpoint::Close,
                _ => return None,
            };
            Some((endpoint, "POST, OPTIONS"))
        }
    }
}

/// Decodes `%XX` percent-escapes (no `+`-to-space: this is a path segment,
/// not a query string). `None` on truncated/invalid escapes or non-UTF-8.
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
            let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Splits `/sessions/{name}/{action}` (non-empty name, no deeper nesting)
/// and percent-decodes the name, so clients can use session names with
/// spaces or non-ASCII characters in URL paths.
fn session_route(path: &str) -> Option<(String, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (name, action) = rest.split_once('/')?;
    if name.is_empty() || action.is_empty() || action.contains('/') {
        return None;
    }
    let name = percent_decode(name)?;
    Some((name, action))
}

/// Sends one op to one shard and waits for its reply. The message carries
/// the request's trace id and enqueue timestamp so the shard can record the
/// queue-wait span and attribute its work to the trace.
fn dispatch(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
    shard: usize,
    op: ShardOp,
    trace: TraceId,
) -> Result<String, ApiError> {
    let (reply_tx, reply_rx) = mpsc::channel();
    let gauge = &state.gauges[shard];
    let depth = gauge.enqueued();
    let sent = shard_senders[shard].send(ShardMsg {
        op,
        reply: reply_tx,
        trace: trace.raw(),
        enqueued_ns: ses_obs::now_ns(),
        depth,
    });
    if sent.is_err() {
        gauge.abandoned();
        return Err(ApiError::new(503, "shutting_down", "shard worker is gone"));
    }
    match reply_rx.recv() {
        Ok(ShardReply::Ok(body)) => Ok(body),
        Ok(ShardReply::Err(e)) => Err(e),
        Ok(ShardReply::Stats(_)) => Err(ApiError::new(
            500,
            "internal",
            "unexpected stats reply to a request op",
        )),
        Err(_) => Err(ApiError::new(503, "shutting_down", "shard worker is gone")),
    }
}

/// Builds the `/metrics` body: server-side request accounting, per-shard
/// gauges, engine totals gathered from every shard, and the process-wide
/// span-stage latency distributions.
fn metrics_report(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
    trace: TraceId,
) -> Result<String, ApiError> {
    let mut engine = EngineTotals::default();
    let mut shards_detail = Vec::with_capacity(shard_senders.len());
    let mut wal: Option<WalReport> = None;
    let mut wal_append: Option<ses_obs::HistogramSnapshot> = None;
    let mut wal_fsync: Option<ses_obs::HistogramSnapshot> = None;
    for (shard, sender) in shard_senders.iter().enumerate() {
        let (reply_tx, reply_rx) = mpsc::channel();
        let gauge = &state.gauges[shard];
        let depth = gauge.enqueued();
        let sent = sender.send(ShardMsg {
            op: ShardOp::Stats,
            reply: reply_tx,
            trace: trace.raw(),
            enqueued_ns: ses_obs::now_ns(),
            depth,
        });
        if sent.is_err() {
            gauge.abandoned();
            continue; // shard already drained during shutdown
        }
        match reply_rx.recv() {
            Ok(ShardReply::Stats(stats)) => {
                engine.merge(&stats.engine);
                shards_detail.push(ShardStatus {
                    shard: shard as u64,
                    queue_depth: gauge.depth(),
                    handled: gauge.handled(),
                    busy_micros: gauge.busy_micros(),
                    sessions: stats.engine.sessions,
                    events_applied: stats.engine.events_applied,
                    column_slots: stats.engine.column_slots,
                    resident_bytes: stats.engine.resident_bytes,
                });
                if let Some(ws) = &stats.wal {
                    wal.get_or_insert_with(WalReport::default).merge_stats(ws);
                }
                for (total, snap) in [
                    (&mut wal_append, stats.append),
                    (&mut wal_fsync, stats.fsync),
                ] {
                    if let Some(snap) = snap {
                        match total {
                            Some(t) => t.merge(&snap),
                            None => *total = Some(snap),
                        }
                    }
                }
            }
            Ok(_) => {
                return Err(ApiError::new(
                    500,
                    "internal",
                    format!("shard {shard} answered stats with a request reply"),
                ))
            }
            Err(_) => continue,
        }
    }
    if let Some(wal) = wal.as_mut() {
        wal.append = wal_append
            .filter(|s| s.count > 0)
            .map(|s| EndpointLatency::from_snapshot("wal_append", &s));
        wal.fsync = wal_fsync
            .filter(|s| s.count > 0)
            .map(|s| EndpointLatency::from_snapshot("wal_fsync", &s));
    }
    let report = MetricsReport {
        uptime_millis: state.started.elapsed().as_secs_f64() * 1e3,
        shards: state.shards as u64,
        requests_2xx: state.metrics.requests_2xx(),
        requests_4xx: state.metrics.requests_4xx(),
        requests_5xx: state.metrics.requests_5xx(),
        endpoints: state.metrics.endpoint_latencies(),
        engine,
        shards_detail,
        span_stages: ses_obs::stage_latencies(),
        wal,
    };
    serde_json::to_string(&report).map_err(|e| ApiError::new(500, "serialize", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_routes_parse() {
        assert_eq!(
            session_route("/sessions/a/open"),
            Some(("a".to_owned(), "open"))
        );
        assert_eq!(
            session_route("/sessions/lg-0-1/event"),
            Some(("lg-0-1".to_owned(), "event"))
        );
        assert_eq!(session_route("/sessions//open"), None);
        assert_eq!(session_route("/sessions/a"), None);
        assert_eq!(session_route("/sessions/a/b/c"), None);
        assert_eq!(session_route("/solve"), None);
    }

    #[test]
    fn session_names_are_percent_decoded() {
        assert_eq!(
            session_route("/sessions/caf%C3%A9%20night/report"),
            Some(("café night".to_owned(), "report"))
        );
        // Truncated and invalid escapes do not route.
        assert_eq!(session_route("/sessions/a%2/open"), None);
        assert_eq!(session_route("/sessions/a%zz/open"), None);
        // Invalid UTF-8 after decoding does not route.
        assert_eq!(session_route("/sessions/%ff%fe/open"), None);
    }

    #[test]
    fn allow_lists_cover_known_routes() {
        assert_eq!(allow_for("/healthz").unwrap().1, "GET, HEAD, OPTIONS");
        assert_eq!(
            allow_for("/instances"),
            Some((Endpoint::Instances, "GET, HEAD, OPTIONS"))
        );
        assert_eq!(allow_for("/solve").unwrap().1, "POST, OPTIONS");
        assert_eq!(allow_for("/trace/00ff").unwrap().1, "GET, HEAD, OPTIONS");
        assert_eq!(
            allow_for("/sessions/a/event"),
            Some((Endpoint::Event, "POST, OPTIONS"))
        );
        assert_eq!(allow_for("/sessions/a/nope"), None);
        assert_eq!(allow_for("/nope"), None);
    }

    #[test]
    fn trace_reports_reject_bad_ids_and_unknown_traces() {
        let bad = trace_report("not-hex").unwrap_err();
        assert_eq!(bad.status, 400);
        assert_eq!(bad.kind, "bad_trace_id");
        // A valid id that was never recorded anywhere: 404.
        let miss = trace_report("00000000deadbeef").unwrap_err();
        assert_eq!(miss.status, 404);
        assert_eq!(miss.kind, "unknown_trace");
    }
}
