//! The server runtime: listener, connection handlers, routing, shutdown.
//!
//! Concurrency model (see `DESIGN.md` §8):
//!
//! * one **acceptor** thread polls a non-blocking listener;
//! * a fixed pool of **connection handlers** waits on a rendezvous channel;
//!   when every pool worker is busy (keep-alive connections pin a worker
//!   for their lifetime) the acceptor spawns a tracked *overflow* handler
//!   instead of queueing — a connection is never stuck behind another
//!   connection, only behind its own shard;
//! * N **shard workers** each own a [`SchedulerService`]; sessions route
//!   by name hash, stateless solves round-robin. Shards never share
//!   mutable state, so there is no global lock anywhere on the request
//!   path.
//!
//! Shutdown is cooperative: a control flag (from [`ServerHandle::shutdown`]
//! or a SIGTERM/SIGINT handler installed via
//! [`install_signal_handlers`]) stops the acceptor, connection handlers
//! notice at their next request boundary or idle tick, and shard workers
//! exit when the last request sender is dropped.
//!
//! [`SchedulerService`]: ses_service::SchedulerService

use crate::http::{self, RecvError};
use crate::metrics::{Endpoint, EngineTotals, MetricsReport, ServerMetrics};
use crate::shard::{run_shard, shard_of, ApiError, ShardMsg, ShardOp, ShardReply};
use serde::{Deserialize, Serialize};
use ses_core::testkit::workload_instance;
use ses_service::{EvalRequest, SessionEvent, SessionOpen, SolveRequest};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How the server is built: network shape, concurrency, limits, and the
/// workload instance every request runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests do this).
    pub addr: String,
    /// Shard workers (each owns a `SchedulerService`).
    pub shards: usize,
    /// Pre-spawned connection-handler pool size. More concurrent
    /// keep-alive connections than this are still served — by tracked
    /// overflow threads — so this sizes the steady state, not a limit.
    pub io_threads: usize,
    /// Largest accepted request body; longer bodies get `413`.
    pub max_body_bytes: usize,
    /// Users in the workload instance (see
    /// [`ses_core::testkit::workload_instance`]).
    pub users: usize,
    /// Candidate events in the workload instance.
    pub events: usize,
    /// Intervals in the workload instance.
    pub intervals: usize,
    /// Instance seed.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            shards: 4,
            io_threads: 8,
            max_body_bytes: 1 << 20,
            users: 400,
            events: 60,
            intervals: 24,
            seed: 0,
        }
    }
}

/// The `GET /healthz` response: liveness plus the instance identity a
/// client needs to rebuild the server's universe bit-for-bit (the replay
/// determinism check does exactly that).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Users in the workload instance.
    pub users: u64,
    /// Candidate events in the workload instance.
    pub events: u64,
    /// Intervals in the workload instance.
    pub intervals: u64,
    /// Instance seed.
    pub seed: u64,
    /// Shard workers serving sessions.
    pub shards: u64,
}

/// Set by the SIGTERM/SIGINT handler; checked by the acceptor and every
/// connection handler alongside the per-server control flag.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM + SIGINT handlers that request a graceful shutdown of
/// every server in the process (`ses serve` calls this; tests use
/// [`ServerHandle::shutdown`] instead). The handler only stores to an
/// atomic — the async-signal-safe minimum.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op outside unix (the ctrl-channel path still works everywhere).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Whether a process-wide signal shutdown has been requested.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Shared, all-atomic server state (config copies, flags, metrics).
struct ServerState {
    ctrl_shutdown: AtomicBool,
    max_body_bytes: usize,
    shards: usize,
    round_robin: AtomicUsize,
    overflow_active: AtomicUsize,
    started: Instant,
    metrics: ServerMetrics,
    health: HealthReport,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.ctrl_shutdown.load(Ordering::SeqCst) || signal_shutdown_requested()
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: std::thread::JoinHandle<()>,
    pool: Vec<std::thread::JoinHandle<()>>,
    shard_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown over the control channel and waits for
    /// every thread to drain: in-flight requests finish, new connections
    /// are no longer accepted.
    pub fn shutdown(self) {
        self.state.ctrl_shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Waits for the server to stop on its own (control flag or signal).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.pool {
            let _ = worker.join();
        }
        // Overflow handlers are detached; wait for their counter to drain.
        while self.state.overflow_active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        for shard in self.shard_threads {
            let _ = shard.join();
        }
    }
}

/// Binds the listener, spawns shard workers and the connection-handler
/// pool, and returns a handle. The server is serving when this returns.
pub fn serve(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let inst = workload_instance(cfg.users, cfg.events, cfg.intervals, cfg.seed);
    let shards = cfg.shards.max(1);
    let mut shard_senders = Vec::with_capacity(shards);
    let mut shard_threads = Vec::with_capacity(shards);
    for i in 0..shards {
        let (tx, rx) = mpsc::channel::<ShardMsg>();
        let inst = Arc::clone(&inst);
        shard_senders.push(tx);
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("ses-shard-{i}"))
                .spawn(move || run_shard(inst, rx))
                .expect("spawn shard worker"),
        );
    }

    let state = Arc::new(ServerState {
        ctrl_shutdown: AtomicBool::new(false),
        max_body_bytes: cfg.max_body_bytes,
        shards,
        round_robin: AtomicUsize::new(0),
        overflow_active: AtomicUsize::new(0),
        started: Instant::now(),
        metrics: ServerMetrics::new(),
        health: HealthReport {
            status: "ok".to_owned(),
            users: cfg.users as u64,
            events: cfg.events as u64,
            intervals: cfg.intervals as u64,
            seed: cfg.seed,
            shards: shards as u64,
        },
    });

    // Rendezvous channel: a send succeeds only while a pool worker is
    // already blocked in recv, which is exactly the "is anyone idle?"
    // question the acceptor needs answered race-free.
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(0);
    let conn_rx = Arc::new(std::sync::Mutex::new(conn_rx));
    let mut pool = Vec::with_capacity(cfg.io_threads.max(1));
    for i in 0..cfg.io_threads.max(1) {
        let state = Arc::clone(&state);
        let conn_rx = Arc::clone(&conn_rx);
        let senders = shard_senders.clone();
        pool.push(
            std::thread::Builder::new()
                .name(format!("ses-conn-{i}"))
                .spawn(move || loop {
                    let received = conn_rx.lock().expect("conn queue lock").recv();
                    match received {
                        Ok(stream) => serve_connection(stream, &state, &senders),
                        Err(_) => break, // acceptor gone, pool drains
                    }
                })
                .expect("spawn connection handler"),
        );
    }

    let acceptor_state = Arc::clone(&state);
    let acceptor = std::thread::Builder::new()
        .name("ses-acceptor".to_owned())
        .spawn(move || {
            accept_loop(listener, conn_tx, acceptor_state, shard_senders);
        })
        .expect("spawn acceptor");

    Ok(ServerHandle {
        addr,
        state,
        acceptor,
        pool,
        shard_threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: mpsc::SyncSender<TcpStream>,
    state: Arc<ServerState>,
    shard_senders: Vec<mpsc::Sender<ShardMsg>>,
) {
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Every pool worker is pinned to a live connection;
                        // spawn a tracked overflow handler so this
                        // connection is not starved behind them.
                        let state2 = Arc::clone(&state);
                        let senders = shard_senders.clone();
                        state.overflow_active.fetch_add(1, Ordering::SeqCst);
                        let spawned = std::thread::Builder::new()
                            .name("ses-conn-overflow".to_owned())
                            .spawn(move || {
                                serve_connection(stream, &state2, &senders);
                                state2.overflow_active.fetch_sub(1, Ordering::SeqCst);
                            });
                        if spawned.is_err() {
                            state.overflow_active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping `conn_tx` + our shard senders lets the pool and shards wind
    // down once every in-flight connection finishes.
}

/// Per-connection read timeout between requests: bounds how long a handler
/// can sit blocked on an idle keep-alive connection before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Read timeout while a request body is in flight. Much longer than the
/// idle poll: a client that received `100 Continue` (or is simply on a
/// slow link) may legitimately take more than one idle tick to deliver
/// its body, and dropping it mid-request would lose the request without
/// a response.
const BODY_TIMEOUT: Duration = Duration::from_secs(30);

fn serve_connection(
    stream: TcpStream,
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    loop {
        let head = match http::read_head(&mut reader) {
            Ok(head) => head,
            Err(RecvError::Idle) => {
                if state.shutting_down() {
                    break;
                }
                continue;
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => break,
            Err(RecvError::Malformed(m)) => {
                let err = ApiError::new(400, "malformed_http", m);
                let _ = http::write_response(&mut writer, err.status, &err.body(), false);
                state.metrics.record(Endpoint::Other, 400, 0);
                break;
            }
        };

        let start = Instant::now();
        // Body-size cap *before* reading the body (satellite: oversized
        // ingestion is rejected up front with a structured 413).
        if head.content_length > state.max_body_bytes {
            let err = ApiError::new(
                413,
                "body_too_large",
                format!(
                    "request body of {} bytes exceeds the {}-byte cap",
                    head.content_length, state.max_body_bytes
                ),
            );
            let _ = http::write_response(&mut writer, err.status, &err.body(), false);
            state
                .metrics
                .record(Endpoint::Other, 413, start.elapsed().as_micros() as u64);
            break; // the unread body makes the stream unusable
        }
        if head.expect_continue && http::write_continue(&mut writer).is_err() {
            break;
        }
        // The idle-poll timeout is for *between* requests; give the body
        // its own, much longer deadline (the socket is shared with the
        // reader's cloned handle, so setting it on `writer` covers both).
        let _ = writer.set_read_timeout(Some(BODY_TIMEOUT));
        let body = match http::read_body(&mut reader, head.content_length) {
            Ok(body) => body,
            Err(_) => break,
        };
        let _ = writer.set_read_timeout(Some(IDLE_POLL));

        let (endpoint, result) = route(state, shard_senders, &head.method, &head.path, &body);
        let (status, response_body) = match result {
            Ok(body) => (200, body),
            Err(e) => (e.status, e.body()),
        };
        let keep_alive = head.keep_alive && !state.shutting_down();
        if http::write_response(&mut writer, status, &response_body, keep_alive).is_err() {
            break;
        }
        state
            .metrics
            .record(endpoint, status, start.elapsed().as_micros() as u64);
        if !keep_alive {
            break;
        }
    }
    let _ = writer.flush();
}

/// Parses a request body, turning shim parse errors into structured 400s
/// (satellite: parse failures must answer, not drop the connection).
fn parse_body<T: serde::Deserialize>(body: &str, what: &str) -> Result<T, ApiError> {
    serde_json::from_str(body)
        .map_err(|e| ApiError::new(400, "parse", format!("invalid {what} body: {e}")))
}

/// Routes one request and produces its response body (or typed error).
fn route(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
    method: &str,
    path: &str,
    body: &str,
) -> (Endpoint, Result<String, ApiError>) {
    let path = path.split('?').next().unwrap_or(path);
    match (method, path) {
        ("GET", "/healthz") => {
            let body = serde_json::to_string(&state.health).expect("plain data serializes");
            (Endpoint::Healthz, Ok(body))
        }
        ("GET", "/metrics") => (Endpoint::Metrics, metrics_report(state, shard_senders)),
        ("POST", "/solve") => {
            let result = parse_body::<SolveRequest>(body, "SolveRequest").and_then(|req| {
                let shard = state.round_robin.fetch_add(1, Ordering::Relaxed) % state.shards;
                dispatch(shard_senders, shard, ShardOp::Solve(req))
            });
            (Endpoint::Solve, result)
        }
        ("POST", "/eval") => {
            let result = parse_body::<EvalRequest>(body, "EvalRequest").and_then(|req| {
                let shard = state.round_robin.fetch_add(1, Ordering::Relaxed) % state.shards;
                dispatch(shard_senders, shard, ShardOp::Eval(req))
            });
            (Endpoint::Eval, result)
        }
        _ => match session_route(path) {
            Some((name, action)) if method == "POST" => {
                let shard = shard_of(name, state.shards);
                let op = match action {
                    "open" => parse_body::<SessionOpen>(body, "SessionOpen").and_then(|open| {
                        if open.name != name {
                            Err(ApiError::new(
                                400,
                                "name_mismatch",
                                format!(
                                    "session name '{}' in the body does not match '{name}' in the path",
                                    open.name
                                ),
                            ))
                        } else {
                            Ok(ShardOp::Open(open))
                        }
                    }),
                    "event" => parse_body::<SessionEvent>(body, "SessionEvent").map(|event| {
                        ShardOp::Event {
                            name: name.to_owned(),
                            event,
                        }
                    }),
                    "report" => Ok(ShardOp::Report {
                        name: name.to_owned(),
                    }),
                    "close" => Ok(ShardOp::Close {
                        name: name.to_owned(),
                    }),
                    other => Err(ApiError::new(
                        404,
                        "unknown_route",
                        format!("unknown session action '{other}'"),
                    )),
                };
                let endpoint = match action {
                    "open" => Endpoint::Open,
                    "event" => Endpoint::Event,
                    "report" => Endpoint::Report,
                    "close" => Endpoint::Close,
                    _ => Endpoint::Other,
                };
                (
                    endpoint,
                    op.and_then(|op| dispatch(shard_senders, shard, op)),
                )
            }
            Some(_) => (
                Endpoint::Other,
                Err(ApiError::new(
                    405,
                    "method_not_allowed",
                    format!("{method} is not allowed here (session routes are POST)"),
                )),
            ),
            None => (
                Endpoint::Other,
                Err(ApiError::new(
                    404,
                    "unknown_route",
                    format!("no route for {method} {path}"),
                )),
            ),
        },
    }
}

/// Splits `/sessions/{name}/{action}` (non-empty name, no deeper nesting).
fn session_route(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (name, action) = rest.split_once('/')?;
    if name.is_empty() || action.is_empty() || action.contains('/') {
        return None;
    }
    Some((name, action))
}

/// Sends one op to one shard and waits for its reply.
fn dispatch(
    shard_senders: &[mpsc::Sender<ShardMsg>],
    shard: usize,
    op: ShardOp,
) -> Result<String, ApiError> {
    let (reply_tx, reply_rx) = mpsc::channel();
    shard_senders[shard]
        .send(ShardMsg {
            op,
            reply: reply_tx,
        })
        .map_err(|_| ApiError::new(503, "shutting_down", "shard worker is gone"))?;
    match reply_rx.recv() {
        Ok(ShardReply::Ok(body)) => Ok(body),
        Ok(ShardReply::Err(e)) => Err(e),
        Ok(ShardReply::Stats(_)) => Err(ApiError::new(
            500,
            "internal",
            "unexpected stats reply to a request op",
        )),
        Err(_) => Err(ApiError::new(503, "shutting_down", "shard worker is gone")),
    }
}

/// Builds the `/metrics` body: server-side request accounting plus engine
/// totals gathered from every shard.
fn metrics_report(
    state: &ServerState,
    shard_senders: &[mpsc::Sender<ShardMsg>],
) -> Result<String, ApiError> {
    let mut engine = EngineTotals::default();
    for (shard, sender) in shard_senders.iter().enumerate() {
        let (reply_tx, reply_rx) = mpsc::channel();
        if sender
            .send(ShardMsg {
                op: ShardOp::Stats,
                reply: reply_tx,
            })
            .is_err()
        {
            continue; // shard already drained during shutdown
        }
        match reply_rx.recv() {
            Ok(ShardReply::Stats(totals)) => engine.merge(&totals),
            Ok(_) => {
                return Err(ApiError::new(
                    500,
                    "internal",
                    format!("shard {shard} answered stats with a request reply"),
                ))
            }
            Err(_) => continue,
        }
    }
    let report = MetricsReport {
        uptime_millis: state.started.elapsed().as_secs_f64() * 1e3,
        shards: state.shards as u64,
        requests_2xx: state.metrics.requests_2xx(),
        requests_4xx: state.metrics.requests_4xx(),
        requests_5xx: state.metrics.requests_5xx(),
        endpoints: state.metrics.endpoint_latencies(),
        engine,
    };
    serde_json::to_string(&report).map_err(|e| ApiError::new(500, "serialize", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_routes_parse() {
        assert_eq!(session_route("/sessions/a/open"), Some(("a", "open")));
        assert_eq!(
            session_route("/sessions/lg-0-1/event"),
            Some(("lg-0-1", "event"))
        );
        assert_eq!(session_route("/sessions//open"), None);
        assert_eq!(session_route("/sessions/a"), None);
        assert_eq!(session_route("/sessions/a/b/c"), None);
        assert_eq!(session_route("/solve"), None);
    }
}
