//! # ses-server — the sharded concurrent network front end
//!
//! Serves the [`ses_service`] wire vocabulary over HTTP/1.1 on plain
//! `std::net` (the offline dependency set has no async runtime and no HTTP
//! crate — and this workload does not need either):
//!
//! | Route | Body → Response |
//! |---|---|
//! | `POST /solve` | [`SolveRequest`] → [`SolveResponse`] |
//! | `POST /eval` | [`EvalRequest`] → [`EvalResponse`] |
//! | `POST /sessions/{name}/open` | [`SessionOpen`] → [`SolveResponse`] |
//! | `POST /sessions/{name}/event` | [`SessionEvent`] → [`EventReport`] |
//! | `POST /sessions/{name}/report` | — → [`SessionReport`] |
//! | `POST /sessions/{name}/close` | — → final [`SessionReport`] |
//! | `GET /healthz` | — → [`HealthReport`] (instance identity) |
//! | `GET /metrics` | — → [`MetricsReport`] (latency histograms + gauges + engine totals) |
//! | `GET /trace/{id}` | — → [`TraceReport`] (one request's span timeline) |
//! | `GET /instances` | — → [`InstancesReport`] (every registered instance) |
//! | `POST /admin/rebalance` | [`RebalanceRequest`] → [`RebalanceResponse`] (live session migration; requires `--wal-dir`) |
//!
//! `HEAD` mirrors any `GET` route headers-only, and `OPTIONS` answers with
//! the route's `Allow` list. Session names in paths are percent-decoded.
//!
//! The server is **multi-tenant**: an
//! [`InstanceRegistry`](ses_service::InstanceRegistry) maps names to
//! instances — the in-memory workload universe under `"default"`, plus any
//! packed files from [`ServerConfig::instances`], cold-opened lazily on
//! first use. `SolveRequest`/`EvalRequest`/`SessionOpen` carry an optional
//! `instance` field (absent = `"default"`, so legacy request JSON is
//! untouched); unknown names answer a structured 404
//! (`"unknown_instance"`) listing what is registered.
//!
//! ## Architecture
//!
//! * **Shard workers** — N threads, each owning a
//!   [`SchedulerService`](ses_service::SchedulerService). Sessions route by
//!   a stable FNV hash of their name, so one session's events arrive in
//!   order on one shard and `apply`'s `&mut self` never needs a global
//!   lock; stateless solves round-robin.
//! * **Connection handlers** — a fixed pool on a rendezvous channel, with
//!   tracked overflow threads when every pool worker is pinned by a
//!   keep-alive connection. Request bodies are size-capped (413) and parse
//!   errors answer as structured 400s, never dropped connections.
//! * **Observability** — every request gets a 64-bit trace id (a valid
//!   inbound `x-ses-trace-id` is honored, and the id is always echoed
//!   back); span timelines from socket to engine are recorded into
//!   per-thread lock-free rings (`ses-obs`) and served at
//!   `GET /trace/{id}`; `/metrics` carries per-endpoint latency
//!   histograms, status-class counters, per-shard queue-depth/occupancy
//!   gauges, span-stage p50/p95/p99 lines, and engine totals; requests
//!   slower than [`ServerConfig::slow_request_millis`] dump their span
//!   timeline to the structured log.
//! * **Shutdown** — cooperative, via [`ServerHandle::shutdown`] or the
//!   SIGTERM/SIGINT flag from [`install_signal_handlers`]; in-flight
//!   requests finish, then threads drain in dependency order.
//!
//! The crate also ships the client side: a keep-alive [`HttpClient`], the
//! closed-loop [load generator](loadgen) behind `ses loadgen`, and the
//! [replay determinism check](replay) proving a disruption stream replayed
//! over HTTP yields bit-for-bit the same trace digest as the in-process
//! `ses-sim` path.
//!
//! ## In-process quick start
//!
//! ```
//! use ses_server::{serve, HttpClient, ServerConfig};
//!
//! let handle = serve(&ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     shards: 2,
//!     users: 40,
//!     events: 12,
//!     intervals: 6,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let mut client = HttpClient::new(handle.addr().to_string());
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\""));
//!
//! let (status, body) = client
//!     .post("/solve", r#"{"spec":"Greedy","k":4,"threads":1}"#)
//!     .unwrap();
//! assert_eq!(status, 200, "{body}");
//! handle.shutdown();
//! ```
//!
//! [`SolveRequest`]: ses_service::SolveRequest
//! [`SolveResponse`]: ses_service::SolveResponse
//! [`EvalRequest`]: ses_service::EvalRequest
//! [`EvalResponse`]: ses_service::EvalResponse
//! [`SessionOpen`]: ses_service::SessionOpen
//! [`SessionEvent`]: ses_service::SessionEvent
//! [`EventReport`]: ses_service::EventReport
//! [`SessionReport`]: ses_service::SessionReport

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod replay;
mod server;
mod shard;

#[cfg(all(test, ses_shuttle))]
mod model_tests;

pub use client::HttpClient;
pub use loadgen::{
    DurabilityRow, InstanceLatency, LoadgenConfig, LoadgenSummary, ServerBenchReport, SlowRequest,
    StatusCount, WalDurability,
};
pub use metrics::{EndpointLatency, EngineTotals, MetricsReport, ShardStatus, WalReport};
pub use replay::{
    drive_range, finish_replay, open_server_session, prepare_replay, verify_replay, DigestCheck,
    ReplayConfig, ReplaySession, ServerArmState,
};
pub use server::{
    install_signal_handlers, serve, signal_shutdown_requested, HealthReport, InstancesReport,
    RebalanceRequest, RebalanceResponse, ServerConfig, ServerHandle, SpanView, TraceReport,
};
pub use shard::ErrorBody;

/// Re-exported so binaries configuring durability (the CLI's `--fsync`
/// flag, the bench sweep) need not depend on `ses-durable` directly.
pub use ses_durable::FsyncPolicy;
