//! The server-vs-simulator determinism check.
//!
//! `ses-sim` proves the *in-process* stack deterministic by running a
//! disruption stream twice and comparing trace digests. This module closes
//! the remaining gap — the network front end — by recording the exact
//! stream an in-process simulation applied, replaying it against a live
//! server session opened over the *same* workload instance, reconstructing
//! the trace from the wire-level [`EventReport`]s, and comparing digests
//! bit for bit. A matching digest certifies that HTTP framing, JSON
//! round-trips, shard routing and the service facade changed nothing about
//! the schedule's evolution.
//!
//! [`EventReport`]: ses_service::EventReport

use crate::client::HttpClient;
use crate::server::HealthReport;
use serde::{Deserialize, Serialize};
use ses_core::testkit::workload_instance;
use ses_core::SchedulerSpec;
use ses_service::{Availability, EventReport, SchedulerService, SessionEvent, SessionOpen};
use ses_sim::{scenario_by_name, Simulator, TimedDisruption, Trace, TraceRecord, SCENARIO_NAMES};

/// What stream to replay. The instance itself comes from the server's
/// `/healthz` (users/events/intervals/seed), so the two sides cannot
/// silently disagree about the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Scenario name (see [`ses_sim::SCENARIO_NAMES`]).
    pub scenario: String,
    /// Disruptions to record and replay.
    pub steps: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm for the initial schedule.
    pub spec: SchedulerSpec,
    /// Initial schedule size.
    pub k: usize,
    /// Scoring threads for the initial solve.
    pub threads: usize,
    /// Fraction of unscheduled candidates withheld as late arrivals.
    pub holdback: f64,
    /// Server-side session name used during the replay.
    pub session: String,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            scenario: "flash-crowd".to_owned(),
            steps: 200,
            seed: 0,
            spec: SchedulerSpec::Greedy,
            k: 20,
            threads: 1,
            holdback: 0.3,
            session: "replay-check".to_owned(),
        }
    }
}

/// The verdict: both digests, plus the bit-level final-utility comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestCheck {
    /// Disruptions replayed.
    pub steps: u64,
    /// Digest of the in-process simulator trace.
    pub sim_digest: u64,
    /// Digest of the trace reconstructed from server responses.
    pub server_digest: u64,
    /// Whether the digests match bit for bit.
    pub matches: bool,
    /// Whether the final utility Ω agrees to the last bit as well.
    pub utility_bits_match: bool,
}

/// Runs the full check against a live server. Fails with a description if
/// the server rejects any request or the universes do not line up; a clean
/// run returns the two digests (which the caller should still compare —
/// [`DigestCheck::matches`] — rather than assume).
pub fn verify_replay(client: &mut HttpClient, cfg: &ReplayConfig) -> Result<DigestCheck, String> {
    let Some(_) = scenario_by_name(&cfg.scenario, cfg.seed) else {
        return Err(format!(
            "unknown scenario '{}' (expected one of: {})",
            cfg.scenario,
            SCENARIO_NAMES.join(", ")
        ));
    };

    // The server's universe, from its own mouth.
    let (status, body) = client
        .get("/healthz")
        .map_err(|e| format!("GET /healthz failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /healthz answered {status}: {body}"));
    }
    let health: HealthReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /healthz body: {e}"))?;
    let inst = workload_instance(
        health.users as usize,
        health.events as usize,
        health.intervals as usize,
        health.seed,
    );

    // In-process arm: open a session through the service (the same call
    // the server's open endpoint makes), record the stream it applies.
    let k = cfg.k.min(health.events as usize);
    let open = SessionOpen {
        name: cfg.session.clone(),
        spec: cfg.spec,
        k,
        threads: cfg.threads,
        instance: Default::default(),
    };
    let mut service = SchedulerService::new();
    let initial = service
        .open_session(&inst, &open)
        .map_err(|e| format!("in-process open failed: {e}"))?;
    let scenario = scenario_by_name(&cfg.scenario, cfg.seed).expect("name checked above");
    let mut sim = Simulator::over_service(service, cfg.session.clone(), vec![scenario])
        .map_err(|e| e.to_string())?;
    let withheld = sim.withhold_fraction(cfg.holdback);
    sim.set_recording(true);
    let summary = sim.run(cfg.steps);
    let recorded = sim.take_recorded();

    // Server arm: same open, same withholding, same stream — over HTTP.
    let open_body = serde_json::to_string(&open).map_err(|e| e.to_string())?;
    let open_path = format!("/sessions/{}/open", cfg.session);
    let close_path = format!("/sessions/{}/close", cfg.session);
    let (mut status, mut body) = client
        .post(&open_path, &open_body)
        .map_err(|e| format!("open request failed: {e}"))?;
    if status == 409 {
        // A previous replay against this long-lived server failed midway
        // and left its session behind; clear it and retry once.
        let _ = client.post(&close_path, "");
        (status, body) = client
            .post(&open_path, &open_body)
            .map_err(|e| format!("open retry failed: {e}"))?;
    }
    if status != 200 {
        return Err(format!("server open answered {status}: {body}"));
    }
    // From here the server session exists: close it on every exit, or a
    // transient failure would wedge all later replays with 409s.
    let result = drive_server_arm(
        client,
        cfg,
        &body,
        initial.total_utility,
        &withheld,
        &recorded,
    );
    match result {
        Ok((trace, final_utility)) => {
            let _ = client.post(&close_path, "");
            Ok(DigestCheck {
                steps: recorded.len() as u64,
                sim_digest: summary.digest,
                server_digest: trace.digest(),
                matches: summary.digest == trace.digest(),
                utility_bits_match: final_utility.to_bits() == summary.final_utility.to_bits(),
            })
        }
        Err(e) => {
            let _ = client.post(&close_path, "");
            Err(e)
        }
    }
}

/// The server side of the check, between open and close: withholding, the
/// recorded stream, and the trace reconstruction. Returns the rebuilt
/// trace plus the session's final utility.
fn drive_server_arm(
    client: &mut HttpClient,
    cfg: &ReplayConfig,
    open_response: &str,
    initial_utility: f64,
    withheld: &[ses_core::EventId],
    recorded: &[TimedDisruption],
) -> Result<(Trace, f64), String> {
    let server_initial: ses_service::SolveResponse =
        serde_json::from_str(open_response).map_err(|e| format!("bad open response: {e}"))?;
    if server_initial.total_utility.to_bits() != initial_utility.to_bits() {
        return Err(format!(
            "initial schedules differ before any disruption (server Ω {} vs local Ω {}) — \
             instance or solver mismatch",
            server_initial.total_utility, initial_utility
        ));
    }

    for &event in withheld {
        let ev = SessionEvent::SetAvailable(Availability {
            event,
            available: false,
        });
        let body = serde_json::to_string(&ev).map_err(|e| e.to_string())?;
        let (status, resp) = client
            .post(&format!("/sessions/{}/event", cfg.session), &body)
            .map_err(|e| format!("withhold request failed: {e}"))?;
        if status != 200 {
            return Err(format!("server withhold answered {status}: {resp}"));
        }
    }

    // Inert steps record the session's *own* running utility (which can
    // differ from the solver-reported Ω in the last bits — the session's
    // engine re-derives it), so seed the running value from the live
    // session, not from the solve response.
    let (status, resp) = client
        .post(&format!("/sessions/{}/report", cfg.session), "")
        .map_err(|e| format!("report request failed: {e}"))?;
    if status != 200 {
        return Err(format!("server report answered {status}: {resp}"));
    }
    let baseline: ses_service::SessionReport =
        serde_json::from_str(&resp).map_err(|e| format!("bad report response: {e}"))?;

    let mut trace = Trace::new();
    let mut last_utility = baseline.utility;
    for (step, timed) in recorded.iter().enumerate() {
        let event = timed.disruption.to_session_event();
        let body = serde_json::to_string(&event).map_err(|e| e.to_string())?;
        let (status, resp) = client
            .post(&format!("/sessions/{}/event", cfg.session), &body)
            .map_err(|e| format!("event request failed at step {step}: {e}"))?;
        if status != 200 {
            return Err(format!(
                "server event at step {step} answered {status}: {resp}"
            ));
        }
        let report: EventReport =
            serde_json::from_str(&resp).map_err(|e| format!("bad event response: {e}"))?;
        // The simulator records a step as applied only when a repair ran
        // (see `Simulator::apply`); mirror that here exactly.
        let record = match &report.report {
            Some(r) => TraceRecord {
                step: step as u64,
                tick: timed.at,
                kind: timed.disruption.kind(),
                applied: true,
                utility_before: r.utility_before,
                utility_disrupted: r.utility_disrupted,
                utility_after: r.utility_after,
                moves: r.moves.len() as u32,
            },
            None => TraceRecord {
                step: step as u64,
                tick: timed.at,
                kind: timed.disruption.kind(),
                applied: false,
                utility_before: last_utility,
                utility_disrupted: last_utility,
                utility_after: last_utility,
                moves: 0,
            },
        };
        trace.push(record);
        last_utility = report.utility;
    }

    // The final utility comes from a report (not the close itself) so the
    // caller can own closing on success and failure paths alike.
    let (status, resp) = client
        .post(&format!("/sessions/{}/report", cfg.session), "")
        .map_err(|e| format!("final report request failed: {e}"))?;
    if status != 200 {
        return Err(format!("server final report answered {status}: {resp}"));
    }
    let final_report: ses_service::SessionReport =
        serde_json::from_str(&resp).map_err(|e| format!("bad final report response: {e}"))?;

    Ok((trace, final_report.utility))
}
