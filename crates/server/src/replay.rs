//! The server-vs-simulator determinism check.
//!
//! `ses-sim` proves the *in-process* stack deterministic by running a
//! disruption stream twice and comparing trace digests. This module closes
//! the remaining gap — the network front end — by recording the exact
//! stream an in-process simulation applied, replaying it against a live
//! server session opened over the *same* workload instance, reconstructing
//! the trace from the wire-level [`EventReport`]s, and comparing digests
//! bit for bit. A matching digest certifies that HTTP framing, JSON
//! round-trips, shard routing and the service facade changed nothing about
//! the schedule's evolution.
//!
//! The check is built from resumable pieces — [`prepare_replay`] (the
//! reference simulation), [`open_server_session`], [`drive_range`], and
//! [`finish_replay`] — so the crash-recovery test can drive part of the
//! stream, `kill -9` the server, restart it on the same `--wal-dir`, and
//! *resume* driving where it stopped: if recovery truly equals replay, the
//! final digest still matches the uninterrupted simulation bit for bit.
//! [`verify_replay`] runs the whole sequence in one call.
//!
//! [`EventReport`]: ses_service::EventReport

use crate::client::HttpClient;
use crate::server::HealthReport;
use serde::{Deserialize, Serialize};
use ses_core::testkit::workload_instance;
use ses_core::SchedulerSpec;
use ses_service::{Availability, EventReport, SchedulerService, SessionEvent, SessionOpen};
use ses_sim::{scenario_by_name, Simulator, TimedDisruption, Trace, TraceRecord, SCENARIO_NAMES};

/// What stream to replay. The instance itself comes from the server's
/// `/healthz` (users/events/intervals/seed), so the two sides cannot
/// silently disagree about the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Scenario name (see [`ses_sim::SCENARIO_NAMES`]).
    pub scenario: String,
    /// Disruptions to record and replay.
    pub steps: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm for the initial schedule.
    pub spec: SchedulerSpec,
    /// Initial schedule size.
    pub k: usize,
    /// Scoring threads for the initial solve.
    pub threads: usize,
    /// Fraction of unscheduled candidates withheld as late arrivals.
    pub holdback: f64,
    /// Server-side session name used during the replay.
    pub session: String,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            scenario: "flash-crowd".to_owned(),
            steps: 200,
            seed: 0,
            spec: SchedulerSpec::Greedy,
            k: 20,
            threads: 1,
            holdback: 0.3,
            session: "replay-check".to_owned(),
        }
    }
}

/// The verdict: both digests, plus the bit-level final-utility comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestCheck {
    /// Disruptions replayed.
    pub steps: u64,
    /// Digest of the in-process simulator trace.
    pub sim_digest: u64,
    /// Digest of the trace reconstructed from server responses.
    pub server_digest: u64,
    /// Whether the digests match bit for bit.
    pub matches: bool,
    /// Whether the final utility Ω agrees to the last bit as well.
    pub utility_bits_match: bool,
}

/// The reference arm of the check, fully materialized: the open request
/// both arms issue, the recorded disruption stream, and the in-process
/// simulation's trace. Everything here is computed once, *before* any
/// server-side driving — which is what lets the crash test compare
/// against it across a server restart.
#[derive(Debug, Clone)]
pub struct ReplaySession {
    /// The open request (identical on both arms).
    pub open: SessionOpen,
    /// Solver-reported Ω of the initial schedule.
    pub initial_utility: f64,
    /// Candidates withheld as late arrivals (replayed before step 0).
    pub withheld: Vec<ses_core::EventId>,
    /// The recorded disruption stream, in step order.
    pub recorded: Vec<TimedDisruption>,
    /// The reference simulation's full trace.
    pub sim_trace: Trace,
    /// The reference simulation's final utility Ω.
    pub sim_final_utility: f64,
}

impl ReplaySession {
    /// Digest of the full reference trace.
    pub fn sim_digest(&self) -> u64 {
        self.sim_trace.digest()
    }
}

/// The server arm's progress: the trace reconstructed so far and the
/// running utility inert steps record. Survives a server restart — only
/// the HTTP client is tied to one server process.
#[derive(Debug, Clone)]
pub struct ServerArmState {
    /// Trace rebuilt from the server's [`EventReport`]s so far.
    pub trace: Trace,
    /// The session's running utility after the last driven step.
    pub last_utility: f64,
}

/// Builds the reference arm: reads the server's universe from `/healthz`,
/// rebuilds the instance, opens an in-process session, and records the
/// scenario's disruption stream through the simulator.
pub fn prepare_replay(
    client: &mut HttpClient,
    cfg: &ReplayConfig,
) -> Result<ReplaySession, String> {
    let Some(_) = scenario_by_name(&cfg.scenario, cfg.seed) else {
        return Err(format!(
            "unknown scenario '{}' (expected one of: {})",
            cfg.scenario,
            SCENARIO_NAMES.join(", ")
        ));
    };

    // The server's universe, from its own mouth.
    let (status, body) = client
        .get("/healthz")
        .map_err(|e| format!("GET /healthz failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /healthz answered {status}: {body}"));
    }
    let health: HealthReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /healthz body: {e}"))?;
    let inst = workload_instance(
        health.users as usize,
        health.events as usize,
        health.intervals as usize,
        health.seed,
    );

    // In-process arm: open a session through the service (the same call
    // the server's open endpoint makes), record the stream it applies.
    let k = cfg.k.min(health.events as usize);
    let open = SessionOpen {
        name: cfg.session.clone(),
        spec: cfg.spec,
        k,
        threads: cfg.threads,
        instance: Default::default(),
    };
    let mut service = SchedulerService::new();
    let initial = service
        .open_session(&inst, &open)
        .map_err(|e| format!("in-process open failed: {e}"))?;
    let scenario = scenario_by_name(&cfg.scenario, cfg.seed)
        .ok_or_else(|| format!("scenario '{}' vanished between checks", cfg.scenario))?;
    let mut sim = Simulator::over_service(service, cfg.session.clone(), vec![scenario])
        .map_err(|e| e.to_string())?;
    let withheld = sim.withhold_fraction(cfg.holdback);
    sim.set_recording(true);
    let summary = sim.run(cfg.steps);
    let recorded = sim.take_recorded();
    Ok(ReplaySession {
        open,
        initial_utility: initial.total_utility,
        withheld,
        recorded,
        sim_trace: sim.trace().clone(),
        sim_final_utility: summary.final_utility,
    })
}

/// Opens the server-side session and brings it to step 0: posts the open
/// (self-healing a 409 left by an earlier failed replay), checks the
/// initial Ω bit-for-bit, posts the withheld-candidate events, and seeds
/// the running utility from a live report.
pub fn open_server_session(
    client: &mut HttpClient,
    cfg: &ReplayConfig,
    session: &ReplaySession,
) -> Result<ServerArmState, String> {
    let open_body = serde_json::to_string(&session.open).map_err(|e| e.to_string())?;
    let open_path = format!("/sessions/{}/open", cfg.session);
    let close_path = format!("/sessions/{}/close", cfg.session);
    let (mut status, mut body) = client
        .post(&open_path, &open_body)
        .map_err(|e| format!("open request failed: {e}"))?;
    if status == 409 {
        // A previous replay against this long-lived server failed midway
        // and left its session behind; clear it and retry once.
        let _ = client.post(&close_path, "");
        (status, body) = client
            .post(&open_path, &open_body)
            .map_err(|e| format!("open retry failed: {e}"))?;
    }
    if status != 200 {
        return Err(format!("server open answered {status}: {body}"));
    }
    let server_initial: ses_service::SolveResponse =
        serde_json::from_str(&body).map_err(|e| format!("bad open response: {e}"))?;
    if server_initial.total_utility.to_bits() != session.initial_utility.to_bits() {
        return Err(format!(
            "initial schedules differ before any disruption (server Ω {} vs local Ω {}) — \
             instance or solver mismatch",
            server_initial.total_utility, session.initial_utility
        ));
    }

    for &event in &session.withheld {
        let ev = SessionEvent::SetAvailable(Availability {
            event,
            available: false,
        });
        let body = serde_json::to_string(&ev).map_err(|e| e.to_string())?;
        let (status, resp) = client
            .post(&format!("/sessions/{}/event", cfg.session), &body)
            .map_err(|e| format!("withhold request failed: {e}"))?;
        if status != 200 {
            return Err(format!("server withhold answered {status}: {resp}"));
        }
    }

    // Inert steps record the session's *own* running utility (which can
    // differ from the solver-reported Ω in the last bits — the session's
    // engine re-derives it), so seed the running value from the live
    // session, not from the solve response.
    let (status, resp) = client
        .post(&format!("/sessions/{}/report", cfg.session), "")
        .map_err(|e| format!("report request failed: {e}"))?;
    if status != 200 {
        return Err(format!("server report answered {status}: {resp}"));
    }
    let baseline: ses_service::SessionReport =
        serde_json::from_str(&resp).map_err(|e| format!("bad report response: {e}"))?;
    Ok(ServerArmState {
        trace: Trace::new(),
        last_utility: baseline.utility,
    })
}

/// Drives recorded steps `[from, to)` against the live server, extending
/// `state.trace` with the records reconstructed from the wire replies.
/// Resumable: after a crash and recovery, call again with `from` equal to
/// the number of steps already driven.
pub fn drive_range(
    client: &mut HttpClient,
    cfg: &ReplayConfig,
    session: &ReplaySession,
    state: &mut ServerArmState,
    from: usize,
    to: usize,
) -> Result<(), String> {
    let to = to.min(session.recorded.len());
    for (step, timed) in session.recorded[from..to].iter().enumerate() {
        let step = from + step;
        let event = timed.disruption.to_session_event();
        let body = serde_json::to_string(&event).map_err(|e| e.to_string())?;
        let (status, resp) = client
            .post(&format!("/sessions/{}/event", cfg.session), &body)
            .map_err(|e| format!("event request failed at step {step}: {e}"))?;
        if status != 200 {
            return Err(format!(
                "server event at step {step} answered {status}: {resp}"
            ));
        }
        let report: EventReport =
            serde_json::from_str(&resp).map_err(|e| format!("bad event response: {e}"))?;
        // The simulator records a step as applied only when a repair ran
        // (see `Simulator::apply`); mirror that here exactly.
        let record = match &report.report {
            Some(r) => TraceRecord {
                step: step as u64,
                tick: timed.at,
                kind: timed.disruption.kind(),
                applied: true,
                utility_before: r.utility_before,
                utility_disrupted: r.utility_disrupted,
                utility_after: r.utility_after,
                moves: r.moves.len() as u32,
            },
            None => TraceRecord {
                step: step as u64,
                tick: timed.at,
                kind: timed.disruption.kind(),
                applied: false,
                utility_before: state.last_utility,
                utility_disrupted: state.last_utility,
                utility_after: state.last_utility,
                moves: 0,
            },
        };
        state.trace.push(record);
        state.last_utility = report.utility;
    }
    Ok(())
}

/// Finishes the server arm: reads the session's final utility, closes the
/// session, and compares both traces. The comparison is the caller's
/// verdict — [`DigestCheck::matches`] — not an assumption.
pub fn finish_replay(
    client: &mut HttpClient,
    cfg: &ReplayConfig,
    session: &ReplaySession,
    state: &ServerArmState,
) -> Result<DigestCheck, String> {
    let (status, resp) = client
        .post(&format!("/sessions/{}/report", cfg.session), "")
        .map_err(|e| format!("final report request failed: {e}"))?;
    if status != 200 {
        return Err(format!("server final report answered {status}: {resp}"));
    }
    let final_report: ses_service::SessionReport =
        serde_json::from_str(&resp).map_err(|e| format!("bad final report response: {e}"))?;
    let _ = client.post(&format!("/sessions/{}/close", cfg.session), "");
    let sim_digest = session.sim_digest();
    let server_digest = state.trace.digest();
    Ok(DigestCheck {
        steps: session.recorded.len() as u64,
        sim_digest,
        server_digest,
        matches: sim_digest == server_digest,
        utility_bits_match: final_report.utility.to_bits() == session.sim_final_utility.to_bits(),
    })
}

/// Runs the full check against a live server. Fails with a description if
/// the server rejects any request or the universes do not line up; a clean
/// run returns the two digests (which the caller should still compare —
/// [`DigestCheck::matches`] — rather than assume).
pub fn verify_replay(client: &mut HttpClient, cfg: &ReplayConfig) -> Result<DigestCheck, String> {
    let session = prepare_replay(client, cfg)?;
    let mut state = open_server_session(client, cfg, &session)?;
    // From here the server session exists: close it on every exit, or a
    // transient failure would wedge all later replays with 409s.
    let driven = drive_range(client, cfg, &session, &mut state, 0, session.recorded.len())
        .and_then(|()| finish_replay(client, cfg, &session, &state));
    match driven {
        Ok(check) => Ok(check),
        Err(e) => {
            let _ = client.post(&format!("/sessions/{}/close", cfg.session), "");
            Err(e)
        }
    }
}
