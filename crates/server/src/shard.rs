//! Shard workers: each owns a [`SchedulerService`] and serves requests off
//! an mpsc channel, so `apply`'s `&mut self` never meets a lock.
//!
//! Sessions are routed by a stable hash of their name, so every event for
//! one session lands on the same shard in arrival order; stateless
//! `solve`/`eval` requests round-robin across shards. The only shared
//! state between shards is the [`InstanceRegistry`] of immutable
//! `Arc<SesInstance>` handles — each request names its instance (default
//! `"default"`) and the shard resolves it per operation, so two tenants
//! never contend on anything but the registry's short lookup lock.
//!
//! Every message carries its request's trace id and enqueue timestamp: the
//! worker records a `queue` span for the time the message waited and runs
//! the operation inside that trace's scope, so engine-internal spans
//! (solve, select, apply, repair, …) recorded on the shard thread attach to
//! the originating HTTP request.

use crate::metrics::{EngineTotals, ShardGauge};
use serde::{Deserialize, Serialize};
use ses_durable::{recover_sessions, RecoveredLog, SessionJournal, ShardWal};
use ses_service::{
    EvalRequest, InstanceRegistry, SchedulerService, ServiceError, SessionEvent, SessionOpen,
    SolveRequest,
};
use std::sync::mpsc;
use std::sync::Arc;

/// One request, as the shard sees it.
pub(crate) enum ShardOp {
    Solve(SolveRequest),
    Eval(EvalRequest),
    Open(SessionOpen),
    Event {
        name: String,
        event: SessionEvent,
    },
    Report {
        name: String,
    },
    Close {
        name: String,
    },
    /// Migration: drain and remove a session, returning its journal
    /// (serialized [`SessionJournal`]) to the rebalance handler.
    Extract {
        name: String,
    },
    /// Migration: re-log and replay a journal shipped from another shard.
    Install {
        journal: Box<SessionJournal>,
    },
    /// Aggregate session accounting for `/metrics`.
    Stats,
}

/// A typed error on its way to becoming an HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error kind.
    pub kind: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl ApiError {
    /// A new error.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            kind,
            message: message.into(),
        }
    }

    /// The structured JSON body every error response carries.
    pub fn body(&self) -> String {
        // Two strings cannot fail to serialize today, but this runs on the
        // request path (every error response), so degrade to a static body
        // rather than panicking the connection handler if the shim changes.
        serde_json::to_string(&ErrorBody {
            error: self.message.clone(),
            kind: self.kind.to_owned(),
        })
        .unwrap_or_else(|_| {
            r#"{"error":"error body serialization failed","kind":"internal"}"#.to_owned()
        })
    }
}

/// The JSON shape of every error response: `{"error": …, "kind": …}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable message.
    pub error: String,
    /// Stable machine-readable kind (`unknown_session`, `parse`, …).
    pub kind: String,
}

/// Answer to [`ShardOp::Stats`]: engine totals plus the shard's WAL
/// accounting when it runs durable.
pub(crate) struct ShardStats {
    pub engine: EngineTotals,
    pub wal: Option<ses_durable::WalStats>,
    /// WAL append latency distribution (µs).
    pub append: Option<ses_obs::HistogramSnapshot>,
    /// WAL fsync latency distribution (µs).
    pub fsync: Option<ses_obs::HistogramSnapshot>,
}

/// What a shard sends back.
pub(crate) enum ShardReply {
    /// Success: the serialized JSON response body.
    Ok(String),
    /// Failure: status + structured body.
    Err(ApiError),
    /// Answer to [`ShardOp::Stats`].
    Stats(Box<ShardStats>),
}

/// One queued request plus its reply channel and trace context.
pub(crate) struct ShardMsg {
    pub op: ShardOp,
    pub reply: mpsc::Sender<ShardReply>,
    /// Raw trace id of the originating request (`0` = untraced internal
    /// work, e.g. the metrics gatherer's `Stats` probes).
    pub trace: u64,
    /// [`ses_obs::now_ns`] at enqueue — the shard derives the queue-wait
    /// span from it.
    pub enqueued_ns: u64,
    /// Queue depth observed at enqueue (including this message).
    pub depth: u64,
}

/// Maps service-level failures to HTTP statuses: unknown names — sessions
/// and instances alike — are 404, name collisions 409, a failed packed-file
/// open is a 500 (the server's disk, not the client's request), and
/// everything a client sent wrong — malformed values, out-of-universe
/// references, infeasible or unsolvable requests — is a 400 with the typed
/// core error's message.
pub(crate) fn api_error(e: &ServiceError) -> ApiError {
    match e {
        ServiceError::UnknownSession(_) => ApiError::new(404, "unknown_session", e.to_string()),
        ServiceError::SessionExists(_) => ApiError::new(409, "session_exists", e.to_string()),
        ServiceError::InvalidRequest(_) => ApiError::new(400, "invalid_request", e.to_string()),
        ServiceError::Core(ses_core::Error::UnknownInstance { .. }) => {
            ApiError::new(404, "unknown_instance", e.to_string())
        }
        ServiceError::Core(ses_core::Error::Store(_)) => ApiError::new(500, "store", e.to_string()),
        ServiceError::Core(_) => ApiError::new(400, "core", e.to_string()),
        // `ServiceError` is non_exhaustive; future variants are server bugs
        // until they get a mapping.
        _ => ApiError::new(500, "internal", e.to_string()),
    }
}

/// Resolves a request's instance name through the registry, folding core
/// errors (unknown name, failed cold-open) into the service error space so
/// [`api_error`] can map them to structured 404/500 responses.
fn resolve(
    registry: &InstanceRegistry,
    name: &str,
) -> Result<Arc<ses_core::SesInstance>, ServiceError> {
    registry.get(name).map_err(ServiceError::Core)
}

fn json_reply<T: serde::Serialize>(result: Result<T, ServiceError>) -> ShardReply {
    match result {
        Ok(value) => match serde_json::to_string(&value) {
            Ok(body) => ShardReply::Ok(body),
            Err(e) => ShardReply::Err(ApiError::new(500, "serialize", e.to_string())),
        },
        Err(e) => ShardReply::Err(api_error(&e)),
    }
}

fn stats_of(service: &SchedulerService) -> EngineTotals {
    let mut totals = EngineTotals::default();
    for name in service.session_names() {
        // The name list and the lookup are a single-threaded sequence on
        // this worker, so a miss is unreachable today — but `Stats` runs
        // per `/metrics` request, so skip rather than panic the shard.
        let Ok(report) = service.report(name) else {
            continue;
        };
        totals.merge(&EngineTotals {
            sessions: 1,
            events_applied: report.events_applied,
            clock: report.clock,
            counters: report.counters,
            column_slots: report.memory.column_slots,
            resident_bytes: report.memory.total_resident_bytes(),
        });
    }
    totals
}

/// Maps a WAL failure to the HTTP response the client sees: the append
/// did not reach disk, so the operation is rejected *before* the service
/// state changes (write-ahead ordering cuts both ways).
fn wal_api_error(e: &ses_durable::WalError) -> ApiError {
    ApiError::new(500, "wal", e.to_string())
}

/// Session open, write-ahead: the record is on disk (per the fsync
/// policy) before the service sees the request.
fn handle_open(
    registry: &InstanceRegistry,
    service: &mut SchedulerService,
    wal: Option<&mut ShardWal>,
    open: &SessionOpen,
) -> ShardReply {
    if let Some(w) = wal {
        if let Err(e) = w.append_open(open) {
            return ShardReply::Err(wal_api_error(&e));
        }
    }
    json_reply(
        resolve(registry, open.instance.as_str())
            .and_then(|inst| service.open_session(&inst, open)),
    )
}

/// Session event, write-ahead: append (stamping the LSN into the report
/// the client gets back), apply, then maybe snapshot the session.
fn handle_event(
    service: &mut SchedulerService,
    wal: Option<&mut ShardWal>,
    name: &str,
    event: &SessionEvent,
) -> ShardReply {
    let Some(w) = wal else {
        return json_reply(service.apply(name, event));
    };
    let lsn = match w.append_event(name, event) {
        Ok(lsn) => lsn,
        Err(e) => return ShardReply::Err(wal_api_error(&e)),
    };
    match service.apply(name, event) {
        Ok(mut report) => {
            report.lsn = lsn;
            if let Err(e) = w.maybe_snapshot(name, report.scheduled, report.utility) {
                // A failed snapshot costs compaction, not correctness —
                // the WAL tail still covers the session.
                ses_obs::log(
                    ses_obs::Level::Warn,
                    "shard",
                    "session snapshot failed",
                    &[("session", name.into()), ("error", e.to_string().into())],
                );
            }
            json_reply(Ok::<_, ServiceError>(report))
        }
        Err(e) => ShardReply::Err(api_error(&e)),
    }
}

/// Session close, write-ahead. A close for an unknown session still leaves
/// a record; recovery skips it exactly like the service rejects it here.
fn handle_close(
    service: &mut SchedulerService,
    wal: Option<&mut ShardWal>,
    name: &str,
) -> ShardReply {
    if let Some(w) = wal {
        if let Err(e) = w.append_close(name) {
            return ShardReply::Err(wal_api_error(&e));
        }
    }
    json_reply(service.close_session(name))
}

/// Migration source: drop the live session and return its journal. The
/// close record `extract` writes means a crash after this point never
/// resurrects the session here — it now lives only in the reply (and,
/// once installed, on the target shard).
fn handle_extract(
    service: &mut SchedulerService,
    wal: Option<&mut ShardWal>,
    name: &str,
) -> ShardReply {
    let Some(w) = wal else {
        return ShardReply::Err(ApiError::new(
            400,
            "not_durable",
            "session migration requires the server to run with --wal-dir",
        ));
    };
    if service.session(name).is_none() {
        return ShardReply::Err(api_error(&ServiceError::UnknownSession(name.to_owned())));
    }
    let journal = match w.extract(name) {
        Ok(Some(journal)) => journal,
        Ok(None) => {
            return ShardReply::Err(api_error(&ServiceError::UnknownSession(name.to_owned())))
        }
        Err(e) => return ShardReply::Err(wal_api_error(&e)),
    };
    drop(service.take_session(name));
    match serde_json::to_string(&journal) {
        Ok(body) => ShardReply::Ok(body),
        Err(e) => ShardReply::Err(ApiError::new(500, "serialize", e.to_string())),
    }
}

/// Migration target: re-log the journal with fresh LSNs, then rebuild the
/// session by replaying it through the service — the same recovery-equals-
/// replay path a crash would take.
fn handle_install(
    registry: &InstanceRegistry,
    service: &mut SchedulerService,
    wal: Option<&mut ShardWal>,
    journal: &SessionJournal,
) -> ShardReply {
    if let Some(w) = wal {
        if let Err(e) = w.install(journal) {
            return ShardReply::Err(wal_api_error(&e));
        }
    }
    let inst = match resolve(registry, journal.open.instance.as_str()) {
        Ok(inst) => inst,
        Err(e) => return ShardReply::Err(api_error(&e)),
    };
    if let Err(e) = service.open_session(&inst, &journal.open) {
        return ShardReply::Err(api_error(&e));
    }
    for event in &journal.events {
        // Events the source's service rejected replay as rejections here
        // too (deterministically); they are not errors of the migration.
        let _ = service.apply(&journal.name, event);
    }
    json_reply(service.report(&journal.name))
}

/// The shard worker loop: owns its service (and, when the server runs
/// with `--wal-dir`, its WAL), drains its queue, exits when every sender
/// (acceptor + connection handlers) is gone. Instance-bearing ops resolve
/// their named instance through the shared registry first, so an unknown
/// name (or a broken packed file) is rejected before any session state is
/// touched. A WAL-backed shard replays its recovered log through the
/// service before taking its first request, and writes `recovery.json`
/// into its WAL directory.
pub(crate) fn run_shard(
    registry: Arc<InstanceRegistry>,
    rx: mpsc::Receiver<ShardMsg>,
    shard: usize,
    gauge: Arc<ShardGauge>,
    wal: Option<(ShardWal, RecoveredLog)>,
) {
    let mut service = SchedulerService::new();
    let mut wal = wal.map(|(wal, log)| {
        let report = recover_sessions(&mut service, &registry, &log);
        if let Err(e) = report.write_json(wal.dir()) {
            ses_obs::log(
                ses_obs::Level::Warn,
                "shard",
                "could not write recovery.json",
                &[("shard", shard.into()), ("error", e.into())],
            );
        }
        service.set_durable(true);
        ses_obs::log(
            ses_obs::Level::Info,
            "shard",
            "durability recovery complete",
            &[
                ("shard", shard.into()),
                ("sessions", report.sessions_recovered.into()),
                ("failed", report.sessions_failed.into()),
                ("events_replayed", report.events_replayed.into()),
                ("torn_tail", report.torn_tail.is_some().into()),
                ("errors", report.errors.len().into()),
            ],
        );
        wal
    });
    while let Ok(msg) = rx.recv() {
        // Attribute everything below — including engine-internal spans on
        // this thread — to the originating request's trace.
        let _scope = ses_obs::TraceId::from_raw(msg.trace).map(ses_obs::trace_scope);
        let picked_ns = ses_obs::now_ns();
        ses_obs::record_span(
            ses_obs::Stage::Queue,
            msg.enqueued_ns,
            picked_ns.saturating_sub(msg.enqueued_ns),
            ses_obs::OpsDelta::default(),
            [msg.depth, shard as u64],
        );
        let mut service_span = ses_obs::span(ses_obs::Stage::Service);
        service_span.set_aux(shard as u64, msg.depth);
        let reply = match msg.op {
            ShardOp::Solve(req) => json_reply(
                resolve(&registry, req.instance.as_str())
                    .and_then(|inst| service.solve(&inst, &req)),
            ),
            ShardOp::Eval(req) => json_reply(
                resolve(&registry, req.instance.as_str())
                    .and_then(|inst| service.evaluate(&inst, &req)),
            ),
            ShardOp::Open(open) => handle_open(&registry, &mut service, wal.as_mut(), &open),
            ShardOp::Event { name, event } => {
                handle_event(&mut service, wal.as_mut(), &name, &event)
            }
            ShardOp::Report { name } => json_reply(service.report(&name)),
            ShardOp::Close { name } => handle_close(&mut service, wal.as_mut(), &name),
            ShardOp::Extract { name } => handle_extract(&mut service, wal.as_mut(), &name),
            ShardOp::Install { journal } => {
                handle_install(&registry, &mut service, wal.as_mut(), &journal)
            }
            ShardOp::Stats => ShardReply::Stats(Box::new(ShardStats {
                engine: stats_of(&service),
                wal: wal.as_ref().map(|w| w.stats()),
                append: wal.as_ref().map(|w| w.append_latencies()),
                fsync: wal.as_ref().map(|w| w.fsync_latencies()),
            })),
        };
        drop(service_span);
        gauge.served(ses_obs::now_ns().saturating_sub(picked_ns));
        // A dropped reply receiver means the connection died mid-request;
        // the shard's state change (if any) stands, like any completed
        // request whose response was lost on the wire.
        let _ = msg.reply.send(reply);
    }
    // Graceful drain: make the tail durable before the thread exits.
    if let Some(w) = wal.as_mut() {
        if let Err(e) = w.flush() {
            ses_obs::log(
                ses_obs::Level::Warn,
                "shard",
                "final WAL flush failed",
                &[("shard", shard.into()), ("error", e.to_string().into())],
            );
        }
    }
}

/// FNV-1a over the session name — the shard routing hash. Stable across
/// runs (no `RandomState`), so a session always lands on the same shard.
pub(crate) fn shard_of(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in 1..8 {
            for name in ["a", "main", "lg-0-1", "Ω-session", ""] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "routing must be stable");
            }
        }
        // Names spread across shards (not all on one).
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("s{i}"), 4)).collect();
        assert!(hits.len() > 1);
    }

    #[test]
    fn error_bodies_are_structured() {
        let e = api_error(&ServiceError::UnknownSession("x".into()));
        assert_eq!(e.status, 404);
        let body: ErrorBody = serde_json::from_str(&e.body()).unwrap();
        assert_eq!(body.kind, "unknown_session");
        assert!(body.error.contains('x'));
    }

    #[test]
    fn instance_errors_map_to_structured_statuses() {
        let e = api_error(&ServiceError::Core(ses_core::Error::UnknownInstance {
            name: "ghost".into(),
            known: vec!["default".into(), "tenant-a".into()],
        }));
        assert_eq!(e.status, 404);
        assert_eq!(e.kind, "unknown_instance");
        let body: ErrorBody = serde_json::from_str(&e.body()).unwrap();
        assert!(body.error.contains("ghost") && body.error.contains("tenant-a"));

        let e = api_error(&ServiceError::Core(ses_core::Error::Store(
            ses_core::StoreError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
        )));
        assert_eq!(e.status, 500);
        assert_eq!(e.kind, "store");
    }
}
