//! In-process loopback integration tests: a real server (listener, shard
//! workers, connection pool) and real TCP clients in one test process.

use ses_server::{
    serve, verify_replay, ErrorBody, HealthReport, HttpClient, InstancesReport, LoadgenConfig,
    MetricsReport, ReplayConfig, ServerConfig,
};
use ses_service::SessionReport;

/// A small server for fast tests; ephemeral port, tiny instance.
fn test_server(shards: usize) -> ses_server::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn client_of(handle: &ses_server::ServerHandle) -> HttpClient {
    HttpClient::new(handle.addr().to_string())
}

fn open_body(name: &str, k: usize) -> String {
    format!(r#"{{"name":"{name}","spec":"Greedy","k":{k},"threads":1}}"#)
}

#[test]
fn healthz_reports_the_instance_identity() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health: HealthReport = serde_json::from_str(&body).unwrap();
    assert_eq!(health.status, "ok");
    assert_eq!(
        (health.users, health.events, health.intervals, health.seed),
        (60, 16, 8, 7)
    );
    assert_eq!(health.shards, 2);
    handle.shutdown();
}

#[test]
fn solve_and_eval_round_trip_over_the_wire() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, body) = client
        .post("/solve", r#"{"spec":"Greedy","k":5,"threads":1}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let solved: ses_service::SolveResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(solved.scheduled(), 5);
    assert!(solved.total_utility > 0.0);

    // Feed the produced schedule back through /eval.
    let eval_req = serde_json::to_string(&ses_service::EvalRequest {
        assignments: solved.assignments.clone(),
        instance: Default::default(),
    })
    .unwrap();
    let (status, body) = client.post("/eval", &eval_req).unwrap();
    assert_eq!(status, 200, "{body}");
    let eval: ses_service::EvalResponse = serde_json::from_str(&body).unwrap();
    assert!((eval.total_utility - solved.total_utility).abs() < 1e-7);
    handle.shutdown();
}

#[test]
fn session_lifecycle_open_event_report_close() {
    let handle = test_server(3);
    let mut client = client_of(&handle);
    let (status, body) = client
        .post("/sessions/main/open", &open_body("main", 4))
        .unwrap();
    assert_eq!(status, 200, "{body}");

    // An in-universe announcement hits the schedule.
    let (status, body) = client
        .post(
            "/sessions/main/event",
            r#"{"Announce":{"interval":0,"postings":[[0,0.9],[1,0.8]]}}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let report: ses_service::EventReport = serde_json::from_str(&body).unwrap();
    assert!(report.applied);

    let (status, body) = client.post("/sessions/main/report", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let report: SessionReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.name, "main");
    assert_eq!(report.events_applied, 1);
    assert!(report.counters.score_evaluations > 0, "counters surface");
    assert!(report.clock > 0, "engine clock surfaces");

    let (status, _) = client.post("/sessions/main/close", "").unwrap();
    assert_eq!(status, 200);
    // Closed means gone.
    let (status, body) = client.post("/sessions/main/report", "").unwrap();
    assert_eq!(status, 404, "{body}");
    handle.shutdown();
}

#[test]
fn malformed_json_answers_structured_400_not_a_dropped_connection() {
    let handle = test_server(1);
    let mut client = client_of(&handle);
    let (status, body) = client.post("/solve", "{not json").unwrap();
    assert_eq!(status, 400);
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "parse");
    assert!(err.error.contains("SolveRequest"));

    // The connection survives: the next request on the same socket works.
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);

    // Same for session events.
    let (status, _) = client.post("/sessions/s/open", &open_body("s", 2)).unwrap();
    assert_eq!(status, 200);
    let (status, body) = client
        .post("/sessions/s/event", r#"{"Announce":42}"#)
        .unwrap();
    assert_eq!(status, 400);
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "parse");
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn unknown_routes_and_methods_are_typed_errors() {
    let handle = test_server(1);
    let mut client = client_of(&handle);
    for (method, path, expected_kind, expected_status) in [
        ("GET", "/nope", "unknown_route", 404),
        ("POST", "/sessions/x", "unknown_route", 404),
        ("POST", "/sessions/x/frobnicate", "unknown_route", 404),
        ("GET", "/sessions/x/event", "method_not_allowed", 405),
        ("POST", "/sessions//open", "unknown_route", 404),
    ] {
        let (status, body) = client.request(method, path, Some("")).unwrap();
        assert_eq!(status, expected_status, "{method} {path}: {body}");
        let err: ErrorBody = serde_json::from_str(&body).unwrap();
        assert_eq!(err.kind, expected_kind, "{method} {path}");
    }
    // Unknown session names are 404s with their own kind.
    let (status, body) = client.post("/sessions/ghost/event", r#""Extend""#).unwrap();
    assert_eq!(status, 404);
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "unknown_session");
    handle.shutdown();
}

#[test]
fn oversized_bodies_get_413_before_parsing() {
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 1,
        io_threads: 1,
        max_body_bytes: 256,
        users: 30,
        events: 8,
        intervals: 4,
        seed: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = client_of(&handle);
    let huge = format!(r#"{{"padding":"{}"}}"#, "x".repeat(1024));
    let (status, body) = client.post("/solve", &huge).unwrap();
    assert_eq!(status, 413, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "body_too_large");
    // Under the cap still works (fresh connection; 413 closes the socket).
    let (status, _) = client
        .post("/solve", r#"{"spec":"Greedy","k":2,"threads":1}"#)
        .unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn open_name_must_match_the_path() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, body) = client
        .post("/sessions/alpha/open", &open_body("beta", 3))
        .unwrap();
    assert_eq!(status, 400, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "name_mismatch");
    // Opening the same name twice is a 409.
    let (status, _) = client
        .post("/sessions/alpha/open", &open_body("alpha", 3))
        .unwrap();
    assert_eq!(status, 200);
    let (status, body) = client
        .post("/sessions/alpha/open", &open_body("alpha", 3))
        .unwrap();
    assert_eq!(status, 409, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "session_exists");
    handle.shutdown();
}

#[test]
fn racing_close_then_event_is_a_clean_404() {
    let handle = test_server(2);

    // Sequential race shape first: close wins, the straggler event 404s.
    let mut client = client_of(&handle);
    let (status, _) = client
        .post("/sessions/race/open", &open_body("race", 3))
        .unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.post("/sessions/race/close", "").unwrap();
    assert_eq!(status, 200);
    let (status, body) = client.post("/sessions/race/event", r#""Extend""#).unwrap();
    assert_eq!(status, 404, "{body}");

    // Now the concurrent shape: one thread streams events while another
    // closes. Every response must be 200 or a clean 404 — never a 5xx,
    // never a dropped connection — and the server must stay up.
    let mut client = client_of(&handle);
    let (status, _) = client
        .post("/sessions/race2/open", &open_body("race2", 3))
        .unwrap();
    assert_eq!(status, 200);
    let addr = handle.addr().to_string();
    let streamer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = HttpClient::new(addr);
            let mut seen = Vec::new();
            for _ in 0..50 {
                let (status, _) = client
                    .post("/sessions/race2/event", r#""Extend""#)
                    .expect("transport stays healthy");
                seen.push(status);
            }
            seen
        })
    };
    let closer = std::thread::spawn(move || {
        let mut client = HttpClient::new(addr);
        std::thread::sleep(std::time::Duration::from_millis(2));
        client
            .post("/sessions/race2/close", "")
            .expect("transport stays healthy")
            .0
    });
    let statuses = streamer.join().unwrap();
    let close_status = closer.join().unwrap();
    assert!(close_status == 200 || close_status == 404);
    assert!(
        statuses.iter().all(|&s| s == 200 || s == 404),
        "got {statuses:?}"
    );
    let (status, _) = client_of(&handle).get("/healthz").unwrap();
    assert_eq!(status, 200, "server survives the race");
    handle.shutdown();
}

#[test]
fn concurrent_clients_on_distinct_shards_do_not_interfere() {
    // More clients than pool workers (io_threads = 2), so this also
    // exercises the overflow path; shards = 4 so sessions spread out.
    let handle = test_server(4);
    let addr = handle.addr().to_string();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                let name = format!("tenant-{i}");
                let (status, body) = client
                    .post(&format!("/sessions/{name}/open"), &open_body(&name, 3))
                    .unwrap();
                assert_eq!(status, 200, "{body}");
                // Apply a per-tenant number of extends, then read back.
                for _ in 0..=i {
                    let (status, _) = client
                        .post(&format!("/sessions/{name}/event"), r#""Extend""#)
                        .unwrap();
                    assert_eq!(status, 200);
                }
                let (status, body) = client
                    .post(&format!("/sessions/{name}/report"), "")
                    .unwrap();
                assert_eq!(status, 200);
                let report: SessionReport = serde_json::from_str(&body).unwrap();
                // Isolation: this session saw exactly its own events.
                assert_eq!(report.name, name);
                assert_eq!(report.events_applied, (i + 1) as u64);
                let (status, _) = client.post(&format!("/sessions/{name}/close"), "").unwrap();
                assert_eq!(status, 200);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }
    handle.shutdown();
}

#[test]
fn metrics_expose_latency_histograms_and_engine_totals() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, _) = client.post("/sessions/m/open", &open_body("m", 3)).unwrap();
    assert_eq!(status, 200);
    for _ in 0..5 {
        let (status, _) = client.post("/sessions/m/event", r#""Extend""#).unwrap();
        assert_eq!(status, 200);
    }
    let (status, _) = client.post("/solve", "{bad").unwrap();
    assert_eq!(status, 400);

    let (status, body) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    let report: MetricsReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.shards, 2);
    assert!(report.requests_2xx >= 6);
    assert!(report.requests_4xx >= 1);
    assert_eq!(report.requests_5xx, 0);
    let event_line = report
        .endpoints
        .iter()
        .find(|l| l.endpoint == "event")
        .expect("event endpoint served traffic");
    assert_eq!(event_line.count, 5);
    assert!(event_line.p50_micros <= event_line.p95_micros);
    assert!(event_line.p95_micros <= event_line.p99_micros);
    assert!(event_line.p99_micros <= event_line.max_micros);
    // Engine totals see the open session's work.
    assert_eq!(report.engine.sessions, 1);
    assert_eq!(report.engine.events_applied, 5);
    assert!(report.engine.counters.score_evaluations > 0);
    handle.shutdown();
}

#[test]
fn replayed_disruption_stream_matches_the_in_process_digest() {
    let handle = test_server(3);
    let mut client = client_of(&handle);
    for scenario in ["steady", "flash-crowd"] {
        let check = verify_replay(
            &mut client,
            &ReplayConfig {
                scenario: scenario.into(),
                steps: 150,
                seed: 11,
                k: 8,
                session: format!("replay-{scenario}"),
                ..ReplayConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{scenario}: {e}"));
        assert_eq!(check.steps, 150, "{scenario}");
        assert!(
            check.matches,
            "{scenario}: server digest {:#018x} != sim digest {:#018x}",
            check.server_digest, check.sim_digest
        );
        assert!(check.utility_bits_match, "{scenario}");
    }
    handle.shutdown();
}

#[test]
fn slow_header_and_body_arrival_is_not_dropped() {
    use std::io::{Read, Write};
    // A client that dribbles: request line, a >250 ms pause (longer than
    // the server's idle poll tick), headers, another pause, then the body.
    // The request must still be answered, not silently dropped.
    let handle = test_server(1);
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"POST /solve HTTP/1.1\r\n").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    let body = r#"{"spec":"Greedy","k":2,"threads":1}"#;
    stream
        .write_all(
            format!(
                "Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "slow client must still be served, got: {response}"
    );
    handle.shutdown();
}

#[test]
fn packed_tenant_serves_requests_and_instances_endpoint_tracks_it() {
    // Pack a second universe to disk, boot the server with it registered.
    let packed = std::env::temp_dir().join("ses-http-it-tenant-b.sesstore");
    let fixture = ses_core::testkit::workload_instance(40, 10, 6, 21);
    ses_core::store::pack_to_path(&fixture, &packed).unwrap();
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        instances: vec![("tenant-b".to_owned(), packed.clone())],
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = client_of(&handle);

    // Registered but untouched: the packed entry must not be loaded yet.
    let (status, body) = client.get("/instances").unwrap();
    assert_eq!(status, 200, "{body}");
    let report: InstancesReport = serde_json::from_str(&body).unwrap();
    let names: Vec<&str> = report.instances.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["default", "tenant-b"]);
    assert!(report.instances[0].loaded, "workload default is resident");
    assert_eq!(report.instances[0].source, "builtin");
    assert!(!report.instances[1].loaded, "packed entry stays lazy");
    assert_eq!(report.instances[1].source, packed.display().to_string());

    // First request naming the tenant cold-opens the file.
    let (status, body) = client
        .post(
            "/solve",
            r#"{"spec":"Greedy","k":3,"threads":1,"instance":"tenant-b"}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let solved: ses_service::SolveResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(solved.scheduled(), 3);
    let (_, body) = client.get("/instances").unwrap();
    let report: InstancesReport = serde_json::from_str(&body).unwrap();
    let b = report
        .instances
        .iter()
        .find(|i| i.name == "tenant-b")
        .unwrap();
    assert!(b.loaded, "first touch loads the packed file");
    assert_eq!((b.users, b.events, b.intervals), (40, 10, 6));

    // Unknown names are structured 404s listing what is registered.
    let (status, body) = client
        .post(
            "/solve",
            r#"{"spec":"Greedy","k":2,"threads":1,"instance":"ghost"}"#,
        )
        .unwrap();
    assert_eq!(status, 404, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "unknown_instance");
    assert!(
        err.error.contains("default") && err.error.contains("tenant-b"),
        "{}",
        err.error
    );

    // Sessions bind to their tenant and echo it in reports.
    let open = r#"{"name":"tb","spec":"Greedy","k":2,"threads":1,"instance":"tenant-b"}"#;
    let (status, body) = client.post("/sessions/tb/open", open).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client.post("/sessions/tb/report", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let report: SessionReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.instance.as_str(), "tenant-b");
    let (status, _) = client.post("/sessions/tb/close", "").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
    std::fs::remove_file(&packed).ok();
}

#[test]
fn multi_tenant_loadgen_breaks_latency_down_per_instance() {
    let packed = std::env::temp_dir().join("ses-http-it-loadgen-mix.sesstore");
    let fixture = ses_core::testkit::workload_instance(50, 12, 6, 3);
    ses_core::store::pack_to_path(&fixture, &packed).unwrap();
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        instances: vec![("fixture".to_owned(), packed.clone())],
        ..ServerConfig::default()
    })
    .unwrap();

    let summary = ses_server::loadgen::run(&LoadgenConfig {
        addr: handle.addr().to_string(),
        clients: 2,
        requests: 12,
        instances: vec!["default".to_owned(), "fixture".to_owned()],
        ..LoadgenConfig::default()
    })
    .unwrap();
    assert_eq!(summary.errors, 0, "{:?}", summary.error_samples);
    let names: Vec<&str> = summary
        .per_instance
        .iter()
        .map(|l| l.instance.as_str())
        .collect();
    assert_eq!(names, ["default", "fixture"]);
    for line in &summary.per_instance {
        assert_eq!(line.clients, 1, "{}", line.instance);
        assert!(line.requests > 0, "{}", line.instance);
        assert_eq!(line.errors, 0, "{}", line.instance);
        assert!(line.p50_micros <= line.max_micros, "{}", line.instance);
    }
    handle.shutdown();
    std::fs::remove_file(&packed).ok();
}

#[test]
fn graceful_shutdown_drains_without_killing_in_flight_requests() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, _) = client
        .post("/solve", r#"{"spec":"Greedy","k":4,"threads":1}"#)
        .unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
    // The port is released: a fresh server can bind and serve again.
    let again = test_server(1);
    let (status, _) = client_of(&again).get("/healthz").unwrap();
    assert_eq!(status, 200);
    again.shutdown();
}
