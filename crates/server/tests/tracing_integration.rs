//! End-to-end tracing tests: trace-id propagation over the wire, the
//! `/trace/{id}` endpoint, the enriched `/metrics` shape, and the HEAD /
//! OPTIONS / percent-decoding satellites.
//!
//! Ring-capacity note: span rings are per-thread and sized at creation, so
//! the eviction test lives in `trace_eviction.rs` (its own process) where
//! it can shrink the default capacity before any server thread starts.

use ses_server::{
    serve, ErrorBody, HttpClient, MetricsReport, ServerConfig, ServerHandle, TraceReport,
};

fn test_server(shards: usize) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn client_of(handle: &ServerHandle) -> HttpClient {
    HttpClient::new(handle.addr().to_string())
}

#[test]
fn responses_carry_a_trace_id_and_solves_are_traceable_end_to_end() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    let (status, _) = client
        .post("/solve", r#"{"spec":"Greedy","k":4,"threads":1}"#)
        .unwrap();
    assert_eq!(status, 200);
    let trace = client
        .last_trace_id()
        .expect("response carries x-ses-trace-id")
        .to_owned();
    assert_eq!(trace.len(), 16, "wire form is 16 hex digits: {trace}");

    // The whole pipeline is queryable while the spans are in the rings.
    let (status, body) = client.get(&format!("/trace/{trace}")).unwrap();
    assert_eq!(status, 200, "{body}");
    let report: TraceReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.trace, trace);
    assert_eq!(report.span_count as usize, report.spans.len());
    for stage in ["request", "queue", "service", "solve", "sweep", "select"] {
        assert!(
            report.spans.iter().any(|s| s.stage == stage),
            "stage {stage} missing from {:?}",
            report.spans.iter().map(|s| &s.stage).collect::<Vec<_>>()
        );
    }
    // Engine counters are attributed to engine spans.
    let solve = report.spans.iter().find(|s| s.stage == "solve").unwrap();
    assert!(solve.ops.score_evaluations > 0);
    assert!(solve.ops.assigns > 0);
    // Spans come out sorted by start time.
    let starts: Vec<u64> = report.spans.iter().map(|s| s.start_nanos).collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    handle.shutdown();
}

#[test]
fn inbound_trace_ids_are_honored_and_invalid_ones_replaced() {
    let handle = test_server(1);
    let addr = handle.addr().to_string();

    // A raw request with a valid inbound id: the echo must match.
    let send = |trace_header: &str| -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nHost: x\r\nx-ses-trace-id: {trace_header}\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
            .lines()
            .find_map(|l| l.strip_prefix("x-ses-trace-id: "))
            .expect("trace header echoed")
            .to_owned()
    };

    assert_eq!(send("00000000c0ffee42"), "00000000c0ffee42");
    assert_eq!(send("c0ffee42"), "00000000c0ffee42", "short ids zero-pad");
    let replaced = send("not-a-trace-id");
    assert_ne!(replaced, "not-a-trace-id");
    assert_eq!(replaced.len(), 16, "invalid ids get a fresh one");
    assert_ne!(send("0"), "0000000000000000", "zero is reserved");
    handle.shutdown();
}

#[test]
fn trace_endpoint_misses_are_typed_404s_and_bad_ids_400s() {
    let handle = test_server(1);
    let mut client = client_of(&handle);
    let (status, body) = client.get("/trace/1234deadbeef").unwrap();
    assert_eq!(status, 404, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "unknown_trace");

    let (status, body) = client.get("/trace/zzz").unwrap();
    assert_eq!(status, 400, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "bad_trace_id");
    handle.shutdown();
}

#[test]
fn metrics_carry_shard_gauges_and_span_stage_lines() {
    let handle = test_server(3);
    let mut client = client_of(&handle);
    for _ in 0..4 {
        let (status, _) = client
            .post("/solve", r#"{"spec":"Greedy","k":3,"threads":1}"#)
            .unwrap();
        assert_eq!(status, 200);
    }
    let (status, body) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    let report: MetricsReport = serde_json::from_str(&body).unwrap();

    assert_eq!(report.shards_detail.len(), 3, "one line per shard");
    for (i, line) in report.shards_detail.iter().enumerate() {
        assert_eq!(line.shard, i as u64);
        assert_eq!(line.queue_depth, 0, "idle server has empty queues");
    }
    let handled: u64 = report.shards_detail.iter().map(|s| s.handled).sum();
    assert!(handled >= 4, "solves round-robined across shards");

    // Span-stage lines cover the pipeline and are well-formed quantiles.
    for stage in ["request", "queue", "service", "solve", "select"] {
        let line = report
            .span_stages
            .iter()
            .find(|l| l.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        assert!(line.count > 0);
        assert!(line.p50_micros <= line.p95_micros);
        assert!(line.p95_micros <= line.p99_micros);
        assert!(line.p99_micros <= line.max_micros);
    }
    handle.shutdown();
}

#[test]
fn head_and_options_answer_on_known_routes() {
    let handle = test_server(1);
    let addr = handle.addr().to_string();
    let raw = |request: &str| -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };

    // HEAD mirrors GET's status and Content-Length but sends no body.
    let head = raw("HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let advertised: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(advertised > 0, "HEAD advertises the GET body length");
    let after_headers = head.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(after_headers.is_empty(), "HEAD sends no body: {head}");

    // OPTIONS answers with the Allow list instead of a 405/404.
    let mut client = client_of(&handle);
    for (path, expect) in [
        ("/healthz", "GET, HEAD, OPTIONS"),
        ("/solve", "POST, OPTIONS"),
        ("/sessions/any/event", "POST, OPTIONS"),
    ] {
        let options = raw(&format!(
            "OPTIONS {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        ));
        assert!(options.starts_with("HTTP/1.1 200"), "{path}: {options}");
        let allow = options
            .lines()
            .find_map(|l| l.strip_prefix("Allow: "))
            .unwrap_or_else(|| panic!("{path}: no Allow header in {options}"));
        assert_eq!(allow.trim(), expect, "{path}");
    }
    // Unknown routes still 404 under OPTIONS.
    let (status, _) = client.request("OPTIONS", "/nope", None).unwrap();
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn percent_encoded_session_names_round_trip() {
    let handle = test_server(2);
    let mut client = client_of(&handle);
    // The decoded name goes in the body; the encoded one in the path.
    let open = r#"{"name":"café night","spec":"Greedy","k":3,"threads":1}"#;
    let (status, body) = client
        .post("/sessions/caf%C3%A9%20night/open", open)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .post("/sessions/caf%C3%A9%20night/report", "")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let report: ses_service::SessionReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.name, "café night");
    // Bad escapes do not route.
    let (status, _) = client.post("/sessions/a%zz/report", "").unwrap();
    assert_eq!(status, 404);
    handle.shutdown();
}
