//! Ring-eviction behavior of `GET /trace/{id}`: once enough later spans
//! wrap a shard's ring, an old trace's spans disappear and the endpoint
//! answers a clean 404 — never stale or partial garbage.
//!
//! This lives in its own integration-test binary (one process per file)
//! because ring capacity is fixed per thread at first use: it must shrink
//! *before* the server spawns any worker, and must not leak into the other
//! server tests.

use ses_server::{serve, ErrorBody, HttpClient, ServerConfig};

#[test]
fn old_traces_evict_to_a_clean_404() {
    // Tiny rings: a handful of requests evicts everything about the first.
    ses_obs::set_default_ring_capacity(16);
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 1,
        io_threads: 1,
        users: 40,
        events: 12,
        intervals: 6,
        seed: 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = HttpClient::new(handle.addr().to_string());

    let (status, _) = client
        .post("/solve", r#"{"spec":"Greedy","k":3,"threads":1}"#)
        .unwrap();
    assert_eq!(status, 200);
    let first = client.last_trace_id().unwrap().to_owned();
    let (status, _) = client.get(&format!("/trace/{first}")).unwrap();
    assert_eq!(status, 200, "fresh trace is queryable");

    // Enough traffic to lap every 16-slot ring several times over.
    for _ in 0..40 {
        let (status, _) = client
            .post("/solve", r#"{"spec":"Greedy","k":3,"threads":1}"#)
            .unwrap();
        assert_eq!(status, 200);
    }

    let (status, body) = client.get(&format!("/trace/{first}")).unwrap();
    assert_eq!(status, 404, "evicted trace must 404, got: {body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "unknown_trace");
    handle.shutdown();
}
