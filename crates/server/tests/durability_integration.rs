//! Durability integration tests: a WAL-backed server restarted on the same
//! `--wal-dir` must present bit-identical sessions, and a live rebalance
//! must move a session between shards without changing what it would
//! answer. (The out-of-process `kill -9` variant lives in the CLI crate's
//! `crash_recovery` test, which owns the `ses` binary.)

use ses_server::{
    drive_range, finish_replay, open_server_session, prepare_replay, serve, ErrorBody, FsyncPolicy,
    HttpClient, MetricsReport, RebalanceRequest, RebalanceResponse, ReplayConfig, ServerConfig,
    ServerHandle,
};
use ses_service::{EventReport, SessionReport};
use std::path::{Path, PathBuf};

/// Scratch WAL directory, wiped on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "ses-server-durability-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_server(shards: usize, wal_dir: &Path) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        wal_dir: Some(wal_dir.to_path_buf()),
        fsync: FsyncPolicy::Off, // tests exercise logging + replay, not disks
        ..ServerConfig::default()
    })
    .expect("bind durable test server")
}

fn client_of(handle: &ServerHandle) -> HttpClient {
    HttpClient::new(handle.addr().to_string())
}

fn open_body(name: &str, k: usize) -> String {
    format!(r#"{{"name":"{name}","spec":"Greedy","k":{k},"threads":1}}"#)
}

/// A deterministic mix of in-universe events for the 60u/16e/8t instance.
fn event_bodies(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 4 {
            0 => format!(
                r#"{{"Announce":{{"interval":{},"postings":[[{},0.9],[{},0.7]]}}}}"#,
                i % 8,
                i % 60,
                (i + 13) % 60
            ),
            1 => format!(r#"{{"Cancel":{{"event":{}}}}}"#, i % 16),
            2 => format!(r#"{{"Arrive":{{"event":{}}}}}"#, (i + 5) % 16),
            _ => "\"Extend\"".to_owned(),
        })
        .collect()
}

fn post_ok(client: &mut HttpClient, path: &str, body: &str) -> String {
    let (status, resp) = client.post(path, body).unwrap();
    assert_eq!(status, 200, "POST {path}: {resp}");
    resp
}

fn report_of(client: &mut HttpClient, name: &str) -> SessionReport {
    let resp = post_ok(client, &format!("/sessions/{name}/report"), "");
    serde_json::from_str(&resp).unwrap()
}

#[test]
fn restart_on_the_same_wal_dir_recovers_sessions_bit_for_bit() {
    let scratch = Scratch::new("restart");
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);

    post_ok(&mut client, "/sessions/alpha/open", &open_body("alpha", 4));
    post_ok(&mut client, "/sessions/beta/open", &open_body("beta", 6));
    for (i, body) in event_bodies(18).iter().enumerate() {
        let name = if i % 3 == 0 { "beta" } else { "alpha" };
        let resp = post_ok(&mut client, &format!("/sessions/{name}/event"), body);
        let report: EventReport = serde_json::from_str(&resp).unwrap();
        assert!(report.lsn > 0, "durable server must ack with an LSN");
    }
    // A closed session must NOT come back after recovery.
    post_ok(&mut client, "/sessions/gone/open", &open_body("gone", 2));
    post_ok(&mut client, "/sessions/gone/close", "");

    let alpha_before = report_of(&mut client, "alpha");
    let beta_before = report_of(&mut client, "beta");
    handle.shutdown();

    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);
    let alpha_after = report_of(&mut client, "alpha");
    let beta_after = report_of(&mut client, "beta");
    for (before, after) in [(&alpha_before, &alpha_after), (&beta_before, &beta_after)] {
        assert_eq!(
            before.utility.to_bits(),
            after.utility.to_bits(),
            "recovered utility must be bit-identical"
        );
        assert_eq!(before.scheduled, after.scheduled);
        assert_eq!(before.events_applied, after.events_applied);
        assert_eq!(before.clock, after.clock);
        assert!(after.durable, "recovered sessions report durable");
    }
    let (status, body) = client.post("/sessions/gone/report", "").unwrap();
    assert_eq!(status, 404, "closed session resurrected: {body}");

    // Recovery writes its report next to the shard WALs.
    let reports: Vec<_> = (0..2)
        .map(|i| scratch.0.join(format!("shard-{i}")).join("recovery.json"))
        .filter(|p| p.exists())
        .collect();
    assert!(!reports.is_empty(), "no recovery.json written");

    // The recovered server keeps absorbing events.
    let resp = post_ok(
        &mut client,
        "/sessions/alpha/event",
        r#"{"Announce":{"interval":3,"postings":[[2,0.8]]}}"#,
    );
    let report: EventReport = serde_json::from_str(&resp).unwrap();
    assert!(report.lsn > 0);
    handle.shutdown();
}

#[test]
fn metrics_and_loadgen_surface_the_wal_section() {
    let scratch = Scratch::new("metrics");
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);

    post_ok(&mut client, "/sessions/m/open", &open_body("m", 4));
    for body in event_bodies(8) {
        post_ok(&mut client, "/sessions/m/event", &body);
    }

    let (status, body) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    let report: MetricsReport = serde_json::from_str(&body).unwrap();
    let wal = report.wal.expect("durable server reports a wal section");
    assert_eq!(wal.policy, "off");
    assert!(wal.records >= 9, "open + 8 events logged: {}", wal.records);
    assert!(wal.sessions >= 1);
    let append = wal.append.expect("append latency line");
    assert_eq!(append.endpoint, "wal_append");
    assert!(append.count >= 9);
    assert!(wal.fsync.is_none(), "no fsync line under --fsync off");

    let summary = ses_server::loadgen::run(&ses_server::LoadgenConfig {
        addr: handle.addr().to_string(),
        clients: 2,
        requests: 30,
        seed: 3,
        ..ses_server::LoadgenConfig::default()
    })
    .unwrap();
    assert_eq!(summary.errors, 0, "{:?}", summary.error_samples);
    let wal = summary.wal.expect("loadgen durability view");
    assert!(wal.durable_acks > 0, "event replies carried LSNs");
    assert!(wal.records > 0);
    handle.shutdown();
}

#[test]
fn rebalance_moves_a_live_session_and_preserves_its_answers() {
    let scratch = Scratch::new("rebalance");
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);

    post_ok(&mut client, "/sessions/mig/open", &open_body("mig", 5));
    post_ok(
        &mut client,
        "/sessions/bystander/open",
        &open_body("bystander", 3),
    );
    for body in event_bodies(12) {
        post_ok(&mut client, "/sessions/mig/event", &body);
    }
    let before = report_of(&mut client, "mig");

    // Park the session on shard 0 (possibly a no-op), then force a real
    // move to shard 1.
    let req = serde_json::to_string(&RebalanceRequest {
        session: "mig".to_owned(),
        target: 0,
    })
    .unwrap();
    post_ok(&mut client, "/admin/rebalance", &req);
    let req = serde_json::to_string(&RebalanceRequest {
        session: "mig".to_owned(),
        target: 1,
    })
    .unwrap();
    let resp = post_ok(&mut client, "/admin/rebalance", &req);
    let moved: RebalanceResponse = serde_json::from_str(&resp).unwrap();
    assert_eq!((moved.from, moved.to), (0, 1), "{resp}");
    assert!(moved.events_moved > 0, "{resp}");
    let migrated = moved.report.expect("migration returns the fresh report");
    assert_eq!(
        migrated.utility.to_bits(),
        before.utility.to_bits(),
        "migration must not change the session's utility"
    );
    assert_eq!(migrated.events_applied, before.events_applied);

    // The migrated session keeps answering on its new shard, and the
    // bystander was never disturbed.
    let after = report_of(&mut client, "mig");
    assert_eq!(after.utility.to_bits(), before.utility.to_bits());
    assert_eq!(after.scheduled, before.scheduled);
    post_ok(
        &mut client,
        "/sessions/mig/event",
        r#"{"Announce":{"interval":1,"postings":[[4,0.6]]}}"#,
    );
    let bystander = report_of(&mut client, "bystander");
    assert_eq!(bystander.name, "bystander");

    // And the moved session survives a restart from its new home.
    let final_report = report_of(&mut client, "mig");
    handle.shutdown();
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);
    let recovered = report_of(&mut client, "mig");
    assert_eq!(
        recovered.utility.to_bits(),
        final_report.utility.to_bits(),
        "post-migration session must recover bit-for-bit"
    );
    assert_eq!(recovered.events_applied, final_report.events_applied);
    handle.shutdown();
}

/// The strongest migration oracle: drive half of a recorded disruption
/// stream, migrate the session between shards mid-stream, drive the rest,
/// and require the full trace digest to match the uninterrupted in-process
/// simulation bit for bit — while a bystander session keeps answering.
#[test]
fn rebalance_mid_replay_preserves_the_trace_digest() {
    let scratch = Scratch::new("mid-replay");
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);
    post_ok(&mut client, "/sessions/aside/open", &open_body("aside", 3));

    let cfg = ReplayConfig {
        steps: 60,
        k: 8,
        session: "mig-replay".to_owned(),
        ..ReplayConfig::default()
    };
    let session = prepare_replay(&mut client, &cfg).unwrap();
    let mut state = open_server_session(&mut client, &cfg, &session).unwrap();
    let half = session.recorded.len() / 2;
    drive_range(&mut client, &cfg, &session, &mut state, 0, half).unwrap();
    assert_eq!(
        state.trace.digest(),
        session.sim_trace.digest_prefix(half),
        "prefix digests must already agree before the migration"
    );

    // Force a real move: park on shard 0 (maybe a no-op), then shard 1.
    for target in [0usize, 1] {
        let req = serde_json::to_string(&RebalanceRequest {
            session: cfg.session.clone(),
            target,
        })
        .unwrap();
        post_ok(&mut client, "/admin/rebalance", &req);
    }

    drive_range(
        &mut client,
        &cfg,
        &session,
        &mut state,
        half,
        session.recorded.len(),
    )
    .unwrap();
    let check = finish_replay(&mut client, &cfg, &session, &state).unwrap();
    assert!(
        check.matches,
        "digest diverged across a live migration: server {:#018x} vs sim {:#018x}",
        check.server_digest, check.sim_digest
    );
    assert!(check.utility_bits_match);
    let aside = report_of(&mut client, "aside");
    assert_eq!(aside.name, "aside", "bystander kept answering");
    handle.shutdown();
}

#[test]
fn rebalance_rejects_bad_requests_with_typed_errors() {
    // Not durable: rebalance is off.
    let plain = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        io_threads: 2,
        users: 60,
        events: 16,
        intervals: 8,
        seed: 7,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = client_of(&plain);
    let req = r#"{"session":"x","target":1}"#;
    let (status, body) = client.post("/admin/rebalance", req).unwrap();
    assert_eq!(status, 400, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "not_durable");
    plain.shutdown();

    let scratch = Scratch::new("errors");
    let handle = durable_server(2, &scratch.0);
    let mut client = client_of(&handle);

    // Target out of range.
    let (status, body) = client
        .post("/admin/rebalance", r#"{"session":"x","target":9}"#)
        .unwrap();
    assert_eq!(status, 400, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "bad_target");

    // Unknown session.
    let (status, body) = client
        .post("/admin/rebalance", r#"{"session":"ghost","target":0}"#)
        .unwrap();
    assert_eq!(status, 404, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "unknown_session");

    // Malformed body.
    let (status, body) = client.post("/admin/rebalance", "{nope").unwrap();
    assert_eq!(status, 400, "{body}");
    let err: ErrorBody = serde_json::from_str(&body).unwrap();
    assert_eq!(err.kind, "parse");
    handle.shutdown();
}
