//! The `external-deps` lint: a tiny line-oriented TOML section scanner
//! for `Cargo.toml` files. The build environment is offline, so every
//! dependency outside `crates/compat` must resolve inside the workspace:
//! either `workspace = true` or an explicit `path = …`. A bare version
//! requirement (`foo = "1.0"`) or a `{ version = … }` table without a
//! path is a finding.
//!
//! Scanning is deliberately shallow — section headers, `key = value`
//! lines, and `[dependencies.foo]` subsections — which covers everything
//! Cargo accepts in this repo without dragging in a full TOML parser.

use crate::report::Finding;

fn is_dependency_section(header: &str) -> bool {
    // `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
    // `[workspace.dependencies]`, `[target.'cfg(…)'.dependencies]`.
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header.ends_with(".dependencies")
}

/// A `[dependencies.foo]`-style subsection: returns `foo`.
fn dependency_subsection(header: &str) -> Option<&str> {
    let (prefix, name) = header.rsplit_once('.')?;
    is_dependency_section(prefix).then_some(name)
}

fn value_is_workspace_local(value: &str) -> bool {
    // `{ workspace = true }`, `{ path = "…" }`, or the bare
    // `foo.workspace = true` dotted-key form handled by the caller.
    value.contains("workspace") || value.contains("path")
}

/// Scans one manifest. `path` is repo-relative with `/` separators;
/// manifests under `crates/compat/` are exempt (the shims ARE the
/// dependency boundary).
pub fn analyze_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if path.starts_with("crates/compat/") {
        return findings;
    }
    let mut section = String::new();
    // Open `[dependencies.foo]` subsection: (name, header line, saw local key).
    let mut open_subsection: Option<(String, usize, bool)> = None;
    let close_subsection = |sub: &mut Option<(String, usize, bool)>,
                            findings: &mut Vec<Finding>| {
        if let Some((name, line, local)) = sub.take() {
            if !local {
                findings.push(Finding {
                    lint: "external-deps".to_owned(),
                    file: path.to_owned(),
                    line,
                    message: format!(
                        "dependency `{name}` has no `path`/`workspace` key — the offline \
                             build cannot resolve registry dependencies"
                    ),
                });
            }
        }
    };
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_start_matches('[');
            let header = header.trim_end_matches(']').trim().trim_matches('"');
            close_subsection(&mut open_subsection, &mut findings);
            if let Some(name) = dependency_subsection(header) {
                open_subsection = Some((name.to_owned(), line_no, false));
                section.clear();
            } else {
                section = header.to_owned();
            }
            continue;
        }
        if let Some((_, _, local)) = open_subsection.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *local = true;
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // Dotted forms: `foo.workspace = true` / `foo.path = "…"`.
        if key.ends_with(".workspace") || key.ends_with(".path") {
            continue;
        }
        if !value_is_workspace_local(value) {
            findings.push(Finding {
                lint: "external-deps".to_owned(),
                file: path.to_owned(),
                line: line_no,
                message: format!(
                    "dependency `{key}` = {value} is not `workspace = true` or a `path` \
                     dependency — the offline build cannot resolve registry dependencies"
                ),
            });
        }
    }
    close_subsection(&mut open_subsection, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_version_is_flagged() {
        let f = analyze_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nserde.workspace = true\nrand = \"0.8\"\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("rand"));
    }

    #[test]
    fn workspace_path_and_dotted_forms_pass() {
        let f = analyze_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\na = { workspace = true }\nb = { path = \"../b\" }\nc.workspace = true\n\n[dev-dependencies]\nd.workspace = true\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn subsection_without_path_is_flagged() {
        let f = analyze_manifest(
            "crates/x/Cargo.toml",
            "[dependencies.foo]\nversion = \"1\"\nfeatures = [\"x\"]\n",
        );
        assert_eq!(f.len(), 1);
        let ok = analyze_manifest(
            "crates/x/Cargo.toml",
            "[dependencies.foo]\npath = \"../foo\"\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn compat_manifests_are_exempt() {
        let f = analyze_manifest(
            "crates/compat/rand/Cargo.toml",
            "[dependencies]\nlibc = \"0.2\"\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let f = analyze_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[lints.rust]\nfoo = \"warn\"\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
