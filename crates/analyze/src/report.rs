//! Findings and their renderings: stable JSON for machines (the CI gate
//! and its uploaded artifact) and aligned text for humans. JSON is
//! hand-emitted — the shape is flat and fixed, and keeping this crate
//! dependency-free means the linter can never be broken by the code it
//! lints.

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (kebab-case; `unknown-pragma` for pragma errors).
    pub lint: String,
    /// Repo-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// A whole run: what was scanned and what was found.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
    /// Lints disabled for this run via `--allow`.
    pub allowed: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Analysis {
    /// The machine-readable report (stable keys; one finding per array
    /// element; `clean` is the gate bit CI checks).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.findings.is_empty()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"manifests_scanned\": {},\n",
            self.manifests_scanned
        ));
        out.push_str(&format!(
            "  \"allowed\": [{}],\n",
            self.allowed
                .iter()
                .map(|a| format!("\"{}\"", json_escape(a)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&f.lint),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.lint, f.message
            ));
        }
        out.push_str(&format!(
            "{} finding(s) across {} source file(s) and {} manifest(s)",
            self.findings.len(),
            self.files_scanned,
            self.manifests_scanned
        ));
        if !self.allowed.is_empty() {
            out.push_str(&format!(" (allowed: {})", self.allowed.join(", ")));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_clean_bit() {
        let a = Analysis {
            findings: vec![Finding {
                lint: "x".into(),
                file: "a/b.rs".into(),
                line: 3,
                message: "quote \" and\nnewline".into(),
            }],
            files_scanned: 2,
            manifests_scanned: 1,
            allowed: vec!["y".into()],
        };
        let j = a.to_json();
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("quote \\\" and\\nnewline"));
        assert!(j.contains("\"allowed\": [\"y\"]"));
        let clean = Analysis::default().to_json();
        assert!(clean.contains("\"clean\": true"));
        assert!(clean.contains("\"findings\": []"));
    }
}
