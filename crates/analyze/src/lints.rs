//! The lint catalog and the source-level scanning engine.
//!
//! Each lint is named, individually `--allow`-able on the CLI, and
//! suppressible at a single site with an inline pragma comment:
//!
//! ```text
//! // ses-analyze: allow(lint-name): why this site is fine
//! ```
//!
//! A pragma on line `L` suppresses findings of that lint on lines `L` and
//! `L + 1` (the usual "comment above the offending line" shape).
//!
//! Code under `#[cfg(test)]` / `#[test]` items is exempt from the
//! discipline lints (atomics, panics, wall clock): tests may panic and
//! may use whatever clocks and atomics they need. The exemption is a
//! token-level heuristic — an attribute that mentions `test` without a
//! `not(...)` exempts the item (fn/mod/impl) it precedes.

use crate::lexer::{lex, Token, TokenKind};
use crate::report::Finding;

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Kebab-case name used by `--allow` and pragmas.
    pub name: &'static str,
    /// One-line description for `--list` and reports.
    pub description: &'static str,
}

/// Every lint the tool knows, in report order.
pub const LINTS: [LintInfo; 6] = [
    LintInfo {
        name: "atomics-confinement",
        description: "atomic types only in the audited lock-free modules \
                      (crates/obs, crates/compat, server metrics, server \
                      shutdown flags) — everywhere else use locks or channels",
    },
    LintInfo {
        name: "unsafe-needs-safety-comment",
        description: "every `unsafe` must be preceded by a `// SAFETY:` \
                      comment (within the three lines above) stating the \
                      obligations and why they hold",
    },
    LintInfo {
        name: "server-panic-discipline",
        description: "no .unwrap()/.expect()/panic! in server \
                      request-handling code outside #[cfg(test)] — answer \
                      structured errors instead of killing the handler",
    },
    LintInfo {
        name: "wall-clock-in-core",
        description: "no Instant::now/SystemTime::now in the deterministic \
                      core/sim layers except allowlisted timing sites — \
                      wall clocks must never steer algorithm decisions",
    },
    LintInfo {
        name: "kernel-unsafe-confinement",
        description: "in crates/core, `unsafe` lives only in the scoring \
                      kernel module (crates/core/src/engine/kernel.rs) — \
                      the rest of the deterministic core stays safe Rust \
                      so the bit-exactness argument has one audit surface",
    },
    LintInfo {
        name: "external-deps",
        description: "every dependency outside crates/compat must be a \
                      workspace or path dependency (the build is offline; \
                      registry deps cannot resolve)",
    },
];

/// Whether `name` is a known lint.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|l| l.name == name)
}

/// Files (path prefixes, `/`-separated, repo-relative) allowed to use
/// atomics directly. Everything here is either model-checked under the
/// shuttle explorer (obs, server metrics), part of the explorer itself
/// (compat), or a documented signal/shutdown flag (server.rs).
const ATOMIC_ALLOWLIST: [&str; 4] = [
    "crates/obs/",
    "crates/compat/",
    "crates/server/src/metrics.rs",
    "crates/server/src/server.rs",
];

/// Server files whose code runs on the request path (panic discipline).
/// Client-side tooling (client.rs, loadgen.rs, replay.rs) may panic: it
/// reports to a human, not to a socket. The core store is included because
/// the registry lazily opens packed tenant files while serving requests —
/// a corrupt file must answer a structured 500, never take the shard down.
/// The durable crate's WAL and recovery paths run inside shard workers
/// (every append is on the event hot path, and recovery gates boot), so a
/// torn tail or corrupt segment must come back as a typed `WalError`,
/// never a panic.
const SERVER_REQUEST_PATH: [&str; 7] = [
    "crates/server/src/server.rs",
    "crates/server/src/shard.rs",
    "crates/server/src/http.rs",
    "crates/server/src/metrics.rs",
    "crates/core/src/store.rs",
    "crates/durable/src/wal.rs",
    "crates/durable/src/recover.rs",
];

/// Deterministic layers where wall clocks are confined to allowlisted
/// timing sites (pragma-marked: they feed `SolveStats`/throughput
/// reporting, never algorithm decisions).
const DETERMINISTIC_SCOPES: [&str; 2] = ["crates/core/", "crates/sim/"];

/// Scope of the kernel-unsafe confinement: inside this tree, `unsafe`
/// may appear only in [`KERNEL_MODULE`] (and tests). The chunked scoring
/// kernel is the one place where bounds checks are hand-argued away;
/// keeping every other core module safe keeps that audit surface small.
const KERNEL_UNSAFE_SCOPE: &str = "crates/core/";

/// The single core module allowed to contain `unsafe` code. SAFETY
/// comments are still required there by `unsafe-needs-safety-comment`.
const KERNEL_MODULE: &str = "crates/core/src/engine/kernel.rs";

fn path_in(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        path == p.trim_end_matches('/') || path.starts_with(p) || (p.ends_with(".rs") && path == *p)
    })
}

/// Inline pragma state: which (lint, line) pairs are suppressed.
struct Pragmas {
    /// (lint name, pragma line) pairs; each suppresses its line and the next.
    allows: Vec<(String, usize)>,
}

impl Pragmas {
    fn collect(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) -> Self {
        let mut allows = Vec::new();
        for t in tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let Some(rest) = t
                .text
                .trim_start_matches('/')
                .trim()
                .strip_prefix("ses-analyze:")
            else {
                continue;
            };
            let rest = rest.trim();
            if let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) {
                let name = inner.0.trim();
                if is_known_lint(name) {
                    allows.push((name.to_owned(), t.line));
                } else {
                    findings.push(Finding {
                        lint: "unknown-pragma".to_owned(),
                        file: path.to_owned(),
                        line: t.line,
                        message: format!("pragma names unknown lint `{name}`"),
                    });
                }
            } else {
                findings.push(Finding {
                    lint: "unknown-pragma".to_owned(),
                    file: path.to_owned(),
                    line: t.line,
                    message: "malformed ses-analyze pragma (expected `allow(<lint>): reason`)"
                        .to_owned(),
                });
            }
        }
        Self { allows }
    }

    fn suppressed(&self, lint: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(name, l)| name == lint && (line == *l || line == *l + 1))
    }
}

/// Marks which tokens sit inside `#[test]` / `#[cfg(test)]` items.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute body `#[ … ]`.
        let mut j = i + 2;
        let mut depth = 1;
        let mut mentions_test = false;
        let mut mentions_not = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            } else if tokens[j].is_ident("test") {
                mentions_test = true;
            } else if tokens[j].is_ident("not") {
                mentions_not = true;
            }
            j += 1;
        }
        if !mentions_test || mentions_not {
            i = j;
            continue;
        }
        // Exempt region: attribute + following item. Skip any further
        // attributes, then consume to the end of the item: the matching
        // `}` of its first brace, or a `;` at brace depth 0.
        let region_start = i;
        let mut k = j;
        while k < tokens.len() && tokens[k].is_punct('#') {
            // another attribute — skip its [ … ]
            let mut d = 0;
            k += 1;
            if k < tokens.len() && tokens[k].is_punct('[') {
                loop {
                    if k >= tokens.len() {
                        break;
                    }
                    if tokens[k].is_punct('[') {
                        d += 1;
                    } else if tokens[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
        }
        let mut brace = 0i64;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                brace += 1;
            } else if tokens[k].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    k += 1;
                    break;
                }
            } else if tokens[k].is_punct(';') && brace == 0 {
                k += 1;
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k).skip(region_start) {
            *m = true;
        }
        i = k;
    }
    mask
}

/// Runs every source-level lint over one file. `path` must be
/// repo-relative with `/` separators (it selects which lints apply).
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let mut findings = Vec::new();
    let pragmas = Pragmas::collect(&tokens, path, &mut findings);
    let in_test = test_region_mask(&tokens);

    let push = |findings: &mut Vec<Finding>, lint: &str, line: usize, message: String| {
        if !pragmas.suppressed(lint, line) {
            findings.push(Finding {
                lint: lint.to_owned(),
                file: path.to_owned(),
                line,
                message,
            });
        }
    };

    // --- atomics-confinement -------------------------------------------
    if !path_in(path, &ATOMIC_ALLOWLIST) {
        for (idx, t) in tokens.iter().enumerate() {
            if in_test[idx] || t.kind != TokenKind::Ident {
                continue;
            }
            let atomic_type = t.text.starts_with("Atomic") && t.text.len() > "Atomic".len();
            // `…::sync::atomic` path segment (covers `use std::sync::atomic`).
            let atomic_path = t.is_ident("atomic")
                && idx >= 3
                && tokens[idx - 1].is_punct(':')
                && tokens[idx - 2].is_punct(':')
                && tokens[idx - 3].is_ident("sync");
            if atomic_type || atomic_path {
                push(
                    &mut findings,
                    "atomics-confinement",
                    t.line,
                    format!(
                        "`{}` outside the audited lock-free modules — use locks/channels, \
                         or move the code into an allowlisted module",
                        t.text
                    ),
                );
            }
        }
    }

    // --- unsafe-needs-safety-comment -----------------------------------
    for (idx, t) in tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Walk up the contiguous comment block above the `unsafe` (skipping
        // earlier tokens on its own line): any line of it may carry the
        // `SAFETY:` marker, so long multi-line arguments stay legal.
        let mut covered = false;
        let mut expect_line = t.line;
        for p in tokens[..idx].iter().rev() {
            if p.line == t.line {
                continue;
            }
            if p.is_comment() && p.line + 3 >= expect_line {
                if p.text.contains("SAFETY:") {
                    covered = true;
                    break;
                }
                expect_line = p.line;
                continue;
            }
            break;
        }
        if !covered {
            push(
                &mut findings,
                "unsafe-needs-safety-comment",
                t.line,
                "`unsafe` without a `// SAFETY:` comment in the three lines above".to_owned(),
            );
        }
    }

    // --- kernel-unsafe-confinement -------------------------------------
    if path.starts_with(KERNEL_UNSAFE_SCOPE) && path != KERNEL_MODULE {
        for (idx, t) in tokens.iter().enumerate() {
            if in_test[idx] || !t.is_ident("unsafe") {
                continue;
            }
            push(
                &mut findings,
                "kernel-unsafe-confinement",
                t.line,
                format!(
                    "`unsafe` in the deterministic core outside {KERNEL_MODULE} — \
                     move the code into the kernel module or write it in safe Rust"
                ),
            );
        }
    }

    // --- server-panic-discipline ---------------------------------------
    if path_in(path, &SERVER_REQUEST_PATH) {
        for (idx, t) in tokens.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let method_call = (t.is_ident("unwrap") || t.is_ident("expect"))
                && idx >= 1
                && tokens[idx - 1].is_punct('.')
                && tokens.get(idx + 1).is_some_and(|n| n.is_punct('('));
            let panic_macro =
                (t.is_ident("panic") || t.is_ident("unreachable") || t.is_ident("todo"))
                    && tokens.get(idx + 1).is_some_and(|n| n.is_punct('!'));
            if method_call || panic_macro {
                push(
                    &mut findings,
                    "server-panic-discipline",
                    t.line,
                    format!(
                        "`{}` on the server request path — answer a structured error \
                         (or pragma-allow a boot-time fail-fast site)",
                        t.text
                    ),
                );
            }
        }
    }

    // --- wall-clock-in-core --------------------------------------------
    if path_in(path, &DETERMINISTIC_SCOPES) {
        for (idx, t) in tokens.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let clock_now = t.is_ident("now")
                && idx >= 3
                && tokens[idx - 1].is_punct(':')
                && tokens[idx - 2].is_punct(':')
                && (tokens[idx - 3].is_ident("Instant") || tokens[idx - 3].is_ident("SystemTime"));
            if clock_now {
                push(
                    &mut findings,
                    "wall-clock-in-core",
                    t.line,
                    format!(
                        "`{}::now` in the deterministic layer — clocks may only feed \
                         reporting (pragma-allow such sites), never decisions",
                        tokens[idx - 3].text
                    ),
                );
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_mask_covers_cfg_test_mod() {
        let tokens =
            lex("fn a() {}\n#[cfg(test)]\nmod tests { fn b() { x.unwrap(); } }\nfn c() {}");
        let mask = test_region_mask(&tokens);
        let unwrap_idx = tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let a_idx = tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let c_idx = tokens.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(mask[unwrap_idx]);
        assert!(!mask[a_idx]);
        assert!(!mask[c_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let tokens = lex("#[cfg(not(test))]\nfn a() { x.unwrap(); }");
        let mask = test_region_mask(&tokens);
        let unwrap_idx = tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!mask[unwrap_idx]);
    }

    #[test]
    fn pragma_suppresses_its_line_and_the_next() {
        let src = "\
// ses-analyze: allow(server-panic-discipline): boot-time fail fast
x.expect(\"boot\");
y.expect(\"not covered\");
";
        let f = analyze_source("crates/server/src/server.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unknown_pragma_is_itself_a_finding() {
        let f = analyze_source(
            "crates/core/src/x.rs",
            "// ses-analyze: allow(no-such-lint): x\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unknown-pragma");
    }

    #[test]
    fn kernel_module_and_core_tests_are_exempt_from_unsafe_confinement() {
        let src = "\
// SAFETY: caller guarantees `p` is valid for reads.
pub fn peek(p: *const u8) -> u8 { unsafe { *p } }
";
        // In the kernel module: confinement does not fire (SAFETY present,
        // so nothing fires at all).
        let kernel = analyze_source(KERNEL_MODULE, src);
        assert!(kernel.is_empty(), "{kernel:?}");
        // Anywhere else in core: exactly the confinement finding.
        let stray = analyze_source("crates/core/src/engine/columns.rs", src);
        assert_eq!(stray.len(), 1, "{stray:?}");
        assert_eq!(stray[0].lint, "kernel-unsafe-confinement");
        // Outside core the lint is out of scope.
        let elsewhere = analyze_source("crates/obs/src/peek.rs", src);
        assert!(elsewhere.is_empty(), "{elsewhere:?}");
        // Test code in core may use unsafe (e.g. miri-style probes).
        let in_test = analyze_source(
            "crates/core/src/engine/columns.rs",
            "#[cfg(test)]\nmod tests {\n// SAFETY: test-local.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n",
        );
        assert!(in_test.is_empty(), "{in_test:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_site() {
        let f = analyze_source(
            "crates/server/src/server.rs",
            "let x = lock.lock().unwrap_or_else(|p| p.into_inner());\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
