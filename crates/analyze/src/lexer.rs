//! A minimal hand-rolled Rust lexer — just enough fidelity for lint
//! scanning: comments are kept as tokens (the SAFETY-comment and inline
//! `allow` pragmas live there), string/char literals are consumed so
//! their contents can never fake a token, and lifetimes are separated
//! from char literals. Everything the lints don't care about (numeric
//! literal flavors, multi-char operators) degrades to single-character
//! punctuation tokens.

/// Token classes the lints consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` (text includes the slashes).
    LineComment,
    /// `/* … */`, nesting handled (text includes delimiters).
    BlockComment,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// A char literal `'x'` (escapes handled).
    Char,
    /// A lifetime `'a` (not a char literal).
    Lifetime,
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// A numeric literal (consumed wholesale, value irrelevant).
    Number,
    /// One punctuation character: `.`, `:`, `#`, `[`, `{`, `!`, ….
    Punct,
}

/// One token with enough context to report and to match sequences.
#[derive(Debug, Clone)]
pub struct Token {
    /// Class.
    pub kind: TokenKind,
    /// Source text (comments keep their text; `Str` keeps only delimiters'
    /// worth of placeholder to stay cheap).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `source` into a token stream. Never fails: malformed input
/// degrades to punctuation tokens, which is fine for linting (the real
/// compiler is the arbiter of validity).
pub fn lex(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::LineComment,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokenKind::BlockComment,
                    text: source[start..i].to_owned(),
                    line: start_line,
                });
            }
            b'"' => {
                i = consume_string(b, i, &mut line);
                out.push(Token {
                    kind: TokenKind::Str,
                    text: "\"…\"".to_owned(),
                    line,
                });
            }
            b'r' | b'b' | b'c' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = consume_prefixed_string(b, i, &mut line);
                out.push(Token {
                    kind: TokenKind::Str,
                    text: "\"…\"".to_owned(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime `'a` vs char literal `'a'`: a lifetime is a quote
                // + ident-start NOT followed by a closing quote (except the
                // escape and multi-byte cases, which are chars).
                if is_lifetime(b, i) {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_owned(),
                        line,
                    });
                } else {
                    i = consume_char_literal(b, i);
                    out.push(Token {
                        kind: TokenKind::Char,
                        text: "'…'".to_owned(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                // Raw identifier prefix.
                if c == b'r' && b.get(i + 1) == Some(&b'#') && ident_start(b.get(i + 2)) {
                    i += 2;
                }
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].trim_start_matches("r#").to_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Numbers may contain `_`, hex/bin/oct letters, `.`, and
                // exponent signs; consuming greedily is safe because a
                // number is never adjacent to a token the lints match on.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..10` — don't eat a range operator.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn ident_start(c: Option<&u8>) -> bool {
    matches!(c, Some(c) if *c == b'_' || c.is_ascii_alphabetic())
}

/// Does `r…`, `b…`, or `c…` at `i` begin a (raw/byte/C) string literal?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_prefix = |s: &[u8]| -> bool {
        // zero or more `#`, then `"`.
        let mut j = 0;
        while s.get(j) == Some(&b'#') {
            j += 1;
        }
        s.get(j) == Some(&b'"')
    };
    match rest.first() {
        Some(b'r') | Some(b'c') => {
            rest.get(1) == Some(&b'"') || (rest.get(1) == Some(&b'#') && after_prefix(&rest[1..]))
        }
        Some(b'b') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'r') => after_prefix(&rest[2..]),
            Some(b'\'') => false, // byte char literal, handled by '\'' arm? no — see below
            _ => false,
        },
        _ => false,
    }
}

/// Consumes a plain `"…"` string starting at the quote; returns the index
/// after the closing quote.
fn consume_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"` starting at the
/// prefix letter.
fn consume_prefixed_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b' || b[i] == b'c') {
        if b[i] == b'r' {
            raw = true;
        }
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a string; degrade gracefully
    }
    i += 1;
    if !raw && hashes == 0 {
        // b"…" / c"…": escapes apply.
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw: ends at `"` followed by the same number of hashes; no escapes.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = 0;
            while j < hashes && b.get(i + 1 + j) == Some(&b'#') {
                j += 1;
            }
            if j == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// `'a` (lifetime) vs `'a'` / `'\n'` (char literal), looking from the quote.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(c) if *c == b'_' || c.is_ascii_alphabetic() => {
            // `'a'` is a char; `'a` / `'abc` (no closing quote after the
            // ident run) is a lifetime.
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            b.get(j) != Some(&b'\'')
        }
        _ => false,
    }
}

/// Consumes a char literal `'…'` starting at the quote.
fn consume_char_literal(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_survive_with_text() {
        let toks = lex("// SAFETY: fine\nunsafe {}");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("SAFETY:"));
        assert!(toks[1].is_ident("unsafe"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        // `.unwrap()` inside a string must not produce ident tokens.
        let toks = lex(r#"let s = "x.unwrap()";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        for src in [
            r##"r#"panic!("x")"#"##,
            r#"b"panic!()""#,
            r###"br##"unsafe"##"###,
        ] {
            let toks = lex(src);
            assert_eq!(
                toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
                1,
                "{src}"
            );
            assert!(
                !toks
                    .iter()
                    .any(|t| t.is_ident("panic") || t.is_ident("unsafe")),
                "{src}"
            );
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ unsafe");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[1].is_ident("unsafe"));
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let k = kinds("0..10");
        assert_eq!(
            k,
            vec![
                TokenKind::Number,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Number
            ]
        );
    }

    #[test]
    fn raw_identifiers_normalize() {
        let toks = lex("r#fn");
        assert!(toks[0].is_ident("fn"));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let toks = lex("let s = \"a\nb\";\nunsafe");
        let u = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 3);
    }
}
