//! The `ses-analyze` CLI — the workspace lint gate.
//!
//! ```text
//! ses-analyze [--root DIR] [--format text|json] [--out FILE]
//!             [--allow LINT]... [--list]
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding survives the allows,
//! 2 on usage or I/O errors. `--out` always writes the JSON report (for
//! CI artifact upload) regardless of `--format`.

use ses_analyze::{analyze_workspace, is_known_lint, LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: String,
    out: Option<PathBuf>,
    allow: Vec<String>,
    list: bool,
}

fn usage() -> String {
    "usage: ses-analyze [--root DIR] [--format text|json] [--out FILE] \
     [--allow LINT]... [--list]"
        .to_owned()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: "text".to_owned(),
        out: None,
        allow: Vec::new(),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--format" => {
                args.format = value("--format")?;
                if args.format != "text" && args.format != "json" {
                    return Err("--format must be `text` or `json`".to_owned());
                }
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--allow" => {
                let name = value("--allow")?;
                if !is_known_lint(&name) {
                    return Err(format!("unknown lint `{name}` (see --list)"));
                }
                args.allow.push(name);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for l in LINTS {
            println!(
                "{:28} {}",
                l.name,
                l.description
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }
    let Some(root) = args.root.or_else(discover_root) else {
        eprintln!("no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    let analysis = match analyze_workspace(&root, &args.allow) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, analysis.to_json()) {
            eprintln!("writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    match args.format.as_str() {
        "json" => print!("{}", analysis.to_json()),
        _ => print!("{}", analysis.to_text()),
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
