//! # ses-analyze — workspace static analysis
//!
//! A hand-rolled Rust lexer plus a lightweight item/attribute scanner
//! that walks every workspace source and `Cargo.toml` and enforces the
//! project's cross-cutting invariants as named, individually
//! `--allow`-able lints (see [`LINTS`]):
//!
//! * `atomics-confinement` — lock-free code stays in the audited,
//!   model-checked modules;
//! * `unsafe-needs-safety-comment` — every `unsafe` argues its safety;
//! * `server-panic-discipline` — the request path answers errors, it
//!   does not panic;
//! * `wall-clock-in-core` — the deterministic layers never let wall
//!   clocks steer decisions;
//! * `external-deps` — the offline build only resolves workspace/path
//!   dependencies (outside `crates/compat`).
//!
//! Individual sites opt out with a justification pragma:
//! `// ses-analyze: allow(<lint>): <reason>` (suppresses that line and
//! the next; unknown lint names are themselves findings). Test code
//! (`#[cfg(test)]` / `#[test]` items) is exempt from the discipline
//! lints.
//!
//! The `ses-analyze` binary is the CI gate: exit 0 and `"clean": true`
//! in the JSON report, or a nonzero exit with every finding listed. The
//! walker skips `target/` and lint fixture corpora (`tests/fixtures/`).
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod lexer;
mod lints;
mod manifest;
mod report;

pub use lexer::{lex, Token, TokenKind};
pub use lints::{analyze_source, is_known_lint, LintInfo, LINTS};
pub use manifest::analyze_manifest;
pub use report::{Analysis, Finding};

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".claude"];

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // Lint fixture corpora deliberately trip lints; they are
            // scanned by the fixture tests, not the workspace gate.
            if name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace at `root`, running every source and manifest lint.
/// `allowed` lints are dropped from the result (recorded in
/// [`Analysis::allowed`]).
pub fn analyze_workspace(root: &Path, allowed: &[String]) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut analysis = Analysis {
        allowed: allowed.to_vec(),
        ..Analysis::default()
    };
    for path in files {
        let rel = rel_path(root, &path);
        let source = std::fs::read_to_string(&path)?;
        let found = if rel.ends_with("Cargo.toml") {
            analysis.manifests_scanned += 1;
            analyze_manifest(&rel, &source)
        } else {
            analysis.files_scanned += 1;
            analyze_source(&rel, &source)
        };
        analysis
            .findings
            .extend(found.into_iter().filter(|f| !allowed.contains(&f.lint)));
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(analysis)
}
