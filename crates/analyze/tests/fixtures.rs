//! Self-test corpus for `ses-analyze`.
//!
//! Each fixture under `tests/fixtures/` is scanned with a *virtual*
//! repo-relative path chosen to put it in the scope of exactly one lint,
//! and the test asserts that precisely that lint (and nothing else)
//! fires. A final integration test runs the full workspace walk on HEAD
//! and asserts it is clean — the same gate CI enforces.

use ses_analyze::{analyze_manifest, analyze_source, analyze_workspace, Finding};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn lint_names(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.lint.as_str()).collect()
}

/// Assert the findings are exactly one occurrence of `lint`.
fn assert_exactly_one(findings: &[Finding], lint: &str) {
    assert_eq!(
        lint_names(findings),
        vec![lint],
        "expected exactly one `{lint}` finding, got: {findings:#?}"
    );
}

#[test]
fn fixture_atomics_outside_allowlist_trips_confinement() {
    let src = fixture("atomics.rs");
    // Outside the atomics allowlist: one finding per atomic-type token.
    let findings = analyze_source("crates/core/src/bad_counter.rs", &src);
    assert!(
        !findings.is_empty() && findings.iter().all(|f| f.lint == "atomics-confinement"),
        "expected only atomics-confinement findings, got: {findings:#?}"
    );

    // The same file inside the allowlist is clean.
    let allowed = analyze_source("crates/obs/src/bad_counter.rs", &src);
    assert!(
        allowed.is_empty(),
        "allowlisted path should be clean: {allowed:#?}"
    );
}

#[test]
fn fixture_unsafe_without_safety_comment_trips() {
    // Scanned at the kernel-module path: confinement permits the unsafe,
    // but the SAFETY-comment discipline still applies inside the kernel.
    let findings = analyze_source(
        "crates/core/src/engine/kernel.rs",
        &fixture("unsafe_no_safety.rs"),
    );
    assert_exactly_one(&findings, "unsafe-needs-safety-comment");
}

#[test]
fn fixture_unsafe_with_safety_comment_is_clean() {
    let findings = analyze_source(
        "crates/core/src/engine/kernel.rs",
        &fixture("unsafe_with_safety.rs"),
    );
    assert!(
        findings.is_empty(),
        "argued unsafe should be clean: {findings:#?}"
    );
}

#[test]
fn fixture_kernel_unsafe_confined_to_kernel_module() {
    let src = fixture("kernel_unsafe.rs");
    // Inside the kernel module the argued unsafe is legal.
    let kernel = analyze_source("crates/core/src/engine/kernel.rs", &src);
    assert!(
        kernel.is_empty(),
        "kernel module may hold argued unsafe: {kernel:#?}"
    );
    // Anywhere else under crates/core/ the same code is confined out.
    let stray = analyze_source("crates/core/src/engine/columns.rs", &src);
    assert_exactly_one(&stray, "kernel-unsafe-confinement");
    // Outside the deterministic core the lint is out of scope.
    let elsewhere = analyze_source("crates/obs/src/span.rs", &src);
    assert!(
        elsewhere.is_empty(),
        "confinement scoped to crates/core/: {elsewhere:#?}"
    );
}

#[test]
fn fixture_server_panic_trips_only_outside_tests() {
    let src = fixture("server_panic.rs");
    let findings = analyze_source("crates/server/src/server.rs", &src);
    assert_exactly_one(&findings, "server-panic-discipline");
    // The finding is the real `.unwrap()`, not the string literal or the
    // `unwrap_or_else`, and not anything in the `#[cfg(test)]` module.
    assert_eq!(findings[0].line, 8, "finding anchored to the wrong line");

    // Outside the request path the same source is clean.
    let elsewhere = analyze_source("crates/core/src/handle.rs", &src);
    assert!(
        elsewhere.is_empty(),
        "panic lint scoped to server request path: {elsewhere:#?}"
    );
}

#[test]
fn fixture_wall_clock_trips_only_in_deterministic_scopes() {
    let src = fixture("wall_clock.rs");
    let findings = analyze_source("crates/core/src/decide.rs", &src);
    assert_exactly_one(&findings, "wall-clock-in-core");

    let sim = analyze_source("crates/sim/src/decide.rs", &src);
    assert_exactly_one(&sim, "wall-clock-in-core");

    let server = analyze_source("crates/server/src/decide.rs", &src);
    assert!(
        server.is_empty(),
        "wall-clock lint scoped to core/sim: {server:#?}"
    );
}

#[test]
fn fixture_clean_file_is_clean_in_every_scope() {
    let src = fixture("clean.rs");
    for path in [
        "crates/core/src/math.rs",
        "crates/sim/src/math.rs",
        "crates/server/src/server.rs",
        "crates/obs/src/math.rs",
    ] {
        let findings = analyze_source(path, &src);
        assert!(findings.is_empty(), "{path} should be clean: {findings:#?}");
    }
}

#[test]
fn fixture_manifest_external_dep_trips() {
    let src = fixture("bad_manifest.toml");
    let findings = analyze_manifest("crates/fixture/Cargo.toml", &src);
    assert_exactly_one(&findings, "external-deps");
    assert!(
        findings[0].message.contains("rand"),
        "finding should name the offending dependency: {findings:#?}"
    );

    // compat crates are exempt — that is where vendored shims live.
    let compat = analyze_manifest("crates/compat/fixture/Cargo.toml", &src);
    assert!(
        compat.is_empty(),
        "compat manifests are exempt: {compat:#?}"
    );
}

/// The gate CI enforces: the workspace at HEAD is clean with no allows.
#[test]
fn workspace_at_head_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = analyze_workspace(&root, &[]).expect("walk workspace");
    assert!(
        analysis.files_scanned > 100,
        "workspace walk looks truncated: {} files",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_scanned > 10,
        "workspace walk missed manifests: {}",
        analysis.manifests_scanned
    );
    assert!(
        analysis.findings.is_empty(),
        "workspace must be ses-analyze clean:\n{}",
        analysis.to_text()
    );
}
