// Fixture: trips nothing anywhere — panics only inside tests, clocks and
// atomics only mentioned in strings/comments ("AtomicU64", Instant::now).
pub fn add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::add;

    #[test]
    fn adds() {
        assert_eq!(add(2, 2).checked_sub(4).unwrap(), 0);
    }
}
