// Fixture: a fully argued unsafe block. Clean inside the kernel module,
// trips `kernel-unsafe-confinement` (exactly once) anywhere else under
// crates/core/.
pub fn first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: the slice is asserted nonempty above, so index 0 is in
    // bounds.
    unsafe { *xs.get_unchecked(0) }
}
