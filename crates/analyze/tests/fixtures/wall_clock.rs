// Fixture: trips `wall-clock-in-core` (exactly once) when scanned under
// a deterministic-layer path.
use std::time::Instant;

pub fn tainted_decision() -> bool {
    let t = Instant::now(); // the one finding
    t.elapsed().as_nanos() % 2 == 0
}
