// Fixture: trips `unsafe-needs-safety-comment` (exactly once).
pub fn peek(p: *const u8) -> u8 {
    // just dereference it
    unsafe { *p }
}
