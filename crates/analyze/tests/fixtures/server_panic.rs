// Fixture: trips `server-panic-discipline` (exactly once) when scanned
// under a server request-path file. The test module is exempt, the
// string literal cannot fake a token, and `unwrap_or_else` is not a
// panic site.
pub fn handle(body: &str) -> String {
    let parsed: Result<String, ()> = Ok(body.to_owned());
    let fallback = "x.unwrap()".to_owned();
    let value = parsed.unwrap(); // the one real finding
    let _ = std::sync::Mutex::new(0).lock().unwrap_or_else(|p| p.into_inner());
    format!("{value}{fallback}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("fine in tests");
        }
    }
}
