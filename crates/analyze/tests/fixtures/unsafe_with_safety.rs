// Fixture: a properly argued unsafe block — trips nothing.
pub fn peek(p: *const u8, len: usize) -> u8 {
    assert!(len > 0);
    // SAFETY: the caller guarantees `p` points to an allocation of at
    // least `len` bytes (asserted nonempty above), so reading the first
    // byte is in bounds and the pointee is plain data.
    unsafe { *p }
}
