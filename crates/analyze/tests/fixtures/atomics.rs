// Fixture: trips `atomics-confinement` (exactly once) when scanned under
// a path outside the audited lock-free modules.
use std::sync::atomic::Ordering;

pub fn sneak_a_counter() -> u64 {
    static C: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    C.fetch_add(1, Ordering::Relaxed)
}
