//! Parameter sweeps for the paper's figures.
//!
//! * Fig. 1a/1b vary `k` with `|T| = 3k/2` (and `|E| = 2k`);
//! * Fig. 1c/1d fix `k = 100` and vary `|T|` from `k/5` to `3k`.

use crate::paper::PaperConfig;
use serde::{Deserialize, Serialize};

/// One cell of a sweep: the configuration plus axis metadata for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Axis label ("k" or "|T|").
    pub axis: String,
    /// Axis value for this cell.
    pub value: f64,
    /// The full configuration of the cell.
    pub config: PaperConfig,
}

/// The `k` sweep of Fig. 1a/1b.
pub fn k_sweep(values: &[usize], seed: u64) -> Vec<SweepCell> {
    values
        .iter()
        .map(|&k| SweepCell {
            axis: "k".to_owned(),
            value: k as f64,
            config: PaperConfig {
                seed,
                ..PaperConfig::with_k(k)
            },
        })
        .collect()
}

/// The `|T|` sweep of Fig. 1c/1d at fixed `k`.
pub fn t_sweep(k: usize, factors: &[f64], seed: u64) -> Vec<SweepCell> {
    factors
        .iter()
        .map(|&f| SweepCell {
            axis: "|T|".to_owned(),
            value: (k as f64 * f).round(),
            config: PaperConfig {
                seed,
                ..PaperConfig::with_k_and_t_factor(k, f)
            },
        })
        .collect()
}

/// The paper's exact sweeps (default seeds).
pub fn paper_sweeps(seed: u64) -> (Vec<SweepCell>, Vec<SweepCell>) {
    (
        k_sweep(PaperConfig::paper_k_values(), seed),
        t_sweep(100, PaperConfig::paper_t_factors(), seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_sets_axis_and_config() {
        let cells = k_sweep(&[100, 200], 7);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].axis, "k");
        assert_eq!(cells[0].value, 100.0);
        assert_eq!(cells[1].config.k, 200);
        assert_eq!(cells[1].config.num_intervals(), 300);
        assert!(cells.iter().all(|c| c.config.seed == 7));
    }

    #[test]
    fn t_sweep_holds_k_fixed() {
        let cells = t_sweep(100, &[0.2, 3.0], 0);
        assert_eq!(cells[0].value, 20.0);
        assert_eq!(cells[1].value, 300.0);
        assert!(cells.iter().all(|c| c.config.k == 100));
    }

    #[test]
    fn paper_sweeps_cover_both_figures() {
        let (ks, ts) = paper_sweeps(0);
        assert_eq!(ks.len(), 5);
        assert_eq!(ts.len(), 6);
        assert_eq!(ks[0].config.k, 100);
        assert_eq!(ts[0].config.num_intervals(), 20);
    }
}
