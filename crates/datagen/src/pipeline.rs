//! EBSN dataset → SES instance pipeline (the paper's preprocessing).
//!
//! Following §IV-A: candidate events are drawn from the dataset's events,
//! user–event interest is the Jaccard similarity of tag sets, competing
//! events are drawn per interval with a uniform count of mean 8.1, events
//! are spread over 25 locations, `ξ ~ U[1, θ/3]`, and `σ` is uniform (or,
//! as an extension, estimated from check-ins).
//!
//! Interest construction uses an inverted tag → members index so that only
//! users sharing at least one tag with an event are ever scored — the
//! Jaccard of everyone else is exactly zero. This is what makes paper-scale
//! populations (42K users) tractable.

use crate::paper::{PaperConfig, SigmaMode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ses_core::interest::InterestBuilder;
use ses_core::{
    CandidateEvent, CompetingEvent, CompetingEventId, EventId, HashedActivity, IntervalId,
    LocationId, Organizer, SesInstance, SlotActivity, TimeInterval, UserId,
};
use ses_ebsn::checkins::{SLOTS_PER_WEEK, TICKS_PER_DAY, TICKS_PER_HOUR};
use ses_ebsn::{estimate_slot_activity, jaccard, EbsnDataset, EbsnEventId, SmoothingConfig};
use std::fmt;
use std::sync::Arc;

/// Errors from instance construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The dataset has fewer events than the configuration needs.
    NotEnoughEvents {
        /// Events required (candidates + at least one competing source).
        needed: usize,
        /// Events available in the dataset.
        available: usize,
    },
    /// The dataset has no members.
    NoMembers,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NotEnoughEvents { needed, available } => write!(
                f,
                "dataset has {available} events but the configuration needs {needed}"
            ),
            BuildError::NoMembers => write!(f, "dataset has no members"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A built instance plus provenance back into the dataset.
#[derive(Debug)]
pub struct BuiltInstance {
    /// The ready-to-schedule instance, behind the shared handle engines,
    /// sessions and services consume.
    pub instance: Arc<SesInstance>,
    /// For each candidate event id `e`, the dataset event it came from.
    pub candidate_source: Vec<EbsnEventId>,
    /// For each competing event id `c`, the dataset event it came from.
    pub competing_source: Vec<EbsnEventId>,
}

/// Daypart start hours for the interval grid (morning/afternoon/evening).
const PART_START_HOURS: [u64; 3] = [9, 13, 19];
/// Interval length: 3 hours.
const INTERVAL_MINUTES: u64 = 3 * TICKS_PER_HOUR;

/// Lays out `n` disjoint candidate intervals as consecutive dayparts
/// (day 0 morning, day 0 afternoon, day 0 evening, day 1 morning, …),
/// returning the intervals and their weekly slot indices.
fn interval_grid(n: usize) -> (Vec<TimeInterval>, Vec<u16>) {
    let mut intervals = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    for i in 0..n {
        let day = (i / 3) as u64;
        let part = i % 3;
        let start = day * TICKS_PER_DAY + PART_START_HOURS[part] * TICKS_PER_HOUR;
        intervals.push(TimeInterval::new(
            IntervalId::new(i as u32),
            start,
            start + INTERVAL_MINUTES,
        ));
        slots.push(((day % 7) as usize * 3 + part) as u16);
    }
    (intervals, slots)
}

/// Builds a SES instance from a dataset under the paper's parameterization.
pub fn build_instance(
    dataset: &EbsnDataset,
    cfg: &PaperConfig,
) -> Result<BuiltInstance, BuildError> {
    if dataset.members.is_empty() {
        return Err(BuildError::NoMembers);
    }
    let num_candidates = cfg.num_events();
    if dataset.events.len() < num_candidates + 1 {
        return Err(BuildError::NotEnoughEvents {
            needed: num_candidates + 1,
            available: dataset.events.len(),
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let num_intervals = cfg.num_intervals();
    let num_users = dataset.members.len();

    // --- candidate events: sampled without replacement ------------------
    let mut pool: Vec<usize> = (0..dataset.events.len()).collect();
    pool.shuffle(&mut rng);
    let candidate_idx: Vec<usize> = pool[..num_candidates].to_vec();
    let competing_pool: Vec<usize> = pool[num_candidates..].to_vec();

    let candidate_source: Vec<EbsnEventId> = candidate_idx
        .iter()
        .map(|&i| dataset.events[i].id)
        .collect();
    let events: Vec<CandidateEvent> = candidate_idx
        .iter()
        .enumerate()
        .map(|(e, &i)| {
            let src = &dataset.events[i];
            CandidateEvent::new(
                EventId::new(e as u32),
                // Spread over the configured number of locations, keeping
                // venue identity deterministic.
                LocationId::new(src.venue.raw() % cfg.num_locations.max(1) as u32),
                rng.gen_range(cfg.xi_min..=cfg.xi_max),
            )
        })
        .collect();

    // --- competing events: per-interval uniform count, mean 8.1 ---------
    // "selected by a uniform distribution having 8.1 as mean value": we draw
    // the count from U[0, 2·mean] and round (support choice documented in
    // DESIGN.md §4).
    let mut competing = Vec::new();
    let mut competing_source = Vec::new();
    for t in 0..num_intervals {
        let count = rng.gen_range(0.0..=2.0 * cfg.competing_mean).round() as usize;
        for _ in 0..count {
            let src = competing_pool[rng.gen_range(0..competing_pool.len())];
            competing_source.push(dataset.events[src].id);
            competing.push(CompetingEvent::new(
                CompetingEventId::new(competing.len() as u32),
                IntervalId::new(t as u32),
            ));
        }
    }

    // --- interest: Jaccard over tags via an inverted tag index ----------
    let vocab_len = dataset.vocabulary.len();
    let mut tag_members: Vec<Vec<u32>> = vec![Vec::new(); vocab_len];
    for m in &dataset.members {
        for tag in m.tags.iter() {
            tag_members[tag.raw() as usize].push(m.id.raw());
        }
    }
    let mut builder = InterestBuilder::new(num_users, num_candidates, competing.len());
    // Epoch-stamped dedup buffer, reused across events (no per-event alloc).
    let mut stamp = vec![0u32; num_users];
    let mut epoch = 0u32;
    let mut touched: Vec<u32> = Vec::new();
    {
        let mut add_event = |src_idx: usize, target: TargetEvent| {
            epoch += 1;
            touched.clear();
            let event = &dataset.events[src_idx];
            for tag in event.tags.iter() {
                if let Some(list) = tag_members.get(tag.raw() as usize) {
                    for &m in list {
                        if stamp[m as usize] != epoch {
                            stamp[m as usize] = epoch;
                            touched.push(m);
                        }
                    }
                }
            }
            for &m in &touched {
                let sim = jaccard(&dataset.members[m as usize].tags, &event.tags);
                if sim > 0.0 {
                    match target {
                        TargetEvent::Candidate(e) => builder
                            .set(UserId::new(m), EventId::new(e), sim)
                            .expect("jaccard is in [0,1]"),
                        TargetEvent::Competing(c) => builder
                            .set(UserId::new(m), CompetingEventId::new(c), sim)
                            .expect("jaccard is in [0,1]"),
                    };
                }
            }
        };
        for (e, &i) in candidate_idx.iter().enumerate() {
            add_event(i, TargetEvent::Candidate(e as u32));
        }
        for (c, src) in competing_source.iter().enumerate() {
            add_event(src.index(), TargetEvent::Competing(c as u32));
        }
    }
    let interest = builder.build_sparse().expect("pipeline interest is valid");

    // --- intervals and σ -------------------------------------------------
    let (intervals, slot_of) = interval_grid(num_intervals);
    let builder = SesInstance::builder()
        .organizer(Organizer::new(cfg.theta))
        .intervals(intervals)
        .events(events)
        .competing(competing)
        .interest(interest);
    let instance = match cfg.sigma {
        SigmaMode::Uniform => builder
            .activity(HashedActivity::standard(
                num_users,
                num_intervals,
                cfg.seed ^ 0x00ac_7171,
            ))
            .build_shared(),
        SigmaMode::FromCheckins => {
            let profile = estimate_slot_activity(dataset, SmoothingConfig::default());
            let activity = SlotActivity::new(SLOTS_PER_WEEK, profile, slot_of)
                .expect("profile shape is consistent by construction");
            builder.activity(activity).build_shared()
        }
    }
    .expect("pipeline instance must validate");

    Ok(BuiltInstance {
        instance,
        candidate_source,
        competing_source,
    })
}

#[derive(Clone, Copy)]
enum TargetEvent {
    Candidate(u32),
    Competing(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::EventRef;
    use ses_ebsn::{generate, GeneratorConfig};

    fn small_cfg() -> PaperConfig {
        PaperConfig {
            k: 20,
            ..PaperConfig::default()
        }
    }

    fn dataset() -> EbsnDataset {
        generate(&GeneratorConfig::default())
    }

    #[test]
    fn builds_with_paper_shapes() {
        let ds = dataset();
        let cfg = small_cfg();
        let built = build_instance(&ds, &cfg).unwrap();
        let inst = &built.instance;
        assert_eq!(inst.num_events(), cfg.num_events());
        assert_eq!(inst.num_intervals(), cfg.num_intervals());
        assert_eq!(inst.num_users(), ds.members.len());
        assert_eq!(built.candidate_source.len(), inst.num_events());
        assert_eq!(built.competing_source.len(), inst.num_competing());
        assert_eq!(inst.budget(), 20.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = dataset();
        let a = build_instance(&ds, &small_cfg()).unwrap();
        let b = build_instance(&ds, &small_cfg()).unwrap();
        assert_eq!(a.candidate_source, b.candidate_source);
        assert_eq!(a.competing_source, b.competing_source);
        let c = build_instance(
            &ds,
            &PaperConfig {
                seed: 9,
                ..small_cfg()
            },
        )
        .unwrap();
        assert_ne!(a.candidate_source, c.candidate_source);
    }

    #[test]
    fn interest_matches_dataset_jaccard() {
        let ds = dataset();
        let built = build_instance(&ds, &small_cfg()).unwrap();
        let inst = &built.instance;
        // Spot-check a handful of (user, candidate) pairs against a direct
        // Jaccard computation.
        for e in 0..5usize {
            let src = &ds.events[built.candidate_source[e].index()];
            for u in (0..ds.members.len()).step_by(37) {
                let expected = jaccard(&ds.members[u].tags, &src.tags);
                let got = inst.interest().interest(
                    UserId::new(u as u32),
                    EventRef::Candidate(EventId::new(e as u32)),
                );
                assert!(
                    (expected - got).abs() < 1e-12,
                    "µ(u{u}, e{e}) = {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn competing_count_mean_is_near_target() {
        let ds = dataset();
        // Large |T| to tighten the mean: k=40 → |T|=60.
        let cfg = PaperConfig {
            k: 40,
            ..PaperConfig::default()
        };
        let built = build_instance(&ds, &cfg).unwrap();
        let per_interval =
            built.instance.num_competing() as f64 / built.instance.num_intervals() as f64;
        assert!(
            (per_interval - cfg.competing_mean).abs() < 2.5,
            "mean competing/interval {per_interval} too far from {}",
            cfg.competing_mean
        );
    }

    #[test]
    fn locations_are_within_configured_range() {
        let ds = dataset();
        let built = build_instance(&ds, &small_cfg()).unwrap();
        for e in built.instance.events() {
            assert!((e.location.raw() as usize) < 25);
            assert!(e.required_resources >= 1.0 && e.required_resources <= 20.0 / 3.0);
        }
    }

    #[test]
    fn intervals_are_disjoint_dayparts() {
        let (grid, slots) = interval_grid(9);
        assert_eq!(grid.len(), 9);
        for w in grid.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        // Slots cycle through 0,1,2 then next day 3,4,5, …
        assert_eq!(&slots[..6], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn checkin_sigma_mode_builds() {
        let ds = dataset();
        let cfg = PaperConfig {
            sigma: SigmaMode::FromCheckins,
            k: 10,
            ..PaperConfig::default()
        };
        let built = build_instance(&ds, &cfg).unwrap();
        // σ must be a probability everywhere we probe.
        for u in (0..ds.members.len()).step_by(41) {
            for t in 0..built.instance.num_intervals() {
                let s = built
                    .instance
                    .sigma(UserId::new(u as u32), IntervalId::new(t as u32));
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn errors_on_undersized_dataset() {
        let ds = generate(&GeneratorConfig {
            num_events: 30,
            ..GeneratorConfig::default()
        });
        let err = build_instance(&ds, &small_cfg()).unwrap_err();
        assert!(matches!(err, BuildError::NotEnoughEvents { .. }));

        let mut empty = dataset();
        empty.members.clear();
        assert_eq!(
            build_instance(&empty, &small_cfg()).unwrap_err(),
            BuildError::NoMembers
        );
    }
}
