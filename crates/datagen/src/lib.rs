//! # ses-datagen — experimental workloads for SES
//!
//! Builds the workloads of the paper's evaluation (§IV):
//!
//! * [`paper`] — the exact parameterization of §IV-A (`k`, `|T| = 3k/2`,
//!   `|E| = 2k`, 25 locations, `θ = 20`, `ξ ~ U[1, 20/3]`, competing events
//!   per interval uniform with mean 8.1, uniform σ);
//! * [`pipeline`] — turns a `ses_ebsn` dataset into a ready-to-schedule
//!   `ses_core::SesInstance` with Jaccard interest over tags;
//! * [`sweep`] — the Fig. 1 sweeps (vary `k`; vary `|T|`);
//! * [`synthetic`] — EBSN-free instance families for stress tests and
//!   ablations (uniform, clustered, TOP-adversarial);
//! * [`streams`] — rival-posting and activity-drift generators feeding the
//!   `ses-sim` workload simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod paper;
pub mod pipeline;
pub mod streams;
pub mod sweep;
pub mod synthetic;

pub use paper::{PaperConfig, SigmaMode};
pub use pipeline::{build_instance, BuildError, BuiltInstance};
pub use streams::{drift_postings, rival_postings, RivalProfile};
pub use sweep::{k_sweep, paper_sweeps, t_sweep, SweepCell};
