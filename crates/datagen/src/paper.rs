//! The ICDE 2018 experimental parameterization (§IV-A).
//!
//! Defaults straight from the paper:
//!
//! * `k` — number of scheduled events: default **100**, maximum **500**;
//! * `|T|` — candidate intervals: varied from `k/5` to `3k`, default `3k/2`;
//! * `|E|` — candidate events: `2k`;
//! * competing events per interval: uniform with mean **8.1** (measured on
//!   the Meetup dumps);
//! * available locations: **25** (derived from the spatio-temporal conflict
//!   percentage, following She et al.);
//! * organizer resources `θ = 20`; required resources `ξ ~ U[1, 20/3]`;
//! * social-activity probability `σ`: uniform.

use serde::{Deserialize, Serialize};

/// How `σ(u,t)` is produced when building instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SigmaMode {
    /// `σ(u,t) ~ U[0,1)`, procedurally hashed (the paper's setting).
    Uniform,
    /// Estimated from the dataset's check-in history per weekly slot
    /// (extension; see `ses_ebsn::activity`).
    FromCheckins,
}

/// Full parameterization of one experimental cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperConfig {
    /// Number of events to schedule.
    pub k: usize,
    /// `|T| = round(k × t_factor)`, clamped to ≥ 1.
    pub t_factor: f64,
    /// `|E| = round(k × e_factor)`.
    pub e_factor: f64,
    /// Number of available locations events are spread over.
    pub num_locations: usize,
    /// Organizer budget θ.
    pub theta: f64,
    /// Required resources drawn from `U[xi_min, xi_max]`.
    pub xi_min: f64,
    /// Upper end of the ξ draw.
    pub xi_max: f64,
    /// Mean of the uniform competing-events-per-interval draw.
    pub competing_mean: f64,
    /// σ production mode.
    pub sigma: SigmaMode,
    /// Seed for every random draw during instance construction.
    pub seed: u64,
}

impl Default for PaperConfig {
    fn default() -> Self {
        Self {
            k: 100,
            t_factor: 1.5,
            e_factor: 2.0,
            num_locations: 25,
            theta: 20.0,
            xi_min: 1.0,
            xi_max: 20.0 / 3.0,
            competing_mean: 8.1,
            sigma: SigmaMode::Uniform,
            seed: 0,
        }
    }
}

impl PaperConfig {
    /// Default configuration at a given `k` (all other knobs at paper
    /// defaults).
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Default configuration at a given `k` and `|T|` factor.
    pub fn with_k_and_t_factor(k: usize, t_factor: f64) -> Self {
        Self {
            k,
            t_factor,
            ..Self::default()
        }
    }

    /// Derived `|T|`.
    pub fn num_intervals(&self) -> usize {
        ((self.k as f64 * self.t_factor).round() as usize).max(1)
    }

    /// Derived `|E|`.
    pub fn num_events(&self) -> usize {
        ((self.k as f64 * self.e_factor).round() as usize).max(self.k)
    }

    /// The paper's `k` sweep (Fig. 1a/1b): 100 … 500.
    pub fn paper_k_values() -> &'static [usize] {
        &[100, 200, 300, 400, 500]
    }

    /// The paper's `|T|` sweep factors (Fig. 1c/1d): `k/5 … 3k`.
    pub fn paper_t_factors() -> &'static [f64] {
        &[0.2, 0.5, 1.0, 1.5, 2.0, 3.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PaperConfig::default();
        assert_eq!(cfg.k, 100);
        assert_eq!(cfg.num_intervals(), 150); // 3k/2
        assert_eq!(cfg.num_events(), 200); // 2k
        assert_eq!(cfg.num_locations, 25);
        assert_eq!(cfg.theta, 20.0);
        assert!((cfg.xi_max - 20.0 / 3.0).abs() < 1e-12);
        assert!((cfg.competing_mean - 8.1).abs() < 1e-12);
        assert_eq!(cfg.sigma, SigmaMode::Uniform);
    }

    #[test]
    fn derived_sizes_track_k() {
        let cfg = PaperConfig::with_k(500);
        assert_eq!(cfg.num_intervals(), 750);
        assert_eq!(cfg.num_events(), 1000);
        let cfg = PaperConfig::with_k_and_t_factor(100, 0.2);
        assert_eq!(cfg.num_intervals(), 20); // k/5
        let cfg = PaperConfig::with_k_and_t_factor(100, 3.0);
        assert_eq!(cfg.num_intervals(), 300); // 3k
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let cfg = PaperConfig::with_k_and_t_factor(1, 0.2);
        assert_eq!(cfg.num_intervals(), 1);
        assert!(cfg.num_events() >= cfg.k);
    }

    #[test]
    fn sweeps_cover_paper_ranges() {
        let ks = PaperConfig::paper_k_values();
        assert_eq!(ks.first(), Some(&100));
        assert_eq!(ks.last(), Some(&500));
        let ts = PaperConfig::paper_t_factors();
        assert!((ts.first().unwrap() - 0.2).abs() < 1e-12);
        assert!((ts.last().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = PaperConfig::with_k(300);
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(serde_json::from_str::<PaperConfig>(&json).unwrap(), cfg);
    }
}
