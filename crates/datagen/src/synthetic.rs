//! Self-contained synthetic instance families.
//!
//! These do not go through the EBSN substrate; they exist to stress
//! particular structural regimes in tests and ablation benches:
//!
//! * [`uniform`] — unstructured sparse interest (the "no signal" regime);
//! * [`clustered`] — users and events partitioned into communities with
//!   strong in-community interest (the realistic EBSN-like regime);
//! * [`top_trap`] — an adversarial family where the TOP baseline piles
//!   events into one popular interval and cannibalizes itself, while GRD
//!   spreads; used to demonstrate the paper's qualitative claim about TOP.
//! * [`sparse_population`] — the million-user regime: each user posts a few
//!   interests and is active in a short window, so the engine's blocked
//!   columns stay `O(nnz)` while the dense-equivalent layout would not fit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::interest::InterestBuilder;
use ses_core::model::uniform_grid;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{
    CandidateEvent, CompetingEvent, CompetingEventId, ConstantActivity, EventId, IntervalId,
    LocationId, Organizer, SesInstance, UserId,
};
use std::sync::Arc;

/// Unstructured sparse instance (delegates to `ses_core::testkit`).
pub fn uniform(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    seed: u64,
) -> Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users,
        num_events,
        num_intervals,
        num_competing: num_intervals * 2,
        num_locations: 25.min(num_events.max(1)),
        theta: 20.0,
        xi_max: 20.0 / 3.0,
        interest_density: 0.15,
        seed,
    })
}

/// Community-structured instance: `clusters` communities, users interested
/// almost exclusively in their community's events (strongly, `µ ∈
/// [0.5, 1.0]`) with light cross-community interest.
pub fn clustered(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    clusters: usize,
    seed: u64,
) -> Arc<SesInstance> {
    assert!(clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let num_competing = num_intervals;
    let mut interest = InterestBuilder::new(num_users, num_events, num_competing);
    for u in 0..num_users {
        let cu = u % clusters;
        for e in 0..num_events {
            let ce = e % clusters;
            let mu = if cu == ce {
                rng.gen_range(0.5..=1.0)
            } else if rng.gen_bool(0.05) {
                rng.gen_range(0.01..0.2)
            } else {
                0.0
            };
            if mu > 0.0 {
                interest
                    .set(UserId::new(u as u32), EventId::new(e as u32), mu)
                    .expect("in range");
            }
        }
        // Mild uniform interest in competing events.
        for c in 0..num_competing {
            if rng.gen_bool(0.2) {
                interest
                    .set(
                        UserId::new(u as u32),
                        CompetingEventId::new(c as u32),
                        rng.gen_range(0.05..0.5),
                    )
                    .expect("in range");
            }
        }
    }
    let events = (0..num_events)
        .map(|e| {
            CandidateEvent::new(
                EventId::new(e as u32),
                LocationId::new((e % 25) as u32),
                rng.gen_range(1.0..=20.0 / 3.0),
            )
        })
        .collect();
    let competing = (0..num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new((c % num_intervals) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(20.0))
        .intervals(uniform_grid(num_intervals, 180))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid"))
        .activity(ses_core::HashedActivity::standard(
            num_users,
            num_intervals,
            seed ^ 0xC1D5_72ED,
        ))
        .build_shared()
        .expect("clustered instance validates")
}

/// Adversarial family for TOP: one interval has no competing events (so
/// every event scores highest there initially), all users share broad
/// interest, and the resource budget allows many events per interval. TOP
/// stacks the popular interval and cannibalizes; GRD spreads out.
pub fn top_trap(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    seed: u64,
) -> Arc<SesInstance> {
    assert!(num_intervals >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // One competing event in every interval except interval 0, with high
    // shared interest — making interval 0 the unique "free lunch".
    let num_competing = num_intervals - 1;
    let mut interest = InterestBuilder::new(num_users, num_events, num_competing);
    for u in 0..num_users {
        for e in 0..num_events {
            interest
                .set(
                    UserId::new(u as u32),
                    EventId::new(e as u32),
                    rng.gen_range(0.4..=1.0),
                )
                .expect("in range");
        }
        for c in 0..num_competing {
            interest
                .set(UserId::new(u as u32), CompetingEventId::new(c as u32), 0.9)
                .expect("in range");
        }
    }
    let events = (0..num_events)
        .map(|e| {
            // Distinct locations and tiny ξ: the only thing stopping TOP
            // from stacking interval 0 is… nothing.
            CandidateEvent::new(EventId::new(e as u32), LocationId::new(e as u32), 0.1)
        })
        .collect();
    let competing = (0..num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new((c + 1) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(20.0))
        .intervals(uniform_grid(num_intervals, 180))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid"))
        .activity(ConstantActivity::new(num_users, num_intervals, 1.0).expect("valid"))
        .build_shared()
        .expect("top_trap instance validates")
}

/// Million-user family: `num_users` users each post `interests_per_user`
/// distinct interests and are active (σ > 0) in a contiguous window of
/// `active_per_user` intervals ([`ses_core::MaskedActivity`]), so both the
/// interest matrix and the engine's per-interval columns are genuinely
/// sparse. Construction is `O(U · interests_per_user)` — no per-`(u, e)` or
/// per-`(u, t)` dense pass anywhere, which is what lets `U = 1_000_000`
/// instances build inside the bench harness.
///
/// One competing event per interval (round-robin) keeps the denominators
/// non-trivial; each user backs exactly one of them, so competing postings
/// stay `O(U)` too.
pub fn sparse_population(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    interests_per_user: usize,
    active_per_user: usize,
    seed: u64,
) -> Arc<SesInstance> {
    assert!(num_events > 0 && num_intervals > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let num_competing = num_intervals;
    let picks = interests_per_user.min(num_events);
    let mut interest = InterestBuilder::new(num_users, num_events, num_competing);
    let mut chosen: Vec<u32> = Vec::with_capacity(picks);
    for u in 0..num_users {
        // Distinct event picks per user (the builder rejects duplicates);
        // `picks ≪ num_events` so rejection sampling terminates fast.
        chosen.clear();
        while chosen.len() < picks {
            let e = rng.gen_range(0..num_events) as u32;
            if !chosen.contains(&e) {
                chosen.push(e);
            }
        }
        for &e in &chosen {
            interest
                .set(
                    UserId::new(u as u32),
                    EventId::new(e),
                    rng.gen_range(0.05..=1.0),
                )
                .expect("in range");
        }
        interest
            .set(
                UserId::new(u as u32),
                CompetingEventId::new((u % num_competing) as u32),
                rng.gen_range(0.1..=0.8),
            )
            .expect("in range");
    }
    let events = (0..num_events)
        .map(|e| {
            CandidateEvent::new(
                EventId::new(e as u32),
                LocationId::new((e % 25) as u32),
                rng.gen_range(1.0..=4.0),
            )
        })
        .collect();
    let competing = (0..num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new((c % num_intervals) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(20.0))
        .intervals(uniform_grid(num_intervals, 180))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid"))
        .activity(ses_core::MaskedActivity::sparse(
            num_users,
            num_intervals,
            active_per_user,
            seed ^ 0x5EA5_01ED,
        ))
        .build_shared()
        .expect("sparse_population instance validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::{GreedyScheduler, Scheduler, TopScheduler};

    #[test]
    fn uniform_builds_and_is_deterministic() {
        let a = uniform(20, 10, 5, 3);
        let b = uniform(20, 10, 5, 3);
        assert_eq!(a.num_events(), 10);
        assert_eq!(
            a.mu(UserId::new(0), EventId::new(0)),
            b.mu(UserId::new(0), EventId::new(0))
        );
    }

    #[test]
    fn clustered_has_community_structure() {
        let inst = clustered(30, 12, 6, 3, 1);
        // In-cluster interest must dominate cross-cluster on average.
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0, 0.0, 0);
        for u in 0..30u32 {
            for e in 0..12u32 {
                let mu = inst.mu(UserId::new(u), EventId::new(e));
                if u % 3 == e % 3 {
                    in_sum += mu;
                    in_n += 1;
                } else {
                    out_sum += mu;
                    out_n += 1;
                }
            }
        }
        assert!(in_sum / in_n as f64 > 3.0 * (out_sum / out_n as f64));
    }

    #[test]
    fn sparse_population_builds_sub_dense_columns() {
        let inst = sparse_population(500, 20, 12, 3, 4, 7);
        assert_eq!(inst.num_users(), 500);
        // Deterministic per seed.
        let again = sparse_population(500, 20, 12, 3, 4, 7);
        assert_eq!(
            inst.mu(UserId::new(3), EventId::new(5)),
            again.mu(UserId::new(3), EventId::new(5))
        );
        // The engine's columns must hold only the windowed slots:
        // ≈ U · active_per_user / |T| per interval, far below U.
        let engine = ses_core::AttendanceEngine::new(&inst);
        let m = engine.memory_stats();
        assert!(
            m.column_slots * 2 < m.dense_slots,
            "columns {} not sub-dense ({})",
            m.column_slots,
            m.dense_slots
        );
        // And the blocked engine still agrees with the oracle end to end.
        let grd = GreedyScheduler::new().run(&inst, 6).unwrap();
        let eval = ses_core::evaluate_schedule(&inst, &grd.schedule);
        assert!((eval.total_utility - grd.total_utility).abs() < 1e-9);
        assert!(grd.stats.memory.column_slots > 0);
    }

    #[test]
    fn top_trap_punishes_top() {
        let inst = top_trap(25, 12, 4, 0);
        let k = 8;
        let grd = GreedyScheduler::new().run(&inst, k).unwrap();
        let top = TopScheduler::new().run(&inst, k).unwrap();
        assert!(
            grd.total_utility > top.total_utility,
            "GRD {} must beat TOP {} on the trap",
            grd.total_utility,
            top.total_utility
        );
        // TOP stacks the free interval far more than GRD does.
        let top_stack = top.schedule.events_at(IntervalId::new(0)).len();
        let grd_stack = grd.schedule.events_at(IntervalId::new(0)).len();
        assert!(
            top_stack >= grd_stack,
            "TOP stacked {top_stack} < GRD {grd_stack}"
        );
    }
}
