//! Self-contained synthetic instance families.
//!
//! These do not go through the EBSN substrate; they exist to stress
//! particular structural regimes in tests and ablation benches:
//!
//! * [`uniform`] — unstructured sparse interest (the "no signal" regime);
//! * [`clustered`] — users and events partitioned into communities with
//!   strong in-community interest (the realistic EBSN-like regime);
//! * [`top_trap`] — an adversarial family where the TOP baseline piles
//!   events into one popular interval and cannibalizes itself, while GRD
//!   spreads; used to demonstrate the paper's qualitative claim about TOP.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::interest::InterestBuilder;
use ses_core::model::uniform_grid;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{
    CandidateEvent, CompetingEvent, CompetingEventId, ConstantActivity, EventId, IntervalId,
    LocationId, Organizer, SesInstance, UserId,
};
use std::sync::Arc;

/// Unstructured sparse instance (delegates to `ses_core::testkit`).
pub fn uniform(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    seed: u64,
) -> Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users,
        num_events,
        num_intervals,
        num_competing: num_intervals * 2,
        num_locations: 25.min(num_events.max(1)),
        theta: 20.0,
        xi_max: 20.0 / 3.0,
        interest_density: 0.15,
        seed,
    })
}

/// Community-structured instance: `clusters` communities, users interested
/// almost exclusively in their community's events (strongly, `µ ∈
/// [0.5, 1.0]`) with light cross-community interest.
pub fn clustered(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    clusters: usize,
    seed: u64,
) -> Arc<SesInstance> {
    assert!(clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let num_competing = num_intervals;
    let mut interest = InterestBuilder::new(num_users, num_events, num_competing);
    for u in 0..num_users {
        let cu = u % clusters;
        for e in 0..num_events {
            let ce = e % clusters;
            let mu = if cu == ce {
                rng.gen_range(0.5..=1.0)
            } else if rng.gen_bool(0.05) {
                rng.gen_range(0.01..0.2)
            } else {
                0.0
            };
            if mu > 0.0 {
                interest
                    .set(UserId::new(u as u32), EventId::new(e as u32), mu)
                    .expect("in range");
            }
        }
        // Mild uniform interest in competing events.
        for c in 0..num_competing {
            if rng.gen_bool(0.2) {
                interest
                    .set(
                        UserId::new(u as u32),
                        CompetingEventId::new(c as u32),
                        rng.gen_range(0.05..0.5),
                    )
                    .expect("in range");
            }
        }
    }
    let events = (0..num_events)
        .map(|e| {
            CandidateEvent::new(
                EventId::new(e as u32),
                LocationId::new((e % 25) as u32),
                rng.gen_range(1.0..=20.0 / 3.0),
            )
        })
        .collect();
    let competing = (0..num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new((c % num_intervals) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(20.0))
        .intervals(uniform_grid(num_intervals, 180))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid"))
        .activity(ses_core::HashedActivity::standard(
            num_users,
            num_intervals,
            seed ^ 0xC1D5_72ED,
        ))
        .build_shared()
        .expect("clustered instance validates")
}

/// Adversarial family for TOP: one interval has no competing events (so
/// every event scores highest there initially), all users share broad
/// interest, and the resource budget allows many events per interval. TOP
/// stacks the popular interval and cannibalizes; GRD spreads out.
pub fn top_trap(
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    seed: u64,
) -> Arc<SesInstance> {
    assert!(num_intervals >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // One competing event in every interval except interval 0, with high
    // shared interest — making interval 0 the unique "free lunch".
    let num_competing = num_intervals - 1;
    let mut interest = InterestBuilder::new(num_users, num_events, num_competing);
    for u in 0..num_users {
        for e in 0..num_events {
            interest
                .set(
                    UserId::new(u as u32),
                    EventId::new(e as u32),
                    rng.gen_range(0.4..=1.0),
                )
                .expect("in range");
        }
        for c in 0..num_competing {
            interest
                .set(UserId::new(u as u32), CompetingEventId::new(c as u32), 0.9)
                .expect("in range");
        }
    }
    let events = (0..num_events)
        .map(|e| {
            // Distinct locations and tiny ξ: the only thing stopping TOP
            // from stacking interval 0 is… nothing.
            CandidateEvent::new(EventId::new(e as u32), LocationId::new(e as u32), 0.1)
        })
        .collect();
    let competing = (0..num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new((c + 1) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(20.0))
        .intervals(uniform_grid(num_intervals, 180))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid"))
        .activity(ConstantActivity::new(num_users, num_intervals, 1.0).expect("valid"))
        .build_shared()
        .expect("top_trap instance validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::{GreedyScheduler, Scheduler, TopScheduler};

    #[test]
    fn uniform_builds_and_is_deterministic() {
        let a = uniform(20, 10, 5, 3);
        let b = uniform(20, 10, 5, 3);
        assert_eq!(a.num_events(), 10);
        assert_eq!(
            a.mu(UserId::new(0), EventId::new(0)),
            b.mu(UserId::new(0), EventId::new(0))
        );
    }

    #[test]
    fn clustered_has_community_structure() {
        let inst = clustered(30, 12, 6, 3, 1);
        // In-cluster interest must dominate cross-cluster on average.
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0, 0.0, 0);
        for u in 0..30u32 {
            for e in 0..12u32 {
                let mu = inst.mu(UserId::new(u), EventId::new(e));
                if u % 3 == e % 3 {
                    in_sum += mu;
                    in_n += 1;
                } else {
                    out_sum += mu;
                    out_n += 1;
                }
            }
        }
        assert!(in_sum / in_n as f64 > 3.0 * (out_sum / out_n as f64));
    }

    #[test]
    fn top_trap_punishes_top() {
        let inst = top_trap(25, 12, 4, 0);
        let k = 8;
        let grd = GreedyScheduler::new().run(&inst, k).unwrap();
        let top = TopScheduler::new().run(&inst, k).unwrap();
        assert!(
            grd.total_utility > top.total_utility,
            "GRD {} must beat TOP {} on the trap",
            grd.total_utility,
            top.total_utility
        );
        // TOP stacks the free interval far more than GRD does.
        let top_stack = top.schedule.events_at(IntervalId::new(0)).len();
        let grd_stack = grd.schedule.events_at(IntervalId::new(0)).len();
        assert!(
            top_stack >= grd_stack,
            "TOP stacked {top_stack} < GRD {grd_stack}"
        );
    }
}
