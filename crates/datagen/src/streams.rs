//! Disruption-stream primitives for the workload simulator (`ses-sim`).
//!
//! The simulator's scenarios need a steady supply of *rival posting lists* —
//! the `(user, µ)` rows a third-party event announcement carries into
//! [`ses_core::OnlineSession::announce_competing`]. This module generates
//! them with controlled reach (what fraction of the population notices the
//! rival) and strength (how interesting it is to those who do), plus a
//! low-intensity variant modelling *user-activity drift*: a diffuse rise in
//! outside options that bleeds attendance from an interval without any
//! single headline rival — the same Luce-denominator mechanics, different
//! story.

use rand::rngs::StdRng;
use rand::Rng;
use ses_core::UserId;

/// Shape of a rival event's posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RivalProfile {
    /// Probability that any given user appears on the posting list.
    pub reach: f64,
    /// Lower bound of the per-user interest `µ(u, c)`.
    pub strength_lo: f64,
    /// Upper bound of the per-user interest `µ(u, c)`.
    pub strength_hi: f64,
}

impl RivalProfile {
    /// A small competitor: noticed by few, mildly interesting.
    pub fn mild() -> Self {
        Self {
            reach: 0.15,
            strength_lo: 0.1,
            strength_hi: 0.4,
        }
    }

    /// A serious competitor: noticed by many, clearly interesting.
    pub fn strong() -> Self {
        Self {
            reach: 0.6,
            strength_lo: 0.5,
            strength_hi: 0.9,
        }
    }

    /// A headline act: everyone notices, almost everyone cares.
    pub fn blanket() -> Self {
        Self {
            reach: 1.0,
            strength_lo: 0.8,
            strength_hi: 1.0,
        }
    }

    /// Linear interpolation `mild → blanket` by `intensity ∈ [0, 1]`,
    /// used by seasonal scenarios to swell and fade competition.
    pub fn seasonal(intensity: f64) -> Self {
        let t = intensity.clamp(0.0, 1.0);
        let mild = Self::mild();
        let blanket = Self::blanket();
        Self {
            reach: mild.reach + t * (blanket.reach - mild.reach),
            strength_lo: mild.strength_lo + t * (blanket.strength_lo - mild.strength_lo),
            strength_hi: mild.strength_hi + t * (blanket.strength_hi - mild.strength_hi),
        }
    }
}

/// Draws one rival posting list over a population of `num_users`: each user
/// independently appears with probability `profile.reach`, carrying an
/// interest drawn uniformly from `[strength_lo, strength_hi]`.
///
/// Deterministic in the RNG state; rows come out in user order (the engine
/// does not care, but stable order keeps simulation traces reproducible).
pub fn rival_postings(
    rng: &mut StdRng,
    num_users: usize,
    profile: &RivalProfile,
) -> Vec<(UserId, f64)> {
    let mut postings = Vec::new();
    for u in 0..num_users {
        if rng.gen_bool(profile.reach.clamp(0.0, 1.0)) {
            let mu = rng
                .gen_range(profile.strength_lo..=profile.strength_hi)
                .clamp(0.0, 1.0);
            postings.push((UserId::new(u as u32), mu));
        }
    }
    postings
}

/// Draws an activity-drift mass: a `fraction` of users each gain a small
/// outside option of interest up to `intensity` (≤ 0.25 by construction).
/// Injected as competing mass, this models the population drifting towards
/// other plans — many weak pulls rather than one strong rival.
pub fn drift_postings(
    rng: &mut StdRng,
    num_users: usize,
    fraction: f64,
    intensity: f64,
) -> Vec<(UserId, f64)> {
    let cap = intensity.clamp(0.0, 0.25);
    rival_postings(
        rng,
        num_users,
        &RivalProfile {
            reach: fraction,
            strength_lo: 0.01,
            strength_hi: cap.max(0.01),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn postings_respect_profile_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = RivalProfile::strong();
        let rows = rival_postings(&mut rng, 1000, &p);
        assert!(!rows.is_empty());
        let frac = rows.len() as f64 / 1000.0;
        assert!((frac - p.reach).abs() < 0.1, "reach off: {frac}");
        for &(u, mu) in &rows {
            assert!(u.index() < 1000);
            assert!((p.strength_lo..=p.strength_hi).contains(&mu));
        }
    }

    #[test]
    fn blanket_reaches_everyone() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows = rival_postings(&mut rng, 500, &RivalProfile::blanket());
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn deterministic_in_seed() {
        let p = RivalProfile::mild();
        let a = rival_postings(&mut StdRng::seed_from_u64(9), 300, &p);
        let b = rival_postings(&mut StdRng::seed_from_u64(9), 300, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn drift_is_weak_by_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = drift_postings(&mut rng, 400, 0.5, 0.9);
        for &(_, mu) in &rows {
            assert!(mu <= 0.25, "drift must stay weak, got {mu}");
        }
    }

    #[test]
    fn seasonal_interpolates_between_profiles() {
        let low = RivalProfile::seasonal(0.0);
        let high = RivalProfile::seasonal(1.0);
        assert_eq!(low, RivalProfile::mild());
        assert_eq!(high, RivalProfile::blanket());
        let mid = RivalProfile::seasonal(0.5);
        assert!(mid.reach > low.reach && mid.reach < high.reach);
    }
}
