//! Property tests of the EBSN → SES pipeline: every paper configuration
//! buildable from the dataset must yield a valid instance with the paper's
//! derived shapes, on which the schedulers behave lawfully.

use proptest::prelude::*;
use ses_core::{GreedyScheduler, Scheduler};
use ses_datagen::paper::{PaperConfig, SigmaMode};
use ses_datagen::pipeline::build_instance;
use ses_ebsn::{generate, EbsnDataset, GeneratorConfig};
use std::sync::OnceLock;

/// One moderately sized dataset shared by all cases (generation dominates
/// the test cost otherwise).
fn dataset() -> &'static EbsnDataset {
    static DS: OnceLock<EbsnDataset> = OnceLock::new();
    DS.get_or_init(|| {
        generate(&GeneratorConfig {
            num_members: 250,
            num_events: 260,
            ..GeneratorConfig::default()
        })
    })
}

fn config_strategy() -> impl Strategy<Value = PaperConfig> {
    (
        2usize..40,      // k  (|E| = 2k ≤ 80 ≪ 260 dataset events)
        0.2f64..3.0,     // t_factor
        0.0f64..12.0,    // competing mean
        any::<u64>(),    // seed
        prop::bool::ANY, // sigma mode
    )
        .prop_map(
            |(k, t_factor, competing_mean, seed, checkins)| PaperConfig {
                k,
                t_factor,
                competing_mean,
                seed,
                sigma: if checkins {
                    SigmaMode::FromCheckins
                } else {
                    SigmaMode::Uniform
                },
                ..PaperConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn built_instances_have_paper_shapes(cfg in config_strategy()) {
        let built = build_instance(dataset(), &cfg).unwrap();
        let inst = &built.instance;
        prop_assert_eq!(inst.num_events(), cfg.num_events());
        prop_assert_eq!(inst.num_intervals(), cfg.num_intervals());
        prop_assert_eq!(inst.num_users(), dataset().members.len());
        prop_assert_eq!(inst.budget(), cfg.theta);
        // ξ within the paper's draw.
        for e in inst.events() {
            prop_assert!(e.required_resources >= cfg.xi_min - 1e-12);
            prop_assert!(e.required_resources <= cfg.xi_max + 1e-12);
            prop_assert!((e.location.raw() as usize) < cfg.num_locations);
        }
        // Candidate provenance is injective (sampling without replacement).
        let mut sources = built.candidate_source.clone();
        sources.sort_unstable();
        sources.dedup();
        prop_assert_eq!(sources.len(), built.candidate_source.len());
    }

    #[test]
    fn greedy_runs_lawfully_on_every_cell(cfg in config_strategy()) {
        let built = build_instance(dataset(), &cfg).unwrap();
        let out = GreedyScheduler::new().run(&built.instance, cfg.k).unwrap();
        prop_assert!(out.len() <= cfg.k);
        prop_assert!(built.instance.check_schedule(&out.schedule).is_ok());
        prop_assert!(out.total_utility >= 0.0);
        // Utility can never exceed Σ_{u,t} σ(u,t) trivially; use the coarse
        // bound |U| · |T| as an absolute sanity ceiling.
        prop_assert!(
            out.total_utility
                <= (built.instance.num_users() * built.instance.num_intervals()) as f64
        );
    }

    #[test]
    fn builds_are_deterministic_per_seed(cfg in config_strategy()) {
        let a = build_instance(dataset(), &cfg).unwrap();
        let b = build_instance(dataset(), &cfg).unwrap();
        prop_assert_eq!(a.candidate_source, b.candidate_source);
        prop_assert_eq!(a.competing_source, b.competing_source);
        let out_a = GreedyScheduler::new().run(&a.instance, cfg.k).unwrap();
        let out_b = GreedyScheduler::new().run(&b.instance, cfg.k).unwrap();
        prop_assert_eq!(out_a.schedule, out_b.schedule);
    }
}
