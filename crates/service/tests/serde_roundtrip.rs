//! Serde round-trip property tests for the service wire types: whatever a
//! front end serializes — requests, session events, repair reports — must
//! deserialize back to an equal value, across the whole generated space.

use proptest::prelude::*;
use ses_core::{Assignment, EventId, IntervalId, RepairReport, SchedulerSpec, UserId};
use ses_service::{
    Announcement, Arrival, Availability, Cancellation, CapacityChange, InstanceName, SessionEvent,
    SessionOpen, SolveRequest,
};

fn roundtrip_json<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

/// Requests recorded before the `threads` field existed must still
/// deserialize (the field is `#[serde(default)]`, landing on 0 = serial).
#[test]
fn pre_threads_request_json_still_deserializes() {
    let req: SolveRequest =
        serde_json::from_str(r#"{"spec":"Greedy","k":6}"#).expect("legacy SolveRequest parses");
    assert_eq!(req.k, 6);
    assert_eq!(req.threads, 0, "missing threads defaults to serial");
    let open: SessionOpen = serde_json::from_str(r#"{"name":"main","spec":"Top","k":3}"#)
        .expect("legacy SessionOpen parses");
    assert_eq!(open.name, "main");
    assert_eq!(open.threads, 0);
    // Likewise reports recorded before the `clock` field existed.
    let report: ses_service::SessionReport = serde_json::from_str(
        r#"{"name":"main","utility":1.5,"scheduled":2,"budget":8.0,"events_applied":3,
            "counters":{"score_evaluations":1,"posting_visits":2,"assigns":3,"unassigns":4}}"#,
    )
    .expect("legacy SessionReport parses");
    assert_eq!(report.clock, 0, "missing clock defaults to 0");
    assert_eq!(report.instance.as_str(), "default");
}

/// Requests recorded before the `instance` field existed must land on the
/// `"default"` tenant — not on an empty string — and explicit instance
/// names must survive a JSON round-trip.
#[test]
fn pre_instance_request_json_lands_on_default_tenant() {
    let req: SolveRequest = serde_json::from_str(r#"{"spec":"Greedy","k":6,"threads":2}"#)
        .expect("pre-instance SolveRequest parses");
    assert_eq!(req.instance, InstanceName::default());
    assert_eq!(req.instance.as_str(), "default");

    let open: SessionOpen =
        serde_json::from_str(r#"{"name":"main","spec":"Top","k":3,"threads":1}"#)
            .expect("pre-instance SessionOpen parses");
    assert_eq!(open.instance.as_str(), "default");

    let eval: ses_service::EvalRequest =
        serde_json::from_str(r#"{"assignments":[]}"#).expect("pre-instance EvalRequest parses");
    assert_eq!(eval.instance.as_str(), "default");

    // An explicit name is a plain JSON string on the wire.
    let req: SolveRequest =
        serde_json::from_str(r#"{"spec":"Greedy","k":2,"threads":0,"instance":"tenant-b"}"#)
            .expect("explicit instance parses");
    assert_eq!(req.instance.as_str(), "tenant-b");
    let json = serde_json::to_string(&req).expect("serializes");
    assert!(json.contains(r#""instance":"tenant-b""#), "{json}");
    // A non-string instance is a typed parse error, not a panic.
    assert!(
        serde_json::from_str::<SolveRequest>(r#"{"spec":"Greedy","k":2,"instance":7}"#).is_err()
    );
}

/// A spec entered through the CELF lazy-greedy alias family must behave
/// exactly like the canonical `GRD-PQ` spelling on the wire: same serde
/// form, same `Display → parse` round-trip, same serde round-trip.
#[test]
fn lazy_alias_specs_round_trip_like_grd_pq() {
    for alias in ["LAZY", "CELF", "GRD-PQ-LAZY", "lazy"] {
        let spec: SchedulerSpec = alias.parse().expect("lazy alias parses");
        assert_eq!(spec, SchedulerSpec::GreedyHeap, "alias {alias}");
        assert_eq!(spec.to_string(), "GRD-PQ");
        assert_eq!(spec.to_string().parse::<SchedulerSpec>(), Ok(spec));
        assert_eq!(roundtrip_json(&spec), spec, "alias {alias}");
        let req = SolveRequest {
            spec,
            k: 7,
            threads: 2,
            instance: InstanceName::default(),
        };
        assert_eq!(roundtrip_json(&req), req, "alias {alias}");
    }
}

fn spec_strategy() -> impl Strategy<Value = SchedulerSpec> {
    (0usize..7, any::<u64>()).prop_map(|(i, seed)| match i {
        0 => SchedulerSpec::Greedy,
        1 => SchedulerSpec::GreedyHeap,
        2 => SchedulerSpec::Top,
        3 => SchedulerSpec::Random(seed),
        4 => SchedulerSpec::GreedyLocalSearch,
        5 => SchedulerSpec::GreedyAnnealing,
        _ => SchedulerSpec::Exact,
    })
}

fn postings_strategy() -> impl Strategy<Value = Vec<(UserId, f64)>> {
    prop::collection::vec((0u32..10_000, 0.0f64..1.0), 0..40)
        .prop_map(|v| v.into_iter().map(|(u, mu)| (UserId::new(u), mu)).collect())
}

fn event_strategy() -> impl Strategy<Value = SessionEvent> {
    (
        0usize..6,
        0u32..50_000,
        0u32..5_000,
        postings_strategy(),
        0.0f64..1e6,
        prop::bool::ANY,
    )
        .prop_map(
            |(i, event, interval, postings, budget, available)| match i {
                0 => SessionEvent::Announce(Announcement {
                    interval: IntervalId::new(interval),
                    postings,
                }),
                1 => SessionEvent::Cancel(Cancellation {
                    event: EventId::new(event),
                }),
                2 => SessionEvent::Arrive(Arrival {
                    event: EventId::new(event),
                }),
                3 => SessionEvent::Capacity(CapacityChange { budget }),
                4 => SessionEvent::SetAvailable(Availability {
                    event: EventId::new(event),
                    available,
                }),
                _ => SessionEvent::Extend,
            },
        )
}

fn repair_report_strategy() -> impl Strategy<Value = RepairReport> {
    (
        0.0f64..1e4,
        0.0f64..1e4,
        0.0f64..1e4,
        prop::collection::vec((0u32..50_000, 0u32..5_000), 0..20),
    )
        .prop_map(
            |(utility_before, utility_disrupted, utility_after, moves)| RepairReport {
                utility_before,
                utility_disrupted,
                utility_after,
                moves: moves
                    .into_iter()
                    .map(|(e, t)| (EventId::new(e), IntervalId::new(t)))
                    .collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_request_round_trips(spec in spec_strategy(), k in 0usize..100_000) {
        let req = SolveRequest {
            spec,
            k,
            threads: k % 5,
            instance: InstanceName::new(format!("inst-{}", k % 7)),
        };
        prop_assert_eq!(roundtrip_json(&req), req);
    }

    #[test]
    fn session_open_round_trips(spec in spec_strategy(), k in 0usize..10_000) {
        let open = SessionOpen {
            name: format!("tenant-{k}"),
            spec,
            k,
            threads: k % 3,
            instance: InstanceName::new(format!("inst-{}", k % 4)),
        };
        prop_assert_eq!(roundtrip_json(&open), open);
    }

    #[test]
    fn session_event_round_trips(event in event_strategy()) {
        prop_assert_eq!(roundtrip_json(&event), event);
    }

    #[test]
    fn repair_report_round_trips(report in repair_report_strategy()) {
        // Floats must survive exactly (shortest-round-trip formatting), not
        // just approximately — bit-for-bit equality.
        let back = roundtrip_json(&report);
        prop_assert_eq!(back.utility_before.to_bits(), report.utility_before.to_bits());
        prop_assert_eq!(back.utility_disrupted.to_bits(), report.utility_disrupted.to_bits());
        prop_assert_eq!(back.utility_after.to_bits(), report.utility_after.to_bits());
        prop_assert_eq!(back.moves, report.moves);
    }

    #[test]
    fn session_report_round_trips_with_counters_and_clock(
        utility in 0.0f64..1e6,
        scheduled in 0usize..10_000,
        budget in 0.0f64..1e6,
        events_applied in 0u64..1_000_000,
        clock in 0u64..1_000_000,
        ops in prop::collection::vec(0u64..u64::MAX / 4, 4..5),
    ) {
        let report = ses_service::SessionReport {
            name: format!("tenant-{scheduled}"),
            utility,
            scheduled,
            budget,
            events_applied,
            counters: ses_core::EngineCounters {
                score_evaluations: ops[0],
                posting_visits: ops[1],
                assigns: ops[2],
                unassigns: ops[3],
            },
            clock,
            memory: ses_core::EngineMemoryStats {
                column_slots: ops[0] / 2,
                dense_slots: ops[0],
                resident_column_bytes: ops[1],
                run_bytes: ops[2],
                build_millis: utility / 3.0,
            },
            instance: InstanceName::new(format!("inst-{}", events_applied % 3)),
            durable: events_applied % 2 == 0,
        };
        let back = roundtrip_json(&report);
        prop_assert_eq!(back.utility.to_bits(), report.utility.to_bits());
        prop_assert_eq!(back.budget.to_bits(), report.budget.to_bits());
        prop_assert_eq!(&back.counters, &report.counters);
        prop_assert_eq!(back.clock, report.clock);
        prop_assert_eq!(back.memory.build_millis.to_bits(), report.memory.build_millis.to_bits());
        prop_assert_eq!(back, report);
    }

    #[test]
    fn event_report_round_trips_through_assignments(
        pairs in prop::collection::vec((0u32..1_000, 0u32..100), 0..30)
    ) {
        let assignments: Vec<Assignment> = pairs
            .into_iter()
            .map(|(e, t)| Assignment::new(EventId::new(e), IntervalId::new(t)))
            .collect();
        let req = ses_service::EvalRequest {
            assignments,
            instance: InstanceName::default(),
        };
        prop_assert_eq!(roundtrip_json(&req), req);
    }
}
