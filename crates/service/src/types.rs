//! The service wire vocabulary: serde-serializable request and response
//! types shared by every front end (CLI, simulator, future servers).
//!
//! Everything here is plain data — typed ids from `ses-core`, numbers and
//! vectors — so requests can arrive as JSON, be logged, replayed, and
//! round-tripped losslessly (see the crate's serde property tests).

use serde::{Deserialize, Serialize};
use ses_core::{
    Assignment, EngineCounters, EngineMemoryStats, EventId, IntervalId, RepairReport,
    ScheduleOutcome, SchedulerSpec, UserId,
};
use std::fmt;

/// The name of a registered instance a request targets.
///
/// On the wire this is a plain JSON string, and it defaults to
/// `"default"` when the field is absent — so every pre-instance request
/// body (and every recorded replay stream) parses unchanged. The
/// `Serialize`/`Deserialize` impls are written by hand because the shim's
/// `#[serde(default)]` resolves through `Default`, which this newtype
/// points at the `"default"` instance rather than the empty string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceName(String);

impl InstanceName {
    /// Wraps an instance name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for InstanceName {
    /// The implicit tenant every legacy request targets.
    fn default() -> Self {
        Self("default".to_owned())
    }
}

impl fmt::Display for InstanceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for InstanceName {
    fn from(name: &str) -> Self {
        Self(name.to_owned())
    }
}

impl From<String> for InstanceName {
    fn from(name: String) -> Self {
        Self(name)
    }
}

impl Serialize for InstanceName {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.0.clone())
    }
}

impl Deserialize for InstanceName {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => Ok(Self(s.clone())),
            _ => Err(serde::Error::custom("instance name must be a string")),
        }
    }
}

/// A request to solve an instance offline: which algorithm, how many events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The algorithm to run (see [`ses_core::registry`]).
    pub spec: SchedulerSpec,
    /// Number of events to schedule.
    pub k: usize,
    /// Scoring threads for the greedy-family sweeps (`0`/`1` = serial;
    /// parallel runs pick identical schedules — see
    /// [`ses_core::registry::build_threaded`]). Defaults to `0` when absent
    /// from the wire, so pre-`threads` request JSON still deserializes.
    #[serde(default)]
    pub threads: usize,
    /// The registered instance to solve over. Defaults to `"default"` when
    /// absent from the wire (pre-instance JSON compatibility).
    #[serde(default)]
    pub instance: InstanceName,
}

/// The result of a solve: the schedule plus quality and cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveResponse {
    /// Display name of the algorithm that ran (e.g. `"GRD+LS"`).
    pub algorithm: String,
    /// Total utility Ω of the produced schedule (Eq. 3).
    pub total_utility: f64,
    /// Whether all `k` requested assignments were placed.
    pub complete: bool,
    /// Wall-clock milliseconds of the run.
    pub millis: f64,
    /// Engine operation counters (hardware-independent cost).
    pub counters: EngineCounters,
    /// The assignments, in event order.
    pub assignments: Vec<Assignment>,
}

impl SolveResponse {
    /// Builds a response from a scheduler outcome, stamping the spec's
    /// display name.
    pub fn from_outcome(spec: SchedulerSpec, outcome: &ScheduleOutcome) -> Self {
        Self {
            algorithm: spec.name().to_owned(),
            total_utility: outcome.total_utility,
            complete: outcome.complete,
            millis: outcome.stats.elapsed.as_secs_f64() * 1e3,
            counters: outcome.stats.engine,
            assignments: outcome.schedule.iter().collect(),
        }
    }

    /// Number of assignments placed.
    pub fn scheduled(&self) -> usize {
        self.assignments.len()
    }
}

/// A request to evaluate an explicit schedule against an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRequest {
    /// The assignments to evaluate.
    pub assignments: Vec<Assignment>,
    /// The registered instance to evaluate against. Defaults to
    /// `"default"` when absent from the wire.
    #[serde(default)]
    pub instance: InstanceName,
}

/// Per-event attendance line of an [`EvalResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventAttendance {
    /// The scheduled event.
    pub event: EventId,
    /// Where it is scheduled.
    pub interval: IntervalId,
    /// Its expected attendance ω(e, t) (Eq. 2).
    pub expected_attendance: f64,
}

/// The result of an evaluation: Ω plus the per-event breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResponse {
    /// Total utility Ω (Eq. 3).
    pub total_utility: f64,
    /// Per-event expected attendance, in event order.
    pub per_event: Vec<EventAttendance>,
}

/// A request to open a named online session: solve an initial schedule and
/// keep it live for [`SessionEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionOpen {
    /// The session name (unique within the service).
    pub name: String,
    /// The algorithm producing the initial schedule.
    pub spec: SchedulerSpec,
    /// Initial schedule size.
    pub k: usize,
    /// Scoring threads for the initial solve (`0`/`1` = serial). Defaults
    /// to `0` when absent from the wire (pre-`threads` JSON compatibility).
    #[serde(default)]
    pub threads: usize,
    /// The registered instance the session schedules over. Defaults to
    /// `"default"` when absent from the wire.
    #[serde(default)]
    pub instance: InstanceName,
}

/// A rival event announced at an interval (or diffuse activity drift —
/// both inject competing mass).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// Where the rival lands.
    pub interval: IntervalId,
    /// Users who notice it, with their interest `µ(u, c) ∈ [0, 1]`.
    pub postings: Vec<(UserId, f64)>,
}

/// A scheduled event is cancelled; the session backfills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cancellation {
    /// The cancelled event.
    pub event: EventId,
}

/// A late candidate becomes available and is placed greedily if possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// The arriving candidate.
    pub event: EventId,
}

/// The per-interval resource budget θ moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityChange {
    /// The new budget.
    pub budget: f64,
}

/// Toggles whether a candidate may be drawn by backfills/extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Availability {
    /// The candidate.
    pub event: EventId,
    /// Whether it is available.
    pub available: bool,
}

/// One thing that happens to a live session — the request vocabulary of
/// [`SchedulerService::apply`](crate::SchedulerService::apply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// A rival event (or drift) injects competing mass at an interval.
    Announce(Announcement),
    /// A scheduled event is cancelled.
    Cancel(Cancellation),
    /// A late candidate arrives.
    Arrive(Arrival),
    /// The resource budget changes.
    Capacity(CapacityChange),
    /// A candidate's availability mask is toggled.
    SetAvailable(Availability),
    /// Greedily schedule one more event (`k → k+1`).
    Extend,
}

/// The outcome of applying one [`SessionEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventReport {
    /// Whether the event changed session state. Inert events — cancelling
    /// an event that is not scheduled, an arrival with no valid slot, an
    /// extension with nothing left to add — report `false`.
    pub applied: bool,
    /// The repair accounting, when the session ran a repair.
    pub report: Option<RepairReport>,
    /// Utility Ω after the event.
    pub utility: f64,
    /// Schedule size after the event.
    pub scheduled: usize,
    /// Log sequence number the event was durably assigned by the WAL
    /// (`ses-durable`), or `0` when the server runs without a WAL.
    /// Defaults to `0` when absent from the wire (pre-durability JSON
    /// compatibility).
    #[serde(default)]
    pub lsn: u64,
}

/// A point-in-time summary of a live session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The session name.
    pub name: String,
    /// Current utility Ω.
    pub utility: f64,
    /// Current schedule size.
    pub scheduled: usize,
    /// The live resource budget θ.
    pub budget: f64,
    /// Session events applied so far (inert ones included).
    pub events_applied: u64,
    /// Engine operation counters accumulated by the session — the scoring
    /// work this session has cost, in hardware-independent units.
    pub counters: EngineCounters,
    /// The engine's monotone mutation clock (see
    /// [`ses_core::OnlineSession::clock`]): how much schedule churn the
    /// session absorbed, as opposed to how much scoring it performed.
    /// Defaults to `0` when absent from the wire (pre-`clock` JSON
    /// compatibility).
    #[serde(default)]
    pub clock: u64,
    /// Resident-memory and build-cost accounting of the session's engine
    /// (blocked column layout). Defaults to all-zero when absent from the
    /// wire (pre-`memory` JSON compatibility).
    #[serde(default)]
    pub memory: EngineMemoryStats,
    /// The instance this session was opened against. Defaults to
    /// `"default"` when absent from the wire (pre-instance JSON
    /// compatibility).
    #[serde(default)]
    pub instance: InstanceName,
    /// Whether the session's events are being persisted to a write-ahead
    /// log (`ses-durable`). Defaults to `false` when absent from the wire
    /// (pre-durability JSON compatibility).
    #[serde(default)]
    pub durable: bool,
}
