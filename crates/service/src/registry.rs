//! The multi-tenant instance registry: `name → Arc<SesInstance>`.
//!
//! A server boots with a set of *named* instances — some built in memory
//! (the workload default), some registered as paths to packed files
//! (`ses pack` output, see `ses_core::store`). Packed entries are **lazy**:
//! the file is opened on the first request that names the instance, behind
//! a per-entry once-cell, and can be evicted again to give the memory back
//! (the next touch reopens the file). Registry lookups are short
//! lock-hold-and-clone operations, so shards resolve instances on the
//! request path without serializing behind a load.
//!
//! Unknown names surface as
//! [`ses_core::Error::UnknownInstance`] listing everything registered —
//! the wire layer turns that into a structured 404.

use serde::{Deserialize, Serialize};
use ses_core::{store, SesInstance};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Where a registry entry's instance comes from.
#[derive(Debug, Clone)]
enum InstanceSource {
    /// Registered as an already-built in-memory instance.
    Builtin,
    /// Registered as a path to a packed instance file, opened lazily.
    Packed(PathBuf),
}

/// One registry entry: its source plus the lazily-filled handle.
#[derive(Debug)]
struct Slot {
    source: InstanceSource,
    cell: Mutex<Option<Arc<SesInstance>>>,
}

/// A point-in-time description of one registry entry, serialized by the
/// server's `GET /instances` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceInfo {
    /// The registered name.
    pub name: String,
    /// `"builtin"` for in-memory entries, the file path for packed ones.
    pub source: String,
    /// Whether the instance is currently resident in memory.
    pub loaded: bool,
    /// `|U|` if loaded, else 0.
    pub users: usize,
    /// `|E|` if loaded, else 0.
    pub events: usize,
    /// `|T|` if loaded, else 0.
    pub intervals: usize,
    /// `|C|` if loaded, else 0.
    pub competing: usize,
}

/// Thread-safe map of named instances with lazy loading and eviction.
#[derive(Debug, Default)]
pub struct InstanceRegistry {
    slots: Mutex<BTreeMap<String, Arc<Slot>>>,
}

/// A poisoned registry lock only means another thread panicked mid-insert
/// of an `Arc` — the map itself is still structurally sound, so recover
/// the guard instead of propagating the poison onto the request path.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl InstanceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an already-built instance under `name` (replacing any
    /// previous entry with that name).
    pub fn register(&self, name: impl Into<String>, instance: Arc<SesInstance>) {
        let slot = Slot {
            source: InstanceSource::Builtin,
            cell: Mutex::new(Some(instance)),
        };
        recover(&self.slots).insert(name.into(), Arc::new(slot));
    }

    /// Registers a packed instance file under `name`; the file is not
    /// touched until the first [`InstanceRegistry::get`] for it.
    pub fn register_path(&self, name: impl Into<String>, path: impl Into<PathBuf>) {
        let slot = Slot {
            source: InstanceSource::Packed(path.into()),
            cell: Mutex::new(None),
        };
        recover(&self.slots).insert(name.into(), Arc::new(slot));
    }

    /// Resolves `name` to its instance, cold-opening a packed file on first
    /// touch. Unknown names yield
    /// [`ses_core::Error::UnknownInstance`]; a failed open yields
    /// [`ses_core::Error::Store`] (and stays unloaded, so a fixed file can
    /// be retried without re-registering).
    pub fn get(&self, name: &str) -> Result<Arc<SesInstance>, ses_core::Error> {
        // Clone the slot handle out of the map lock before doing anything
        // else: `names()` below re-locks the map, and the packed open can
        // be slow — neither may run under the `slots` guard.
        let found = recover(&self.slots).get(name).map(Arc::clone);
        let slot = match found {
            Some(slot) => slot,
            None => {
                return Err(ses_core::Error::UnknownInstance {
                    name: name.to_owned(),
                    known: self.names(),
                })
            }
        };
        // The per-slot cell serializes the lazy load: concurrent first
        // touches open the file once, later touches clone the Arc.
        let mut cell = recover(&slot.cell);
        if let Some(inst) = cell.as_ref() {
            return Ok(Arc::clone(inst));
        }
        match &slot.source {
            InstanceSource::Builtin => Err(ses_core::Error::UnknownInstance {
                name: name.to_owned(),
                known: self.names(),
            }),
            InstanceSource::Packed(path) => {
                let inst = store::open_path(path).map_err(ses_core::Error::Store)?;
                *cell = Some(Arc::clone(&inst));
                Ok(inst)
            }
        }
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        recover(&self.slots).keys().cloned().collect()
    }

    /// Describes every entry (name order) without loading anything.
    pub fn describe(&self) -> Vec<InstanceInfo> {
        let slots: Vec<(String, Arc<Slot>)> = recover(&self.slots)
            .iter()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
            .collect();
        slots
            .into_iter()
            .map(|(name, slot)| {
                let loaded = recover(&slot.cell).clone();
                let source = match &slot.source {
                    InstanceSource::Builtin => "builtin".to_owned(),
                    InstanceSource::Packed(path) => path.display().to_string(),
                };
                match loaded {
                    Some(inst) => InstanceInfo {
                        name,
                        source,
                        loaded: true,
                        users: inst.num_users(),
                        events: inst.num_events(),
                        intervals: inst.num_intervals(),
                        competing: inst.num_competing(),
                    },
                    None => InstanceInfo {
                        name,
                        source,
                        loaded: false,
                        users: 0,
                        events: 0,
                        intervals: 0,
                        competing: 0,
                    },
                }
            })
            .collect()
    }

    /// Drops the resident handle of a *packed* entry so its memory can be
    /// reclaimed once in-flight sessions release their clones; the next
    /// [`InstanceRegistry::get`] reopens the file. Builtin entries have no
    /// backing file to reload from and are left alone. Returns whether a
    /// resident handle was actually dropped.
    pub fn evict(&self, name: &str) -> bool {
        let slot = match recover(&self.slots).get(name) {
            Some(slot) => Arc::clone(slot),
            None => return false,
        };
        if matches!(slot.source, InstanceSource::Builtin) {
            return false;
        }
        let dropped = recover(&slot.cell).take().is_some();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::testkit;

    #[test]
    fn builtin_register_get_and_names() {
        let registry = InstanceRegistry::new();
        let inst = testkit::small_instance(1);
        registry.register("default", Arc::clone(&inst));
        registry.register("tenant-a", testkit::small_instance(2));
        assert_eq!(registry.names(), vec!["default", "tenant-a"]);
        let got = registry.get("default").unwrap();
        assert!(Arc::ptr_eq(&got, &inst));
    }

    #[test]
    fn unknown_name_lists_registered() {
        let registry = InstanceRegistry::new();
        registry.register("default", testkit::small_instance(1));
        let err = registry.get("nope").unwrap_err();
        match err {
            ses_core::Error::UnknownInstance { name, known } => {
                assert_eq!(name, "nope");
                assert_eq!(known, vec!["default"]);
            }
            other => panic!("expected UnknownInstance, got {other:?}"),
        }
    }

    #[test]
    fn packed_entry_loads_lazily_and_evicts() {
        let inst = testkit::small_instance(3);
        let path = std::env::temp_dir().join("ses-registry-test-lazy.sesstore");
        ses_core::store::pack_to_path(&inst, &path).unwrap();

        let registry = InstanceRegistry::new();
        registry.register_path("packed", &path);
        let info = &registry.describe()[0];
        assert!(!info.loaded, "must not load before first touch");
        assert_eq!(info.source, path.display().to_string());

        let got = registry.get("packed").unwrap();
        assert_eq!(got.num_users(), inst.num_users());
        let again = registry.get("packed").unwrap();
        assert!(Arc::ptr_eq(&got, &again), "second get must hit the cell");
        assert!(registry.describe()[0].loaded);

        assert!(registry.evict("packed"));
        assert!(!registry.describe()[0].loaded);
        let reopened = registry.get("packed").unwrap();
        assert_eq!(reopened.num_users(), inst.num_users());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builtin_entries_do_not_evict() {
        let registry = InstanceRegistry::new();
        registry.register("default", testkit::small_instance(4));
        assert!(!registry.evict("default"));
        assert!(registry.get("default").is_ok());
        assert!(!registry.evict("missing"));
    }

    #[test]
    fn failed_open_is_a_store_error_and_retries() {
        let path = std::env::temp_dir().join("ses-registry-test-broken.sesstore");
        std::fs::write(&path, b"not a packed instance").unwrap();
        let registry = InstanceRegistry::new();
        registry.register_path("broken", &path);
        let err = registry.get("broken").unwrap_err();
        assert!(matches!(err, ses_core::Error::Store(_)), "{err:?}");
        assert!(!registry.describe()[0].loaded, "failure must not cache");

        // Fix the file in place: the same entry now loads.
        let inst = testkit::small_instance(5);
        ses_core::store::pack_to_path(&inst, &path).unwrap();
        assert!(registry.get("broken").is_ok());
        std::fs::remove_file(&path).ok();
    }
}
