//! Service-level errors, layered over [`ses_core::Error`].

use std::fmt;

/// Anything the service facade can reject.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// No session with that name is open.
    UnknownSession(String),
    /// A session with that name is already open.
    SessionExists(String),
    /// A request referenced an entity outside the instance, or carried an
    /// out-of-range value.
    InvalidRequest(String),
    /// A core operation failed (solver, schedule, feasibility, registry…).
    Core(ses_core::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSession(name) => write!(f, "no open session named '{name}'"),
            ServiceError::SessionExists(name) => {
                write!(f, "a session named '{name}' is already open")
            }
            ServiceError::InvalidRequest(what) => write!(f, "invalid request: {what}"),
            ServiceError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ses_core::Error> for ServiceError {
    fn from(e: ses_core::Error) -> Self {
        ServiceError::Core(e)
    }
}

/// Every specific core error converts through [`ses_core::Error`], so `?`
/// works directly on core results inside service code.
macro_rules! impl_from_core {
    ($($t:ty),*) => {$(
        impl From<$t> for ServiceError {
            fn from(e: $t) -> Self {
                ServiceError::Core(e.into())
            }
        }
    )*};
}

impl_from_core!(
    ses_core::ScheduleError,
    ses_core::FeasibilityViolation,
    ses_core::ValidationError,
    ses_core::algorithms::SesError,
    ses_core::UnknownScheduler
);

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::{EventId, ScheduleError};

    #[test]
    fn display_and_conversions() {
        let e = ServiceError::UnknownSession("main".into());
        assert!(e.to_string().contains("main"));

        let e: ServiceError = ScheduleError::NotAssigned {
            event: EventId::new(2),
        }
        .into();
        assert!(matches!(
            e,
            ServiceError::Core(ses_core::Error::Schedule(_))
        ));
        assert!(std::error::Error::source(&e).is_some());
    }
}
