//! The [`SchedulerService`] facade: owned instances in, typed responses out.

use crate::error::ServiceError;
use crate::types::{
    EvalRequest, EvalResponse, EventAttendance, EventReport, InstanceName, SessionEvent,
    SessionOpen, SessionReport, SolveRequest, SolveResponse,
};
use ses_core::{
    evaluate_schedule, registry, EventId, IntervalId, OnlineSession, RepairReport, ScheduleError,
    SesInstance,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One live session plus its service-level accounting.
struct SessionEntry {
    session: OnlineSession,
    events_applied: u64,
    /// The registry name of the instance the session was opened against
    /// (echoed in every [`SessionReport`]).
    instance: InstanceName,
}

/// A request/response facade over the SES engine, managing any number of
/// named [`OnlineSession`]s across owned instances.
///
/// The service holds only owned state (`Arc` handles and sessions), so it is
/// `Send + 'static`: wrap it in a `Mutex`/`RwLock` and it serves threads, or
/// keep one per shard. Different sessions may be bound to *different*
/// instances — the multi-tenant shape a server needs.
///
/// Stateless entry points ([`Self::solve`], [`Self::evaluate`]) take the
/// instance per call; session entry points ([`Self::open_session`],
/// [`Self::apply`], …) address sessions by name.
#[derive(Default)]
pub struct SchedulerService {
    sessions: HashMap<String, SessionEntry>,
    /// Whether a write-ahead log persists this service's session events
    /// (set by the durability layer; echoed in every [`SessionReport`]).
    durable: bool,
}

impl SchedulerService {
    /// An empty service with no open sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks this service's sessions as backed by a write-ahead log. The
    /// owner that appends events ahead of [`Self::apply`] calls this once;
    /// every [`SessionReport`] then carries `durable: true`.
    pub fn set_durable(&mut self, durable: bool) {
        self.durable = durable;
    }

    /// Runs the requested algorithm on an instance (offline, stateless).
    pub fn solve(
        &self,
        inst: &Arc<SesInstance>,
        req: &SolveRequest,
    ) -> Result<SolveResponse, ServiceError> {
        let mut span = ses_obs::span(ses_obs::Stage::Solve);
        let outcome = registry::build_threaded(req.spec, req.threads).run(inst, req.k)?;
        span.set_ops(outcome.stats.engine.as_ops());
        span.set_aux(outcome.stats.pops, outcome.stats.updates);
        Ok(SolveResponse::from_outcome(req.spec, &outcome))
    }

    /// Evaluates an explicit schedule against an instance: feasibility is
    /// checked, then Ω and per-event attendance are computed from scratch.
    pub fn evaluate(
        &self,
        inst: &Arc<SesInstance>,
        req: &EvalRequest,
    ) -> Result<EvalResponse, ServiceError> {
        let mut schedule = inst.empty_schedule();
        for a in &req.assignments {
            schedule.assign(a.event, a.interval)?;
        }
        inst.check_schedule(&schedule)?;
        let eval = evaluate_schedule(inst, &schedule);
        Ok(EvalResponse {
            total_utility: eval.total_utility,
            per_event: eval
                .per_event
                .iter()
                .map(|&(event, interval, expected_attendance)| EventAttendance {
                    event,
                    interval,
                    expected_attendance,
                })
                .collect(),
        })
    }

    /// Solves an initial schedule and opens a named live session over it.
    /// Fails if the name is taken.
    pub fn open_session(
        &mut self,
        inst: &Arc<SesInstance>,
        open: &SessionOpen,
    ) -> Result<SolveResponse, ServiceError> {
        if self.sessions.contains_key(&open.name) {
            return Err(ServiceError::SessionExists(open.name.clone()));
        }
        let mut span = ses_obs::span(ses_obs::Stage::Solve);
        let outcome = registry::build_threaded(open.spec, open.threads).run(inst, open.k)?;
        span.set_ops(outcome.stats.engine.as_ops());
        span.set_aux(outcome.stats.pops, outcome.stats.updates);
        drop(span);
        let session = OnlineSession::new(inst, &outcome.schedule)?;
        let response = SolveResponse::from_outcome(open.spec, &outcome);
        self.sessions.insert(
            open.name.clone(),
            SessionEntry {
                session,
                events_applied: 0,
                instance: open.instance.clone(),
            },
        );
        Ok(response)
    }

    /// Adopts an externally built session under a name (e.g. one whose
    /// schedule was loaded from disk). Fails if the name is taken.
    pub fn adopt_session(
        &mut self,
        name: impl Into<String>,
        session: OnlineSession,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        if self.sessions.contains_key(&name) {
            return Err(ServiceError::SessionExists(name));
        }
        self.sessions.insert(
            name,
            SessionEntry {
                session,
                events_applied: 0,
                instance: InstanceName::default(),
            },
        );
        Ok(())
    }

    /// Applies one [`SessionEvent`] to a named session and reports what the
    /// repair machinery did.
    ///
    /// Events referencing entities outside the session's instance are
    /// rejected with a typed error *before* touching the session. Events
    /// that are well-formed but have nothing to do — cancelling an event
    /// that is not scheduled, an arrival that fits nowhere, an extension
    /// with an empty pool — succeed with `applied: false` (a live workload
    /// naturally races against the schedule; that is not a client bug).
    pub fn apply(&mut self, name: &str, event: &SessionEvent) -> Result<EventReport, ServiceError> {
        let entry = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServiceError::UnknownSession(name.to_owned()))?;
        // Validate against the instance before mutating anything.
        validate_event(entry.session.instance(), event)?;
        let session = &mut entry.session;
        let mut span = ses_obs::span(ses_obs::Stage::Apply);
        let counters_before = session.counters();
        let (applied, report): (bool, Option<RepairReport>) = match event {
            SessionEvent::Announce(a) => {
                let r = session.announce_competing(a.interval, &a.postings);
                (true, Some(r))
            }
            SessionEvent::Cancel(c) => match session.cancel_event(c.event) {
                Ok(r) => (true, Some(r)),
                Err(ScheduleError::NotAssigned { .. }) => (false, None),
                Err(e) => return Err(e.into()),
            },
            SessionEvent::Arrive(a) => match session.arrive(a.event) {
                Some(r) => (true, Some(r)),
                None => (false, None),
            },
            SessionEvent::Capacity(c) => {
                let r = session.change_capacity(c.budget);
                (true, Some(r))
            }
            SessionEvent::SetAvailable(av) => {
                session.set_available(av.event, av.available);
                (true, None)
            }
            SessionEvent::Extend => match session.extend() {
                Some(r) => (true, Some(r)),
                None => (false, None),
            },
        };
        span.set_ops(session.counters().delta_since(counters_before).as_ops());
        let moves = report.as_ref().map_or(0, |r| r.moves.len() as u64);
        span.set_aux(moves, u64::from(applied));
        drop(span);
        entry.events_applied += 1;
        Ok(EventReport {
            applied,
            report,
            utility: entry.session.utility(),
            scheduled: entry.session.schedule().len(),
            // The WAL layer (when present) stamps the real LSN after the
            // append; `0` means the event was not durably logged.
            lsn: 0,
        })
    }

    /// Read access to a named session (for views, traces, metrics).
    pub fn session(&self, name: &str) -> Option<&OnlineSession> {
        self.sessions.get(name).map(|e| &e.session)
    }

    /// A point-in-time report of a named session.
    pub fn report(&self, name: &str) -> Result<SessionReport, ServiceError> {
        let entry = self.entry(name)?;
        Ok(SessionReport {
            name: name.to_owned(),
            utility: entry.session.utility(),
            scheduled: entry.session.schedule().len(),
            budget: entry.session.budget(),
            events_applied: entry.events_applied,
            counters: entry.session.counters(),
            clock: entry.session.clock(),
            memory: entry.session.memory_stats(),
            instance: entry.instance.clone(),
            durable: self.durable,
        })
    }

    /// Closes a named session, returning its final report.
    pub fn close_session(&mut self, name: &str) -> Result<SessionReport, ServiceError> {
        let report = self.report(name)?;
        self.sessions.remove(name);
        Ok(report)
    }

    /// Removes and returns a named session (e.g. to hand it to another
    /// owner), keeping no service-side state.
    pub fn take_session(&mut self, name: &str) -> Option<OnlineSession> {
        self.sessions.remove(name).map(|e| e.session)
    }

    /// Names of all open sessions, sorted.
    pub fn session_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.sessions.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    fn entry(&self, name: &str) -> Result<&SessionEntry, ServiceError> {
        self.sessions
            .get(name)
            .ok_or_else(|| ServiceError::UnknownSession(name.to_owned()))
    }
}

/// Bounds- and range-checks an event against an instance.
fn validate_event(inst: &SesInstance, event: &SessionEvent) -> Result<(), ServiceError> {
    let check_event = |e: EventId| -> Result<(), ServiceError> {
        if e.index() >= inst.num_events() {
            Err(ScheduleError::EventOutOfBounds {
                event: e,
                num_events: inst.num_events(),
            }
            .into())
        } else {
            Ok(())
        }
    };
    let check_interval = |t: IntervalId| -> Result<(), ServiceError> {
        if t.index() >= inst.num_intervals() {
            Err(ScheduleError::IntervalOutOfBounds {
                interval: t,
                num_intervals: inst.num_intervals(),
            }
            .into())
        } else {
            Ok(())
        }
    };
    match event {
        SessionEvent::Announce(a) => {
            check_interval(a.interval)?;
            for &(u, mu) in &a.postings {
                if u.index() >= inst.num_users() {
                    return Err(ServiceError::InvalidRequest(format!(
                        "posting user {u} out of bounds (|U| = {})",
                        inst.num_users()
                    )));
                }
                if !mu.is_finite() || !(0.0..=1.0).contains(&mu) {
                    return Err(ServiceError::InvalidRequest(format!(
                        "posting interest µ({u}) = {mu} outside [0, 1]"
                    )));
                }
            }
            Ok(())
        }
        SessionEvent::Cancel(c) => check_event(c.event),
        SessionEvent::Arrive(a) => check_event(a.event),
        SessionEvent::SetAvailable(av) => check_event(av.event),
        SessionEvent::Capacity(_) | SessionEvent::Extend => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Announcement, Arrival, Availability, Cancellation, CapacityChange};
    use ses_core::{testkit, SchedulerSpec, UserId};

    fn open(service: &mut SchedulerService, name: &str, seed: u64, k: usize) -> SolveResponse {
        let inst = testkit::medium_instance(seed);
        service
            .open_session(
                &inst,
                &SessionOpen {
                    name: name.to_owned(),
                    spec: SchedulerSpec::Greedy,
                    k,
                    threads: 1,
                    instance: InstanceName::default(),
                },
            )
            .unwrap()
    }

    #[test]
    fn solve_matches_direct_scheduler_run() {
        let inst = testkit::medium_instance(5);
        let service = SchedulerService::new();
        let resp = service
            .solve(
                &inst,
                &SolveRequest {
                    spec: SchedulerSpec::Greedy,
                    k: 6,
                    threads: 1,
                    instance: InstanceName::default(),
                },
            )
            .unwrap();
        let direct = registry::build(SchedulerSpec::Greedy)
            .run(&inst, 6)
            .unwrap();
        assert_eq!(resp.algorithm, "GRD");
        assert_eq!(resp.scheduled(), direct.schedule.len());
        assert!((resp.total_utility - direct.total_utility).abs() < 1e-12);
        assert!(resp.complete);
    }

    #[test]
    fn solve_surfaces_typed_solver_errors() {
        let inst = testkit::medium_instance(5);
        let service = SchedulerService::new();
        let err = service
            .solve(
                &inst,
                &SolveRequest {
                    spec: SchedulerSpec::Greedy,
                    k: 10_000,
                    threads: 1,
                    instance: InstanceName::default(),
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Core(ses_core::Error::Solver(_))
        ));
    }

    #[test]
    fn evaluate_round_trips_a_solve() {
        let inst = testkit::medium_instance(7);
        let service = SchedulerService::new();
        let solved = service
            .solve(
                &inst,
                &SolveRequest {
                    spec: SchedulerSpec::Greedy,
                    k: 5,
                    threads: 1,
                    instance: InstanceName::default(),
                },
            )
            .unwrap();
        let eval = service
            .evaluate(
                &inst,
                &EvalRequest {
                    assignments: solved.assignments.clone(),
                    instance: InstanceName::default(),
                },
            )
            .unwrap();
        assert!((eval.total_utility - solved.total_utility).abs() < 1e-7);
        assert_eq!(eval.per_event.len(), solved.scheduled());
    }

    #[test]
    fn evaluate_rejects_infeasible_schedules() {
        let inst = testkit::single_slot_shared_location(3);
        let service = SchedulerService::new();
        use ses_core::Assignment;
        // Two events at the same location in the one interval.
        let err = service
            .evaluate(
                &inst,
                &EvalRequest {
                    assignments: vec![
                        Assignment::new(EventId::new(0), IntervalId::new(0)),
                        Assignment::new(EventId::new(1), IntervalId::new(0)),
                    ],
                    instance: InstanceName::default(),
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Core(ses_core::Error::Feasibility(_))
        ));
    }

    #[test]
    fn sessions_are_named_and_isolated() {
        let mut service = SchedulerService::new();
        let a = open(&mut service, "a", 1, 4);
        let b = open(&mut service, "b", 2, 6);
        assert_eq!(service.session_names(), ["a", "b"]);
        assert_eq!(service.report("a").unwrap().scheduled, a.scheduled());
        assert_eq!(service.report("b").unwrap().scheduled, b.scheduled());
        // Same name twice is a typed error.
        let inst = testkit::medium_instance(3);
        let err = service
            .open_session(
                &inst,
                &SessionOpen {
                    name: "a".into(),
                    spec: SchedulerSpec::Greedy,
                    k: 2,
                    threads: 1,
                    instance: InstanceName::default(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::SessionExists(_)));
        // Unknown names are typed errors.
        assert!(matches!(
            service.report("zzz").unwrap_err(),
            ServiceError::UnknownSession(_)
        ));
    }

    #[test]
    fn apply_runs_the_full_event_vocabulary() {
        let mut service = SchedulerService::new();
        open(&mut service, "s", 11, 6);
        let inst = service.session("s").unwrap().instance_arc().clone();

        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 0.8))
            .collect();
        let busy = service
            .session("s")
            .unwrap()
            .schedule()
            .occupied_intervals()
            .next()
            .unwrap();
        let r = service
            .apply(
                "s",
                &SessionEvent::Announce(Announcement {
                    interval: busy,
                    postings,
                }),
            )
            .unwrap();
        assert!(r.applied);
        let report = r.report.unwrap();
        assert!(report.utility_disrupted < report.utility_before);

        let victim = service.session("s").unwrap().schedule().scheduled_events()[0];
        let r = service
            .apply("s", &SessionEvent::Cancel(Cancellation { event: victim }))
            .unwrap();
        assert!(r.applied);

        // Cancelling an unscheduled event is inert, not an error.
        let unscheduled = (0..inst.num_events() as u32)
            .map(EventId::new)
            .find(|&e| !service.session("s").unwrap().schedule().contains(e))
            .unwrap();
        let r = service
            .apply(
                "s",
                &SessionEvent::Cancel(Cancellation { event: unscheduled }),
            )
            .unwrap();
        assert!(!r.applied && r.report.is_none());

        let r = service
            .apply(
                "s",
                &SessionEvent::SetAvailable(Availability {
                    event: unscheduled,
                    available: false,
                }),
            )
            .unwrap();
        assert!(r.applied && r.report.is_none());
        service
            .apply("s", &SessionEvent::Arrive(Arrival { event: unscheduled }))
            .unwrap();
        assert!(service.session("s").unwrap().is_available(unscheduled));

        let r = service
            .apply(
                "s",
                &SessionEvent::Capacity(CapacityChange {
                    budget: inst.budget() * 0.5,
                }),
            )
            .unwrap();
        assert!(r.applied);
        assert_eq!(service.session("s").unwrap().budget(), inst.budget() * 0.5);

        while service.apply("s", &SessionEvent::Extend).unwrap().applied {}

        let report = service.report("s").unwrap();
        assert!(report.events_applied >= 6);
        assert!(report.utility.is_finite());
        let final_report = service.close_session("s").unwrap();
        assert_eq!(final_report.events_applied, report.events_applied);
        assert!(service.session("s").is_none());
    }

    #[test]
    fn apply_rejects_out_of_universe_references() {
        let mut service = SchedulerService::new();
        open(&mut service, "s", 13, 4);
        let bad_event = EventId::new(10_000);
        let err = service
            .apply(
                "s",
                &SessionEvent::Cancel(Cancellation { event: bad_event }),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Core(ses_core::Error::Schedule(
                ScheduleError::EventOutOfBounds { .. }
            ))
        ));
        let err = service
            .apply(
                "s",
                &SessionEvent::Announce(Announcement {
                    interval: IntervalId::new(9_999),
                    postings: vec![],
                }),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Core(_)));
        let err = service
            .apply(
                "s",
                &SessionEvent::Announce(Announcement {
                    interval: IntervalId::new(0),
                    postings: vec![(UserId::new(0), 7.0)],
                }),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidRequest(_)));
        // Rejected events never count as applied.
        assert_eq!(service.report("s").unwrap().events_applied, 0);
    }

    #[test]
    fn service_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<SchedulerService>();

        // And a whole service can move to another thread mid-flight.
        let mut service = SchedulerService::new();
        open(&mut service, "s", 17, 5);
        let handle = std::thread::spawn(move || {
            let r = service.apply("s", &SessionEvent::Extend).unwrap();
            (r.scheduled, service.report("s").unwrap().utility)
        });
        let (scheduled, utility) = handle.join().unwrap();
        assert!(scheduled >= 5);
        assert!(utility > 0.0);
    }
}
