//! # ses-service — the owned, handle-based service facade
//!
//! `ses-core` exposes the engine as a library: `Arc<SesInstance>` handles,
//! [`OnlineSession`](ses_core::OnlineSession)s, typed errors. This crate
//! shapes that into what a server, CLI or simulator actually speaks:
//! **serde-serializable requests and responses** over a
//! [`SchedulerService`] that manages any number of *named* live sessions,
//! each bound to its own owned instance (multi-tenant by construction).
//!
//! * [`SolveRequest`] / [`EvalRequest`] → [`SolveResponse`] /
//!   [`EvalResponse`] — stateless scheduling and evaluation;
//! * [`SessionOpen`] → open a named session; [`SessionEvent`] (announce /
//!   cancel / arrive / capacity / availability / extend) → [`EventReport`]
//!   with the repair accounting ([`RepairReport`](ses_core::RepairReport));
//! * [`SessionReport`] — point-in-time session summaries;
//! * [`InstanceRegistry`] — the multi-tenant map of *named* instances
//!   (in-memory or lazily opened from `ses pack` files); requests carry an
//!   [`InstanceName`] that defaults to `"default"` so legacy wire JSON
//!   parses unchanged.
//!
//! Everything the service owns is `Send + 'static`, so a service can live
//! behind a lock, move across threads, and outlive the scope that built its
//! instances. The `ses` CLI and the `ses-sim` simulator both drive this
//! facade — one code path from the command line to any future network
//! front end.
//!
//! ## Open a session, stream events, read the report
//!
//! ```
//! use ses_core::{testkit, SchedulerSpec, UserId};
//! use ses_service::{
//!     Announcement, Cancellation, SchedulerService, SessionEvent, SessionOpen,
//! };
//!
//! let inst = testkit::medium_instance(7); // Arc<SesInstance>
//! let mut service = SchedulerService::new();
//!
//! // Open: solve an initial schedule and keep it live under a name.
//! let solved = service
//!     .open_session(
//!         &inst,
//!         &SessionOpen {
//!             name: "main".into(),
//!             spec: SchedulerSpec::Greedy,
//!             k: 6,
//!             threads: 1,
//!             instance: Default::default(),
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(solved.scheduled(), 6);
//!
//! // Stream disruptions: a rival lands on a busy interval…
//! let busy = service.session("main").unwrap().schedule()
//!     .occupied_intervals().next().unwrap();
//! let rival = SessionEvent::Announce(Announcement {
//!     interval: busy,
//!     postings: (0..inst.num_users())
//!         .map(|u| (UserId::new(u as u32), 0.8))
//!         .collect(),
//! });
//! let hit = service.apply("main", &rival).unwrap();
//! assert!(hit.applied && hit.report.is_some());
//!
//! // …an act cancels, the session backfills…
//! let victim = service.session("main").unwrap().schedule().scheduled_events()[0];
//! service
//!     .apply("main", &SessionEvent::Cancel(Cancellation { event: victim }))
//!     .unwrap();
//!
//! // …and the report sums it all up.
//! let report = service.report("main").unwrap();
//! assert_eq!(report.events_applied, 2);
//! assert!(report.utility > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod registry;
mod service;
mod types;

pub use error::ServiceError;
pub use registry::{InstanceInfo, InstanceRegistry};
pub use service::SchedulerService;
pub use types::{
    Announcement, Arrival, Availability, Cancellation, CapacityChange, EvalRequest, EvalResponse,
    EventAttendance, EventReport, InstanceName, SessionEvent, SessionOpen, SessionReport,
    SolveRequest, SolveResponse,
};
