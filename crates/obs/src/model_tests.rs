//! Model-check suites for the lock-free layer, run under the `shuttle`
//! interleaving explorer (`RUSTFLAGS="--cfg ses_shuttle" cargo test -p
//! ses-obs -- model_`). Because `crate::sync` resolves to the instrumented
//! atomics in this configuration, these tests explore every schedule (and
//! every stale-read visibility the C++11 model permits) of the *shipping*
//! seqlock and histogram code, within the preemption bound.

use crate::span::SpanRing;
use crate::{Histogram, SpanRecord, Stage};
use shuttle::{check_with, Config};
use std::sync::Arc;

/// A reference record with every field distinct and nonzero, so any blend
/// of stale and fresh values is distinguishable from a clean read.
fn written(tag: u64) -> SpanRecord {
    SpanRecord {
        trace: 0x10 + tag,
        stage: Stage::Solve,
        start_ns: 0x20 + tag,
        dur_ns: 0x30 + tag,
        ops: crate::OpsDelta {
            score_evaluations: 0x40 + tag,
            posting_visits: 0x50 + tag,
            assigns: 0x60 + tag,
            unassigns: 0x70 + tag,
        },
        aux: [0x80 + tag, 0x90 + tag],
        thread: String::new(),
    }
}

fn record_tag(ring: &SpanRing, tag: u64) {
    let w = written(tag);
    ring.record(
        w.trace,
        w.stage,
        w.start_ns,
        w.dur_ns,
        w.ops.to_array(),
        w.aux,
    );
}

/// Every record a snapshot returns must exactly equal one of the records
/// ever written — a blend of fields from different writes (or from the
/// zeroed slot) is a torn read the seq protocol failed to detect.
fn assert_untorn(records: &[SpanRecord], tags: &[u64]) {
    for rec in records {
        let ok = tags.iter().any(|&t| {
            let w = written(t);
            rec.trace == w.trace
                && rec.stage == w.stage
                && rec.start_ns == w.start_ns
                && rec.dur_ns == w.dur_ns
                && rec.ops == w.ops
                && rec.aux == w.aux
        });
        assert!(ok, "torn span record escaped the seqlock: {rec:?}");
    }
}

#[test]
fn model_seqlock_published_slot_never_torn() {
    // One writer (the main thread), one concurrent reader, exhaustive
    // within the preemption bound.
    let report = check_with(Config::default(), || {
        let ring = Arc::new(SpanRing::new("model".to_owned(), 1));
        let r = Arc::clone(&ring);
        let reader = shuttle::thread::spawn(move || r.snapshot());
        record_tag(&ring, 1);
        let seen = reader.join().unwrap();
        assert_untorn(&seen, &[1]);
        // After the writer is quiescent and joined, the record must be
        // visible and clean.
        let settled = ring.snapshot();
        assert_eq!(settled.len(), 1);
        assert_untorn(&settled, &[1]);
    });
    assert!(
        report.exhaustive,
        "seqlock state space must stay enumerable"
    );
}

#[test]
fn model_seqlock_wrap_never_mixes_records() {
    // Capacity-1 ring, two writes through the same slot: a concurrent
    // reader may see write 1, write 2, or nothing — never a blend.
    let report = check_with(
        Config {
            preemption_bound: 1,
            ..Config::default()
        },
        || {
            let ring = Arc::new(SpanRing::new("model".to_owned(), 1));
            let r = Arc::clone(&ring);
            let reader = shuttle::thread::spawn(move || r.snapshot());
            record_tag(&ring, 1);
            record_tag(&ring, 2);
            let seen = reader.join().unwrap();
            assert_untorn(&seen, &[1, 2]);
            let settled = ring.snapshot();
            assert_eq!(settled.len(), 1, "capacity-1 ring keeps one record");
            assert_untorn(&settled, &[2]);
            assert_eq!(ring.recorded(), 2, "wrap evicts but still counts");
        },
    );
    assert!(
        report.exhaustive,
        "seqlock state space must stay enumerable"
    );
}

#[test]
fn model_seqlock_two_concurrent_readers() {
    // ≥2 readers against the writer: reader interleavings are independent,
    // so a tear visible only to the second reader would be found here.
    let report = check_with(
        Config {
            preemption_bound: 1,
            ..Config::default()
        },
        || {
            let ring = Arc::new(SpanRing::new("model".to_owned(), 1));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let r = Arc::clone(&ring);
                    shuttle::thread::spawn(move || r.snapshot())
                })
                .collect();
            record_tag(&ring, 1);
            for h in handles {
                assert_untorn(&h.join().unwrap(), &[1]);
            }
        },
    );
    assert!(
        report.exhaustive,
        "seqlock state space must stay enumerable"
    );
}

#[test]
fn model_head_relaxed_is_a_safe_capacity_hint() {
    // Pins the satellite audit of the `Relaxed` loads of `head`
    // (`SpanRing::recorded`, also used by `Debug`): `head` is single-writer
    // and monotone, and nothing derives slot validity from it. A reader may
    // see a stale count, but (a) its own reads never go backwards and
    // (b) `snapshot` stays untorn regardless of what `recorded` returned —
    // so `Relaxed` is safe and the stronger ordering is not required.
    let report = check_with(Config::default(), || {
        let ring = Arc::new(SpanRing::new("model".to_owned(), 2));
        let r = Arc::clone(&ring);
        let reader = shuttle::thread::spawn(move || {
            let n1 = r.recorded();
            let snap = r.snapshot();
            let n2 = r.recorded();
            (n1, snap, n2)
        });
        record_tag(&ring, 1);
        let (n1, snap, n2) = reader.join().unwrap();
        assert!(n1 <= n2, "head reads must be monotone per reader");
        assert!(n2 <= 1, "head never overshoots the single writer's count");
        assert_untorn(&snap, &[1]);
    });
    assert!(report.exhaustive);
}

#[test]
fn model_histogram_concurrent_records_never_lose_updates() {
    // The histogram's merge story is all relaxed RMWs: model-check that
    // two concurrent recorders are linearizable (no lost counts, exact
    // sum, correct max) once quiescent.
    let report = check_with(Config::default(), || {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let t = shuttle::thread::spawn(move || h2.record(100));
        h.record(300);
        t.join().unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.count, 2, "a concurrent record was lost");
        assert_eq!(snap.sum, 400);
        assert_eq!(snap.max, 300);
    });
    assert!(report.exhaustive);
}

/// Mutation harness (satellite + acceptance criterion): weaken every
/// `Release` *store* to `Relaxed` — exactly what deleting the `Release`
/// on the publish store in `SpanRing::record` does — and the explorer
/// must find a torn read the correct protocol provably excludes. Ignored
/// by default because the weaken flag is process-global; CI runs it alone
/// via `cargo test -p ses-obs -- --ignored model_mutation`.
#[test]
#[ignore = "mutates process-global model semantics; run alone via -- --ignored"]
fn model_mutation_weakened_publish_is_caught() {
    shuttle::model::set_weaken_release_stores(true);
    let found = std::panic::catch_unwind(|| {
        check_with(Config::default(), || {
            let ring = Arc::new(SpanRing::new("model".to_owned(), 1));
            let r = Arc::clone(&ring);
            let reader = shuttle::thread::spawn(move || r.snapshot());
            record_tag(&ring, 1);
            let seen = reader.join().unwrap();
            assert_untorn(&seen, &[1]);
        })
    });
    shuttle::model::set_weaken_release_stores(false);
    assert!(
        found.is_err(),
        "explorer failed to catch the weakened Release publish — the \
         model checker is not actually sensitive to the seqlock's orderings"
    );
}
