//! Atomics facade: `std::sync::atomic` normally, the `shuttle`
//! interleaving explorer under `--cfg ses_shuttle`.
//!
//! Every lock-free module in this crate (and `ses-server`'s metrics)
//! imports its atomics from here instead of std, so the exact code that
//! ships is the code the model checker explores — no test-only forks of
//! the protocol. Outside a `shuttle::check` execution the instrumented
//! types fall through to std, which keeps the ordinary test suite green
//! under `--cfg ses_shuttle` too (CI runs both suites in one build).

/// The `atomic` submodule mirror (`sync::atomic::{AtomicU64, Ordering, fence}`).
pub mod atomic {
    #[cfg(not(ses_shuttle))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(ses_shuttle)]
    pub use shuttle::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread drop-ins: std normally, model threads under `--cfg ses_shuttle`.
pub mod thread {
    #[cfg(not(ses_shuttle))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(ses_shuttle)]
    pub use shuttle::thread::{spawn, yield_now, JoinHandle};
}
