//! Leveled, rate-limited structured logging to stderr.
//!
//! One line per record, in either human-readable text (default) or JSON
//! (`--log-json`). Each record carries a level, a component name, a
//! message, and typed key/value fields — trace ids go in as fields, so
//! every log line about a request is joinable with its span timeline.
//!
//! Rate limiting is per component: at most [`MAX_LINES_PER_SEC`] lines per
//! second per component, with a summary line (`suppressed=N`) when a
//! window dropped records — a misbehaving client can't turn the
//! slow-request log into an I/O storm.

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The server cannot do what was asked of it.
    Error = 0,
    /// Something is off but handled (slow requests land here).
    Warn = 1,
    /// Lifecycle events: startup, shutdown, listeners.
    Info = 2,
    /// Per-request detail.
    Debug = 3,
}

impl Level {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `--log-level` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// One typed field value on a log record.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// A string (quoted/escaped in JSON mode).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl fmt::Display for FieldValue {
    /// The text-mode rendering (unquoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Str(s) => write!(f, "{s}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::Str(s) => push_json_str(out, s),
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static LOG_JSON: AtomicBool = AtomicBool::new(false);

/// Sets the global threshold: records *less* severe than `level` are
/// dropped before formatting.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global threshold.
pub fn log_level() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Switches between text (false) and JSON-lines (true) output.
pub fn set_log_json(json: bool) {
    LOG_JSON.store(json, Ordering::Relaxed);
}

/// Whether a record at `level` would currently be emitted (cheap check to
/// skip building expensive fields).
pub fn log_enabled(level: Level) -> bool {
    level <= log_level()
}

/// Per-component rate-limit cap, lines per second.
pub const MAX_LINES_PER_SEC: u64 = 50;

/// Per-component window accounting: (window start second, emitted, dropped).
type RateWindows = HashMap<&'static str, (u64, u64, u64)>;

fn limiter() -> &'static Mutex<RateWindows> {
    static LIMITER: OnceLock<Mutex<RateWindows>> = OnceLock::new();
    LIMITER.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Checks the component's budget for this wall-clock second. Returns the
/// number of lines suppressed in the *previous* window (to report) or
/// `None` when this record itself must be dropped.
fn check_rate(component: &'static str, now_sec: u64) -> Option<u64> {
    let mut map = limiter().lock().expect("log limiter");
    let entry = map.entry(component).or_insert((now_sec, 0, 0));
    if entry.0 != now_sec {
        let dropped = entry.2;
        *entry = (now_sec, 0, 0);
        entry.1 = 1;
        return Some(dropped);
    }
    if entry.1 >= MAX_LINES_PER_SEC {
        entry.2 += 1;
        return None;
    }
    entry.1 += 1;
    Some(0)
}

/// Emits one structured record (subject to level threshold and per-component
/// rate limit). `component` names the emitting subsystem (`server`,
/// `shard`, `loadgen`, …).
pub fn log(level: Level, component: &'static str, message: &str, fields: &[(&str, FieldValue)]) {
    if !log_enabled(level) {
        return;
    }
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let Some(suppressed) = check_rate(component, now.as_secs()) else {
        return;
    };
    let ts_millis = now.as_millis() as u64;
    let mut line = String::with_capacity(128);
    if LOG_JSON.load(Ordering::Relaxed) {
        line.push_str("{\"ts_millis\":");
        line.push_str(&ts_millis.to_string());
        line.push_str(",\"level\":");
        push_json_str(&mut line, level.label());
        line.push_str(",\"component\":");
        push_json_str(&mut line, component);
        line.push_str(",\"msg\":");
        push_json_str(&mut line, message);
        for (key, value) in fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            push_json_value(&mut line, value);
        }
        if suppressed > 0 {
            line.push_str(",\"suppressed\":");
            line.push_str(&suppressed.to_string());
        }
        line.push('}');
    } else {
        line.push_str(&format!(
            "[{ts_millis}] {:<5} {component}: {message}",
            level.label().to_ascii_uppercase()
        ));
        for (key, value) in fields {
            line.push_str(&format!(" {key}={value}"));
        }
        if suppressed > 0 {
            line.push_str(&format!(" suppressed={suppressed}"));
        }
    }
    line.push('\n');
    // One write per line so concurrent emitters never interleave bytes.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parsing() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn rate_limit_suppresses_and_reports() {
        // A dedicated component key keeps this test independent.
        let c: &'static str = "obs-test-rate";
        let mut emitted = 0;
        for _ in 0..(MAX_LINES_PER_SEC + 10) {
            if check_rate(c, 42).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, MAX_LINES_PER_SEC);
        // Next window reports what the previous one dropped.
        assert_eq!(check_rate(c, 43), Some(10));
        assert_eq!(check_rate(c, 43), Some(0));
    }
}
