//! Lock-free log-bucketed latency histograms (microsecond samples).
//!
//! Latencies are recorded into log-spaced buckets (8 sub-buckets per power
//! of two, so every bucket is at most 12.5% wide) built from plain
//! `AtomicU64`s — recording is a single relaxed fetch-add on the hot path,
//! snapshotting is lock-free, and p50/p95/p99 come out of the cumulative
//! bucket counts with bounded relative error.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^3 = 8 buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Bucket count: values 0..8 map exactly, then 8 buckets per octave up to
/// 2^40 µs (~13 days) — far beyond any request this server can serve.
const N_BUCKETS: usize = SUB + (40 - SUB_BITS as usize) * SUB + 1;

/// Which log bucket a microsecond value lands in.
fn bucket_index(v: u64) -> usize {
    let v = v.max(1);
    let msb = 63 - v.leading_zeros();
    if msb <= SUB_BITS {
        return v as usize; // values 1..=15 map to their own index
    }
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (((msb - SUB_BITS) as usize) << SUB_BITS) + sub + SUB
}

/// The lower bound (µs) of a bucket, inverse of [`bucket_index`].
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return idx as u64;
    }
    let octave = (idx - SUB) >> SUB_BITS;
    let sub = (idx - SUB) & (SUB - 1);
    ((SUB + sub) as u64) << octave
}

/// A lock-free log-bucketed latency histogram (microsecond samples).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let idx = bucket_index(micros).min(N_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum: u64,
    /// Largest sample (µs).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (for aggregating per-worker
    /// histograms in the load generator).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (e.g. `0.99`) in µs: the lower bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`. Zero when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample (µs).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in [0u64, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 123_456, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last || v == 0, "bucket index not monotone at {v}");
            last = idx.max(last);
            assert!(idx < N_BUCKETS || v > 1 << 40);
            // The lower bound of the bucket never exceeds the value.
            assert!(bucket_lower_bound(idx.min(N_BUCKETS - 1)) <= v.max(1));
        }
        // Small values are exact.
        for v in 1u64..16 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        let p50 = snap.quantile(0.50);
        let p99 = snap.quantile(0.99);
        // Log-bucket lower bounds: within one bucket (12.5%) below the true
        // quantile, never above it.
        assert!((437..=500).contains(&p50), "p50 = {p50}");
        assert!((866..=990).contains(&p99), "p99 = {p99}");
        assert!(snap.quantile(1.0) <= snap.max);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 1010);
    }
}
