//! # ses-obs — structured observability for the ses workspace
//!
//! A std-only leaf crate (no dependency on the engine) providing the four
//! observability primitives every other layer threads through:
//!
//! * [`TraceId`] — 64-bit request trace ids, hex on the wire
//!   (`x-ses-trace-id`), carried in-process by a thread-local set with
//!   [`trace_scope`];
//! * spans — a lock-free per-thread bounded ring ([`SpanRing`]) of
//!   [`SpanRecord`]s with monotonic timestamps, engine-counter deltas
//!   ([`OpsDelta`]) and stage labels ([`Stage`]); record with [`span`]
//!   guards or [`record_span`], read back with [`collect_trace`], render
//!   with [`format_trace`];
//! * [`Histogram`] — lock-free log-bucketed latency histograms (the
//!   server's per-endpoint `/metrics` lines and the per-stage
//!   [`stage_latencies`] both sit on these);
//! * [`log`]/[`Level`] — leveled, per-component rate-limited structured
//!   logging to stderr, text or JSON lines.
//!
//! Everything here is wait-free on the hot path (atomic stores into
//! preallocated slots) and allocation-free at steady state, so the
//! instrumentation can stay on in production; see DESIGN.md §9 for the
//! span model and the overhead methodology.
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod hist;
mod log;
mod span;
pub mod sync;
mod trace;

#[cfg(all(test, ses_shuttle))]
mod model_tests;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::{
    log, log_enabled, log_level, set_log_json, set_log_level, FieldValue, Level, MAX_LINES_PER_SEC,
};
pub use span::{
    collect_trace, current_trace, format_trace, now_ns, record_span, set_default_ring_capacity,
    span, stage_latencies, thread_ring_stats, trace_scope, OpsDelta, SpanGuard, SpanRecord,
    SpanRing, Stage, StageLatency, TraceScope, STAGES,
};
pub use trace::TraceId;
