//! Lock-free per-thread span recording.
//!
//! Every instrumented thread owns one bounded [`SpanRing`]: a fixed array
//! of slots, each a handful of `AtomicU64`s guarded by a per-slot sequence
//! counter (a seqlock). Exactly one thread ever *writes* a given ring — the
//! thread that owns it — so writes need no CAS loops and no locks: bump the
//! sequence to odd, store the fields, bump it back to even. Any thread may
//! *read* concurrently ([`collect_trace`]) and discards slots whose
//! sequence changed mid-read. The ring is preallocated at creation and
//! never grows, so steady-state recording allocates nothing; when it wraps,
//! the oldest spans are silently evicted (a `/trace/{id}` miss, never a
//! stall).
//!
//! Spans are attributed to the thread-local *current trace*
//! ([`trace_scope`]) at record time, and carry an engine-operation delta
//! ([`OpsDelta`]) plus two stage-specific auxiliary counters (e.g. CELF
//! pops / lazy re-validations for `select` spans, queue depth for `queue`
//! spans).

use crate::hist::Histogram;
use crate::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use crate::trace::TraceId;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The instrumented pipeline stages, socket to Eq. 4 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Whole HTTP request on the connection handler (read → route → write).
    Request = 0,
    /// Reading and framing the request body.
    Parse = 1,
    /// Time spent queued between shard dispatch and shard pickup
    /// (`aux_a` = queue depth at enqueue).
    Queue = 2,
    /// Shard-side handling of one operation (`aux_a` = shard index).
    Service = 3,
    /// One full offline solve inside the service.
    Solve = 4,
    /// The initial E×T scoring sweep (Alg. 1 lines 2–4).
    Sweep = 5,
    /// The greedy selection loop (`aux_a` = pops, `aux_b` = rescores /
    /// lazy re-validations).
    Select = 6,
    /// Applying one session event inside the service
    /// (`aux_a` = repair moves).
    Apply = 7,
    /// One online repair pass (`aux_a` = repair moves).
    Repair = 8,
    /// Dirty-interval rescoring of one cached score row.
    Rescore = 9,
    /// Serializing and writing the HTTP response.
    Respond = 10,
    /// Appending one record batch to the durability WAL
    /// (`aux_a` = bytes appended, `aux_b` = 1 if the append fsynced).
    Wal = 11,
    /// Replaying one session's snapshot + WAL tail at boot or migration
    /// (`aux_a` = events replayed).
    Recover = 12,
}

/// All stages, in pipeline order.
pub const STAGES: [Stage; 13] = [
    Stage::Request,
    Stage::Parse,
    Stage::Queue,
    Stage::Service,
    Stage::Solve,
    Stage::Sweep,
    Stage::Select,
    Stage::Apply,
    Stage::Repair,
    Stage::Rescore,
    Stage::Respond,
    Stage::Wal,
    Stage::Recover,
];

impl Stage {
    /// Stable lower-case label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Service => "service",
            Stage::Solve => "solve",
            Stage::Sweep => "sweep",
            Stage::Select => "select",
            Stage::Apply => "apply",
            Stage::Repair => "repair",
            Stage::Rescore => "rescore",
            Stage::Respond => "respond",
            Stage::Wal => "wal",
            Stage::Recover => "recover",
        }
    }

    fn from_index(idx: u64) -> Option<Stage> {
        STAGES.get(idx as usize).copied()
    }
}

/// An engine-operation delta attributed to one span — the same four
/// hardware-independent counters `ses-core` tracks, carried as plain
/// numbers so `ses-obs` stays a leaf crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpsDelta {
    /// Eq. 4 score evaluations.
    pub score_evaluations: u64,
    /// Posting-list entries visited.
    pub posting_visits: u64,
    /// Assignments committed.
    pub assigns: u64,
    /// Assignments retracted.
    pub unassigns: u64,
}

impl OpsDelta {
    /// Packs into the ring's fixed-width representation.
    pub fn to_array(self) -> [u64; 4] {
        [
            self.score_evaluations,
            self.posting_visits,
            self.assigns,
            self.unassigns,
        ]
    }

    /// Unpacks the ring's fixed-width representation.
    pub fn from_array(a: [u64; 4]) -> Self {
        Self {
            score_evaluations: a[0],
            posting_visits: a[1],
            assigns: a[2],
            unassigns: a[3],
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(self) -> bool {
        self.to_array() == [0; 4]
    }
}

/// One decoded span, as read back out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (never zero in decoded records).
    pub trace: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Start, in nanoseconds since the process-wide epoch ([`now_ns`]).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Engine work attributed to this span.
    pub ops: OpsDelta,
    /// Stage-specific auxiliary counters (see [`Stage`] docs).
    pub aux: [u64; 2],
    /// Name of the thread that recorded it.
    pub thread: String,
}

impl SpanRecord {
    /// End of the span, nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// One seqlock-guarded slot. Only the owning thread writes; the sequence
/// counter is odd while a write is in flight.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    ops: [AtomicU64; 4],
    aux: [AtomicU64; 2],
}

/// A bounded single-writer many-reader span ring for one thread.
pub struct SpanRing {
    thread: String,
    slots: Box<[Slot]>,
    /// Total spans ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("thread", &self.thread)
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    pub(crate) fn new(thread: String, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            thread,
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Fixed slot count (never changes after creation).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (monotone; `recorded - capacity` oldest
    /// ones have been evicted by wrapping).
    ///
    /// The `Relaxed` load (here and in `Debug`) is deliberate: `head` is
    /// written by one thread and monotone, and no reader derives slot
    /// *validity* from it — `snapshot` only uses it to size its `Vec`,
    /// while per-slot correctness rests entirely on the `seq` protocol. A
    /// stale value can at worst under-reserve the allocation. Pinned by
    /// `model_tests::model_head_relaxed_is_a_safe_capacity_hint`.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Writes one span. Must only be called from the ring's owning thread
    /// (enforced by the module API: rings are reachable for writing only
    /// through the thread-local handle; `pub(crate)` so the model-check
    /// suite can drive the protocol directly).
    pub(crate) fn record(
        &self,
        trace: u64,
        stage: Stage,
        start_ns: u64,
        dur_ns: u64,
        ops: [u64; 4],
        aux: [u64; 2],
    ) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed); // odd: write in flight
        fence(Ordering::Release);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.stage.store(stage as u64, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        for (cell, v) in slot.ops.iter().zip(ops) {
            cell.store(v, Ordering::Relaxed);
        }
        for (cell, v) in slot.aux.iter().zip(aux) {
            cell.store(v, Ordering::Relaxed);
        }
        slot.seq.store(seq.wrapping_add(2), Ordering::Release); // even: published
        self.head.store(head + 1, Ordering::Release);
    }

    /// Reads every published slot (skipping slots a concurrent write tears).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let filled = self.recorded().min(self.slots.len() as u64) as usize;
        let mut out = Vec::with_capacity(filled);
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or a write is in flight
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let stage = slot.stage.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let ops = [
                slot.ops[0].load(Ordering::Relaxed),
                slot.ops[1].load(Ordering::Relaxed),
                slot.ops[2].load(Ordering::Relaxed),
                slot.ops[3].load(Ordering::Relaxed),
            ];
            let aux = [
                slot.aux[0].load(Ordering::Relaxed),
                slot.aux[1].load(Ordering::Relaxed),
            ];
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn read: the writer lapped us — drop the slot
            }
            let Some(stage) = Stage::from_index(stage) else {
                continue;
            };
            if trace == 0 {
                continue; // untraced span: feeds histograms only
            }
            out.push(SpanRecord {
                trace,
                stage,
                start_ns,
                dur_ns,
                ops: OpsDelta::from_array(ops),
                aux,
                thread: self.thread.clone(),
            });
        }
        out
    }
}

/// Default per-thread ring capacity (slots).
const DEFAULT_RING_CAPACITY: usize = 4096;

static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Sets the capacity used for rings created *after* this call (existing
/// rings keep their size). Intended for tests that exercise eviction with
/// tiny rings; production uses the 4096-slot default.
pub fn set_default_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Every ring ever created, for cross-thread trace collection. Rings of
/// exited threads stay registered (a few hundred KiB per thread at the
/// default capacity) — thread pools here are created once per process, so
/// this never accumulates.
fn registry() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<SpanRing>>> = const { RefCell::new(None) };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's ring, created and registered on first use.
fn thread_ring() -> Arc<SpanRing> {
    THREAD_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(ring) = slot.as_ref() {
            return Arc::clone(ring);
        }
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_owned();
        let ring = Arc::new(SpanRing::new(name, RING_CAPACITY.load(Ordering::Relaxed)));
        registry()
            .lock()
            .expect("span registry")
            .push(Arc::clone(&ring));
        *slot = Some(Arc::clone(&ring));
        ring
    })
}

/// Capacity and total-recorded count of the calling thread's ring (the
/// zero-allocation-steady-state property test watches these).
pub fn thread_ring_stats() -> (usize, u64) {
    let ring = thread_ring();
    (ring.capacity(), ring.recorded())
}

/// The process-wide monotonic epoch: nanoseconds since the first call.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The trace id spans on this thread are currently attributed to.
pub fn current_trace() -> Option<TraceId> {
    TraceId::from_raw(CURRENT_TRACE.with(|c| c.get()))
}

/// Scope guard restoring the previous thread-local trace id on drop.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Attributes spans recorded on this thread to `id` until the returned
/// guard drops (nesting restores the outer trace).
pub fn trace_scope(id: TraceId) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id.raw()));
    TraceScope { prev }
}

/// Per-stage duration histograms feeding the `/metrics` stage lines.
fn stage_histograms() -> &'static [Histogram; STAGES.len()] {
    static HISTS: OnceLock<[Histogram; STAGES.len()]> = OnceLock::new();
    HISTS.get_or_init(|| std::array::from_fn(|_| Histogram::new()))
}

/// Records one finished span on the calling thread's ring, attributed to
/// the thread-local current trace, and feeds the stage histogram. This is
/// the raw entry point [`SpanGuard`] uses; call it directly when the span's
/// start/duration were measured elsewhere (e.g. queue time measured across
/// threads from an enqueue timestamp).
pub fn record_span(stage: Stage, start_ns: u64, dur_ns: u64, ops: OpsDelta, aux: [u64; 2]) {
    let trace = CURRENT_TRACE.with(|c| c.get());
    thread_ring().record(trace, stage, start_ns, dur_ns, ops.to_array(), aux);
    stage_histograms()[stage as usize].record(dur_ns / 1_000);
}

/// A per-stage latency line for the `/metrics` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Stage label (`queue`, `service`, `select`, …).
    pub stage: String,
    /// Spans recorded.
    pub count: u64,
    /// Mean duration (µs).
    pub mean_micros: f64,
    /// Median duration (µs, log-bucket lower bound).
    pub p50_micros: u64,
    /// 95th-percentile duration (µs).
    pub p95_micros: u64,
    /// 99th-percentile duration (µs).
    pub p99_micros: u64,
    /// Worst observed duration (µs, exact).
    pub max_micros: u64,
}

/// Per-stage p50/p95/p99 duration lines, pipeline order, stages with no
/// spans omitted. Process-wide (accumulated since start, across traces).
pub fn stage_latencies() -> Vec<StageLatency> {
    STAGES
        .iter()
        .filter_map(|&stage| {
            let snap = stage_histograms()[stage as usize].snapshot();
            (snap.count > 0).then(|| StageLatency {
                stage: stage.label().to_owned(),
                count: snap.count,
                mean_micros: snap.mean(),
                p50_micros: snap.quantile(0.50),
                p95_micros: snap.quantile(0.95),
                p99_micros: snap.quantile(0.99),
                max_micros: snap.max,
            })
        })
        .collect()
}

/// All recorded spans of one trace, across every thread's ring, sorted by
/// start time (ties: longer span first, so parents precede children).
/// Empty when the trace was never recorded or its spans were evicted.
pub fn collect_trace(id: TraceId) -> Vec<SpanRecord> {
    let rings: Vec<Arc<SpanRing>> = registry().lock().expect("span registry").clone();
    let mut spans: Vec<SpanRecord> = rings
        .iter()
        .flat_map(|r| r.snapshot())
        .filter(|s| s.trace == id.raw())
        .collect();
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then_with(|| b.dur_ns.cmp(&a.dur_ns))
    });
    spans
}

/// An in-flight span: measures from construction to drop, recording into
/// the owning thread's ring. Attach engine-counter deltas and auxiliary
/// values before it drops.
#[derive(Debug)]
pub struct SpanGuard {
    stage: Stage,
    start_ns: u64,
    ops: OpsDelta,
    aux: [u64; 2],
}

impl SpanGuard {
    /// Attributes an engine-operation delta to this span.
    pub fn set_ops(&mut self, ops: OpsDelta) {
        self.ops = ops;
    }

    /// Sets the stage-specific auxiliary counters.
    pub fn set_aux(&mut self, a: u64, b: u64) {
        self.aux = [a, b];
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = now_ns().saturating_sub(self.start_ns);
        record_span(self.stage, self.start_ns, dur, self.ops, self.aux);
    }
}

/// Starts a span at the current instant; it records when dropped (panic
/// included, so timelines stay complete on error paths).
pub fn span(stage: Stage) -> SpanGuard {
    SpanGuard {
        stage,
        start_ns: now_ns(),
        ops: OpsDelta::default(),
        aux: [0; 2],
    }
}

/// Renders a trace's spans as an indented text tree with per-span counter
/// deltas — shared by `ses solve --trace`, `ses simulate --trace` and the
/// server's slow-request log.
pub fn format_trace(id: TraceId, spans: &[SpanRecord]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if spans.is_empty() {
        let _ = writeln!(out, "trace {id}: no recorded spans (evicted or unknown)");
        return out;
    }
    let origin = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let total = spans
        .iter()
        .map(|s| s.end_ns())
        .max()
        .unwrap_or(origin)
        .saturating_sub(origin);
    let _ = writeln!(
        out,
        "trace {id} — {} spans, {:.3} ms",
        spans.len(),
        total as f64 / 1e6
    );
    // Spans arrive sorted by (start asc, duration desc); a stack of open
    // end-times yields the nesting depth.
    let mut open: Vec<u64> = Vec::new();
    for s in spans {
        while open.last().is_some_and(|&end| end <= s.start_ns) {
            open.pop();
        }
        let _ = write!(
            out,
            "  {:>10.3} ms  {}{:<8} {:>10.3} ms",
            (s.start_ns - origin) as f64 / 1e6,
            "  ".repeat(open.len()),
            s.stage.label(),
            s.dur_ns as f64 / 1e6,
        );
        if !s.ops.is_zero() {
            let _ = write!(
                out,
                "  evals={} visits={} assigns={} unassigns={}",
                s.ops.score_evaluations, s.ops.posting_visits, s.ops.assigns, s.ops.unassigns
            );
        }
        if s.aux != [0; 2] {
            let _ = write!(out, "  aux={}/{}", s.aux[0], s.aux[1]);
        }
        let _ = writeln!(out, "  [{}]", s.thread);
        open.push(s.end_ns());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_attach_to_the_scoped_trace() {
        let id = TraceId::generate();
        {
            let _scope = trace_scope(id);
            let mut g = span(Stage::Solve);
            g.set_ops(OpsDelta {
                score_evaluations: 48_000,
                posting_visits: 7,
                assigns: 3,
                unassigns: 1,
            });
            g.set_aux(5, 2);
        }
        let spans = collect_trace(id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Solve);
        assert_eq!(spans[0].ops.score_evaluations, 48_000);
        assert_eq!(spans[0].aux, [5, 2]);
        assert!(current_trace().is_none(), "scope restored on drop");
    }

    #[test]
    fn nested_scopes_restore_the_outer_trace() {
        let outer = TraceId::generate();
        let inner = TraceId::generate();
        let _a = trace_scope(outer);
        {
            let _b = trace_scope(inner);
            assert_eq!(current_trace(), Some(inner));
        }
        assert_eq!(current_trace(), Some(outer));
    }

    #[test]
    fn ring_wraps_without_growing() {
        // Rings are per-thread: run in a dedicated thread so the tiny
        // capacity set here cannot leak into other tests' rings.
        std::thread::spawn(|| {
            set_default_ring_capacity(8);
            let id = TraceId::generate();
            let _scope = trace_scope(id);
            let (cap0, _) = thread_ring_stats();
            assert_eq!(cap0, 8);
            for _ in 0..100 {
                drop(span(Stage::Rescore));
            }
            let (cap, recorded) = thread_ring_stats();
            assert_eq!(cap, 8, "ring must never grow");
            assert_eq!(recorded, 100);
            assert!(collect_trace(id).len() <= 8, "old spans evicted");
            set_default_ring_capacity(DEFAULT_RING_CAPACITY);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn collect_trace_spans_cross_threads() {
        let id = TraceId::generate();
        let raw = id; // Copy
        std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(move || {
                let _scope = trace_scope(raw);
                drop(span(Stage::Service));
            })
            .unwrap()
            .join()
            .unwrap();
        {
            let _scope = trace_scope(id);
            drop(span(Stage::Request));
        }
        let spans = collect_trace(id);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.thread == "obs-test-worker"));
    }

    #[test]
    fn format_trace_nests_contained_spans() {
        let id = TraceId::generate();
        let spans = vec![
            SpanRecord {
                trace: id.raw(),
                stage: Stage::Request,
                start_ns: 0,
                dur_ns: 1_000_000,
                ops: OpsDelta::default(),
                aux: [0; 2],
                thread: "t".into(),
            },
            SpanRecord {
                trace: id.raw(),
                stage: Stage::Solve,
                start_ns: 100,
                dur_ns: 500,
                ops: OpsDelta {
                    score_evaluations: 9,
                    ..OpsDelta::default()
                },
                aux: [0; 2],
                thread: "t".into(),
            },
        ];
        let text = format_trace(id, &spans);
        assert!(text.contains("request"));
        assert!(text.contains("  solve"), "child span is indented");
        assert!(text.contains("evals=9"));
        assert!(format_trace(id, &[]).contains("no recorded spans"));
    }

    #[test]
    fn stage_latencies_report_recorded_stages() {
        record_span(
            Stage::Respond,
            now_ns(),
            5_000_000,
            OpsDelta::default(),
            [0; 2],
        );
        let lines = stage_latencies();
        let respond = lines.iter().find(|l| l.stage == "respond").unwrap();
        assert!(respond.count >= 1);
        assert!(respond.max_micros >= 5_000);
    }
}
