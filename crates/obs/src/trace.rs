//! 64-bit request trace ids.
//!
//! A trace id names one unit of work end-to-end: one HTTP request as it
//! crosses the connection handler, the shard queue, the service and the
//! engine — or one offline `ses solve --trace` run. Ids travel on the wire
//! as 16-digit lower-case hex strings (the `x-ses-trace-id` header and the
//! JSON reports), and in-process as a plain `u64` carried by a thread-local
//! (see [`trace_scope`](crate::trace_scope)).
//!
//! Zero is reserved as "no trace" so a raw `u64` of `0` can mean "absent"
//! in span slots without an `Option`.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::fmt;
use std::sync::OnceLock;

/// A non-zero 64-bit trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// splitmix64 — the standard 64-bit finalizer; bijective, so distinct
/// counter values always produce distinct ids.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// Wraps a raw id; `None` for the reserved zero.
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }

    /// The raw 64-bit value (never zero).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// A fresh process-unique id: a per-process atomic counter pushed
    /// through splitmix64 with a time/pid seed, so ids are unique within a
    /// process and overwhelmingly unlikely to collide across processes.
    pub fn generate() -> Self {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            splitmix64(nanos ^ ((std::process::id() as u64) << 32))
        });
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            // splitmix64 is a bijection of (seed + n), so ids never repeat
            // until the counter wraps; retry only filters the one input
            // that maps to the reserved zero.
            let id = splitmix64(seed.wrapping_add(n));
            if let Some(t) = Self::from_raw(id) {
                return t;
            }
        }
    }

    /// Parses the wire form: 1–16 hex digits, non-zero. Returns `None` on
    /// anything else (the caller falls back to generating a fresh id).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(Self::from_raw)
    }
}

impl fmt::Display for TraceId {
    /// The wire form: 16 lower-case hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_hex() {
        for raw in [1u64, 0xdead_beef, u64::MAX] {
            let id = TraceId::from_raw(raw).unwrap();
            assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        }
        assert_eq!(TraceId::from_raw(0), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "0", "xyz", "12345678901234567", "12 34", "-5"] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?} must not parse");
        }
        assert!(TraceId::parse(" 00ff ").is_some(), "whitespace is trimmed");
    }

    #[test]
    fn generated_ids_are_distinct() {
        let ids: std::collections::HashSet<u64> =
            (0..1000).map(|_| TraceId::generate().raw()).collect();
        assert_eq!(ids.len(), 1000);
    }
}
