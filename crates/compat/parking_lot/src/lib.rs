//! Offline drop-in subset of `parking_lot`: a [`Mutex`] with the
//! `parking_lot` calling convention (`lock()` returns the guard directly,
//! poisoning is ignored), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
