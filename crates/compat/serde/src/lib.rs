//! Offline drop-in subset of `serde`.
//!
//! The real serde is a zero-cost visitor framework; this shim is a simple
//! value-tree design that covers what the workspace needs: derived
//! `Serialize`/`Deserialize` on plain structs, newtype ids
//! (`#[serde(transparent)]`), unit and newtype enums, with `serde_json` as
//! the only wire format. Data round-trips exactly (floats use
//! shortest-round-trip formatting; `u64` never loses precision).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped number preserving integer exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (integers may round for magnitudes > 2⁵³).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// The in-memory data tree both directions of (de)serialization pass through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The error for an absent required field.
    pub fn missing_field(name: &str) -> Self {
        Self(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a data tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a data tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
