//! Offline drop-in subset of `proptest`.
//!
//! Covers the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`arbitrary::any`], `prop::collection::vec`, `prop::bool::ANY`, the
//! [`proptest!`] macro and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name, so runs are reproducible and
//! CI-stable), and failing inputs are **not** shrunk — the panic message
//! carries whatever the assertion formats.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded deterministically from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy ([`arbitrary::any`]).
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types usable with [`any`].
    pub trait Arbitrary: Sized {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, broad-range doubles (upstream generates specials too;
            // the workspace's properties expect ordinary numbers).
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A uniformly random boolean.
    pub const ANY: BoolAny = BoolAny;
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Map, ProptestConfig, Strategy, TestRng};

    /// The crate root, for `prop::collection::…` / `prop::bool::…` paths.
    pub use crate as prop;
}

/// Runs each contained `#[test] fn name(arg in strategy, …) { … }` over many
/// random cases. See the crate docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 0usize..5, (a, b) in pair(), seed in any::<u64>()) {
            prop_assert!(x < 5);
            prop_assert!(a % 2 == 0 && (2..20).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            let _ = seed;
        }

        #[test]
        fn collections_respect_bounds(v in prop::collection::vec((any::<u32>(), any::<u32>()), 1..40), flag in prop::bool::ANY) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0usize..100;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
