//! Self-tests for the interleaving explorer: the checker must (a) pass
//! correct protocols exhaustively, (b) find the classic bugs (lost
//! updates, relaxed publication), and (c) respect its preemption bound.

use shuttle::sync::atomic::{AtomicU64, Ordering};
use shuttle::{check, check_with, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Arc;

/// Runs `check` expecting it to panic; returns the panic message.
fn expect_failure<F: Fn()>(cfg: Config, f: F) -> String {
    let r = catch_unwind(AssertUnwindSafe(|| check_with(cfg, f)));
    match r {
        Ok(report) => panic!("expected the checker to find a failure, got {report:?}"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default(),
    }
}

#[test]
fn fetch_add_never_loses_updates() {
    let report = check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                shuttle::thread::spawn(move || {
                    x.fetch_add(1, Ordering::Relaxed);
                    x.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::Relaxed), 4);
    });
    assert!(report.exhaustive);
    assert!(
        report.executions > 1,
        "concurrent RMWs must branch the search"
    );
}

#[test]
fn release_acquire_publication_always_visible() {
    let report = check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = shuttle::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "publish must carry data");
        }
        t.join().unwrap();
    });
    assert!(report.exhaustive);
}

#[test]
fn fence_based_publication_always_visible() {
    use shuttle::sync::atomic::fence;
    let report = check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = shuttle::thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 7, "fences must carry data");
        }
        t.join().unwrap();
    });
    assert!(report.exhaustive);
}

#[test]
fn relaxed_publication_stale_read_is_explored() {
    // With a relaxed publish the reader may see flag == 1 but stale data;
    // the explorer must enumerate that visibility choice.
    let stale = Arc::new(StdAtomicU64::new(0));
    let stale2 = Arc::clone(&stale);
    let report = check(move || {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = shuttle::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 && data.load(Ordering::Relaxed) == 0 {
            stale2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        t.join().unwrap();
    });
    assert!(report.exhaustive);
    assert!(
        stale.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the stale-read behavior relaxed ordering permits was never explored"
    );
}

#[test]
fn relaxed_publication_assert_is_caught() {
    let msg = expect_failure(Config::default(), || {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = shuttle::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(msg.contains("failed"), "unexpected panic message: {msg}");
}

#[test]
fn interference_found_within_bound_only() {
    // Each thread does two fetch_adds and asserts nobody slipped between
    // them. RMWs always read the newest store, so the violation needs a
    // genuine preemption: unreachable at bound 0 (threads run atomically),
    // found at the default bound.
    let body = || {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                shuttle::thread::spawn(move || {
                    let a = x.fetch_add(1, Ordering::Relaxed);
                    let b = x.fetch_add(1, Ordering::Relaxed);
                    assert_eq!(b, a + 1, "another thread's add slipped in between");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::Relaxed), 4);
    };
    let report = check_with(
        Config {
            preemption_bound: 0,
            ..Config::default()
        },
        body,
    );
    assert!(report.exhaustive);
    let msg = expect_failure(Config::default(), body);
    assert!(msg.contains("failed"), "unexpected panic message: {msg}");
}

#[test]
fn spin_loop_trips_operation_budget() {
    let msg = expect_failure(
        Config {
            max_ops_per_execution: 200,
            ..Config::default()
        },
        || {
            let x = AtomicU64::new(0);
            while x.load(Ordering::Relaxed) == 0 {}
        },
    );
    assert!(
        msg.contains("operation budget"),
        "unexpected message: {msg}"
    );
}

#[test]
fn compare_exchange_contended_cas_loop_is_linearizable() {
    let report = check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                shuttle::thread::spawn(move || loop {
                    let v = x.load(Ordering::Relaxed);
                    if x.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::Relaxed), 2);
    });
    assert!(report.exhaustive);
}

#[test]
fn random_phase_runs_after_dfs() {
    let report = check_with(
        Config {
            random_samples: 25,
            ..Config::default()
        },
        || {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = shuttle::thread::spawn(move || {
                x2.fetch_add(1, Ordering::Relaxed);
            });
            x.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::Relaxed), 2);
        },
    );
    assert!(report.exhaustive);
    assert_eq!(report.random_samples, 25);
}

#[test]
fn outside_check_everything_falls_back_to_std() {
    // No execution context: the instrumented types must behave as plain
    // std atomics (this is what keeps ordinary tests green under
    // --cfg ses_shuttle).
    let x = AtomicU64::new(1);
    assert_eq!(x.load(Ordering::SeqCst), 1);
    x.store(5, Ordering::SeqCst);
    assert_eq!(x.swap(9, Ordering::SeqCst), 5);
    assert_eq!(x.fetch_add(1, Ordering::SeqCst), 9);
    assert_eq!(
        x.compare_exchange(10, 11, Ordering::SeqCst, Ordering::SeqCst),
        Ok(10)
    );
    let t = shuttle::thread::spawn(|| 7u32);
    assert_eq!(t.join().unwrap(), 7);
    shuttle::thread::yield_now();
    shuttle::sync::atomic::fence(Ordering::SeqCst);
}

/// Mutation self-test: weakening release *stores* must make the correct
/// release/acquire protocol fail. Runs `#[ignore]`d because the weaken
/// flag is process-global and would poison concurrently running tests;
/// CI runs it alone via `cargo test -p shuttle -- --ignored`.
#[test]
#[ignore = "mutates process-global model semantics; run alone via -- --ignored"]
fn mutation_weakened_release_store_defeats_publication() {
    shuttle::model::set_weaken_release_stores(true);
    let msg = expect_failure(Config::default(), || {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = shuttle::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release); // weakened to Relaxed by the mutation
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    shuttle::model::set_weaken_release_stores(false);
    assert!(msg.contains("failed"), "unexpected panic message: {msg}");
}
