//! Instrumented stand-ins for `std::thread::{spawn, JoinHandle, yield_now}`.
//!
//! Inside a [`crate::check`] execution, `spawn` registers a *model* thread
//! with the explorer (spawn and join are decision points and
//! happens-before edges); outside one, everything falls through to std.

use crate::exec::{self, current_ctx, Execution};
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Model {
        exec: Arc<Execution>,
        target: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
    Std(std::thread::JoinHandle<T>),
}

/// `std::thread::JoinHandle` drop-in.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// `join` drop-in. Inside an execution this blocks the calling model
    /// thread until the target finishes and joins its vector clock (the
    /// same synchronizes-with edge real `join` provides).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, target, slot } => {
                let ctx = current_ctx()
                    .filter(|c| Arc::ptr_eq(&c.exec, &exec))
                    .expect("model JoinHandle joined outside its execution");
                exec::model_join(&ctx, target);
                let v = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread stored its result");
                Ok(v)
            }
        }
    }
}

/// `std::thread::spawn` drop-in.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some(ctx) => {
            let (target, slot) = exec::model_spawn(&ctx, f);
            JoinHandle {
                inner: Inner::Model {
                    exec: ctx.exec,
                    target,
                    slot,
                },
            }
        }
    }
}

/// `std::thread::yield_now` drop-in: a pure decision point inside an
/// execution (lets the DFS switch threads with no memory effect).
pub fn yield_now() {
    match current_ctx() {
        Some(ctx) => exec::model_yield(&ctx),
        None => std::thread::yield_now(),
    }
}
