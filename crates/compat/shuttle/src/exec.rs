//! The explorer: serialized execution, DFS over scheduling + visibility
//! choices, and the vector-clock happens-before model.
//!
//! One [`Execution`] is shared by every model thread of one [`check`] call.
//! Exactly one model thread runs at a time; the baton is handed over a
//! condvar. Each instrumented operation calls [`schedule`], which may
//! branch the search (context switch) before the operation's own effect —
//! and loads additionally branch on *which* store they observe, which is
//! where weak-memory staleness comes from.
//!
//! Happens-before is tracked with fixed-size vector clocks
//! ([`MAX_THREADS`] lanes). Every store remembers its writer, the writer's
//! event stamp, and a *release clock* (what an acquire-reader inherits):
//! the writer's full clock for `Release`-or-stronger stores, the clock at
//! the writer's last release *fence* for relaxed stores sequenced after
//! one, and nothing otherwise. A load may observe any store not superseded
//! by happens-before: the visible window starts at the newest store that
//! happens-before the reader (or the reader's own previous read of the
//! location, whichever is later — per-location coherence) and extends to
//! the newest store.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Vector-clock width: the most model threads one execution may spawn.
pub(crate) const MAX_THREADS: usize = 8;

/// A fixed-width vector clock; lane `i` counts thread `i`'s events.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock(pub(crate) [u64; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// One store in a location's modification order.
#[derive(Clone, Copy)]
struct StoreElem {
    value: u64,
    writer: usize,
    /// The writer's event stamp at the store: `clock[writer] >= stamp`
    /// means this store happens-before the clock's owner.
    stamp: u64,
    /// What an acquire-reader (or a relaxed reader followed by an acquire
    /// fence) joins into its clock.
    release: VClock,
}

/// Per-location model state, embedded in every instrumented atomic.
struct LocState {
    /// Execution generation this state belongs to; stale state is reset
    /// from the std value (statics survive across executions).
    gen: u64,
    /// Modification order (serialized execution order of stores).
    stores: Vec<StoreElem>,
    /// Per-thread coherence floor: the newest store index each thread has
    /// already observed (reads never go backwards per location).
    last_read: [usize; MAX_THREADS],
}

/// The model state carried by every instrumented atomic, alongside its
/// plain std value (used outside executions and to seed fresh ones).
pub(crate) struct Loc {
    state: Mutex<LocState>,
}

impl Loc {
    pub(crate) const fn new() -> Self {
        Self {
            state: Mutex::new(LocState {
                gen: 0,
                stores: Vec::new(),
                last_read: [0; MAX_THREADS],
            }),
        }
    }
}

/// Explorer configuration; see the crate docs for the search strategy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Max context switches away from a still-runnable thread per
    /// execution; the DFS is exhaustive within this bound.
    pub preemption_bound: usize,
    /// Safety valve on the DFS: stop (non-exhaustively) after this many
    /// executions instead of running forever on a too-large state space.
    pub max_executions: u64,
    /// Per-execution operation budget; exceeding it fails the check
    /// (livelock / unbounded loop in the test body).
    pub max_ops_per_execution: u64,
    /// Extra seeded pseudo-random executions with *unbounded* preemptions,
    /// run after the DFS as a lottery over schedules beyond the bound.
    pub random_samples: u64,
    /// Seed for the random phase.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_executions: 2_000_000,
            max_ops_per_execution: 50_000,
            random_samples: 0,
            seed: 0x5e5_c0de,
        }
    }
}

/// What a completed [`check`] explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// DFS executions run.
    pub executions: u64,
    /// Whether the DFS enumerated every schedule within the preemption
    /// bound (false only if `max_executions` cut it short).
    pub exhaustive: bool,
    /// Random-phase executions run after the DFS.
    pub random_samples: u64,
}

/// One DFS decision: `taken` of `options` alternatives.
#[derive(Debug, Clone, Copy)]
struct Choice {
    taken: usize,
    options: usize,
}

enum Mode {
    /// Replay the stack prefix, then extend with first-choice defaults.
    Dfs { stack: Vec<Choice>, cursor: usize },
    /// Seeded pseudo-random choices, no preemption bound.
    Random(u64),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedOn(usize),
    Finished,
}

struct ThreadSt {
    clock: VClock,
    /// Release clocks of stores observed by relaxed loads since the last
    /// acquire fence — an acquire fence joins this into `clock`.
    acq_pending: VClock,
    /// Clock at the last release fence: relaxed stores sequenced after it
    /// carry it as their release clock.
    rel_fence: Option<VClock>,
    status: Status,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        Self {
            clock,
            acq_pending: VClock::default(),
            rel_fence: None,
            status: Status::Runnable,
        }
    }
}

struct ExecState {
    gen: u64,
    mode: Mode,
    threads: Vec<ThreadSt>,
    active: usize,
    preemptions: usize,
    ops: u64,
    finished: usize,
    failure: Option<String>,
    abort: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    cfg: Config,
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// The calling thread's model identity, if it belongs to an execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Monotone across every execution of the whole process, so statics with
/// stale location state are detected and reseeded.
static EXEC_GEN: StdAtomicU64 = StdAtomicU64::new(0);

/// Mutation knob: treat `Release`-or-stronger *stores* as `Relaxed`
/// (release *fences* keep their semantics). Used by mutation harnesses to
/// prove the explorer catches a removed publish ordering.
static WEAKEN_RELEASE_STORES: StdAtomicBool = StdAtomicBool::new(false);

/// Enables/disables the release-store weakening mutation. Only meaningful
/// around a [`check`] call; never leave it set — it poisons every
/// execution in the process (mutation tests run `#[ignore]`d and alone).
pub fn set_weaken_release_stores(on: bool) {
    WEAKEN_RELEASE_STORES.store(on, Ordering::SeqCst);
}

/// Panic payload used to unwind model threads when an execution aborts;
/// the panic hook installed by [`check`] suppresses its default printout.
struct AbortToken;

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortToken)
}

fn lock_state(exec: &Execution) -> MutexGuard<'_, ExecState> {
    // A model thread that panicked (assertion failure — the point of the
    // tool) poisons this mutex; keep operating on the inner state.
    exec.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn record_failure(st: &mut ExecState, msg: String) {
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    st.abort = true;
}

/// Picks one of `options` alternatives at the current decision point.
fn choose(exec: &Execution, st: &mut ExecState, options: usize) -> usize {
    debug_assert!(options >= 1);
    if options == 1 {
        return 0;
    }
    // (at-index, previous option count) when a replay diverges.
    let mismatch: (usize, usize);
    match &mut st.mode {
        Mode::Dfs { stack, cursor } => {
            let at = *cursor;
            if at < stack.len() {
                let c = stack[at];
                if c.options == options {
                    *cursor += 1;
                    return c.taken;
                }
                mismatch = (at, c.options);
            } else {
                stack.push(Choice { taken: 0, options });
                *cursor += 1;
                return 0;
            }
        }
        Mode::Random(s) => {
            // splitmix64 step.
            *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            return ((z ^ (z >> 31)) % options as u64) as usize;
        }
    }
    let (at, prev) = mismatch;
    record_failure(
        st,
        format!(
            "nondeterministic test body: decision {at} had {options} options on replay, {prev} before"
        ),
    );
    exec.cv.notify_all();
    // The caller's guard unlocks as this unwinds past it.
    abort_unwind();
}

/// Threads blocked on a join whose target has finished become runnable.
fn promote_unblocked(st: &mut ExecState) {
    for i in 0..st.threads.len() {
        if let Status::BlockedOn(t) = st.threads[i].status {
            if st.threads[t].status == Status::Finished {
                st.threads[i].status = Status::Runnable;
            }
        }
    }
}

fn runnable_ids(st: &ExecState) -> Vec<usize> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect()
}

/// Blocks until `active == tid` again (after this thread handed the baton
/// to `next`). Unwinds if the execution aborts meanwhile.
fn wait_for_turn<'a>(
    exec: &'a Execution,
    mut st: MutexGuard<'a, ExecState>,
    tid: usize,
) -> MutexGuard<'a, ExecState> {
    loop {
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if st.active == tid && st.threads[tid].status == Status::Runnable {
            return st;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The decision point before every instrumented operation: counts the op,
/// branches on which runnable thread proceeds (bounded preemption), and
/// returns with the state locked and the calling thread active.
fn schedule<'a>(exec: &'a Execution, tid: usize) -> MutexGuard<'a, ExecState> {
    let mut st = lock_state(exec);
    if st.abort {
        drop(st);
        abort_unwind();
    }
    st.ops += 1;
    if st.ops > exec.cfg.max_ops_per_execution {
        record_failure(
            &mut st,
            format!(
                "operation budget ({}) exceeded — livelock or unbounded loop in the test body",
                exec.cfg.max_ops_per_execution
            ),
        );
        exec.cv.notify_all();
        drop(st);
        abort_unwind();
    }
    promote_unblocked(&mut st);
    let runnable = runnable_ids(&st);
    debug_assert!(
        runnable.contains(&tid),
        "scheduling thread must be runnable"
    );
    let unbounded = matches!(st.mode, Mode::Random(_));
    let may_preempt = unbounded || st.preemptions < exec.cfg.preemption_bound;
    let next = if may_preempt && runnable.len() > 1 {
        // Option 0 = stay on the current thread; >0 = preempt.
        let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != tid).collect();
        let pick = choose(exec, &mut st, 1 + others.len());
        if pick == 0 {
            tid
        } else {
            others[pick - 1]
        }
    } else {
        tid
    };
    if next == tid {
        return st;
    }
    st.preemptions += 1;
    st.active = next;
    exec.cv.notify_all();
    wait_for_turn(exec, st, tid)
}

/// Marks `tid` finished and hands the baton onward (or completes the
/// execution). Called on the thread's normal exit.
fn finish_thread(exec: &Execution, tid: usize) {
    let mut st = lock_state(exec);
    st.threads[tid].status = Status::Finished;
    st.finished += 1;
    if st.abort {
        exec.cv.notify_all();
        return;
    }
    promote_unblocked(&mut st);
    let runnable = runnable_ids(&st);
    if runnable.is_empty() {
        if st.finished < st.threads.len() {
            record_failure(
                &mut st,
                "deadlock: every live thread is blocked on a join".to_owned(),
            );
        }
    } else {
        // Switching away from a finished thread is free (not a preemption).
        let pick = choose(exec, &mut st, runnable.len());
        st.active = runnable[pick];
    }
    exec.cv.notify_all();
}

/// Marks `tid` finished without scheduling (abort paths).
fn finish_quiet(exec: &Execution, tid: usize) {
    let mut st = lock_state(exec);
    if st.threads[tid].status != Status::Finished {
        st.threads[tid].status = Status::Finished;
        st.finished += 1;
    }
    exec.cv.notify_all();
}

fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn lock_loc(loc: &Loc) -> MutexGuard<'_, LocState> {
    loc.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn init_loc(l: &mut LocState, gen: u64, std_val: &StdAtomicU64) {
    if l.gen != gen {
        l.gen = gen;
        l.stores.clear();
        // The initial value happens-before everything (stamp 0 is always
        // covered): objects reach other threads through a real sync edge
        // (Arc publication, spawn), which the spawn clock models.
        l.stores.push(StoreElem {
            value: std_val.load(Ordering::Relaxed),
            writer: 0,
            stamp: 0,
            release: VClock::default(),
        });
        l.last_read = [0; MAX_THREADS];
    }
}

/// The release clock a new store publishes: the writer's full clock for a
/// (non-weakened) release store, the last release-fence clock for a
/// relaxed store after a fence, nothing otherwise. `carry` seeds release
/// sequences (RMWs pass through the clock of the store they replaced).
fn store_release_clock(t: &ThreadSt, ord: Ordering, carry: Option<&VClock>) -> VClock {
    let mut release = carry.copied().unwrap_or_default();
    let weakened = WEAKEN_RELEASE_STORES.load(Ordering::Relaxed);
    if is_release(ord) && !weakened {
        release.join(&t.clock);
    } else if let Some(fc) = &t.rel_fence {
        release.join(fc);
    }
    release
}

/// Instrumented load: branch on the observable store, join release clocks
/// per the ordering.
pub(crate) fn op_load(ctx: &Ctx, loc: &Loc, std_val: &StdAtomicU64, ord: Ordering) -> u64 {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let mut l = lock_loc(loc);
    init_loc(&mut l, st.gen, std_val);
    let me = ctx.tid;
    // The visible window: from the newest store that happens-before this
    // thread (or its own coherence floor) to the newest store.
    let mut floor = l.last_read[me];
    for i in (0..l.stores.len()).rev() {
        let s = &l.stores[i];
        if st.threads[me].clock.0[s.writer] >= s.stamp {
            floor = floor.max(i);
            break;
        }
    }
    let options = l.stores.len() - floor;
    let idx = floor + choose(&ctx.exec, &mut st, options);
    let s = l.stores[idx];
    l.last_read[me] = idx;
    let t = &mut st.threads[me];
    t.clock.0[me] += 1;
    if is_acquire(ord) {
        t.clock.join(&s.release);
    }
    t.acq_pending.join(&s.release);
    s.value
}

/// Instrumented store: appends to the modification order with the release
/// clock the ordering (or a prior release fence) grants it.
pub(crate) fn op_store(ctx: &Ctx, loc: &Loc, std_val: &StdAtomicU64, value: u64, ord: Ordering) {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let mut l = lock_loc(loc);
    init_loc(&mut l, st.gen, std_val);
    let me = ctx.tid;
    let t = &mut st.threads[me];
    t.clock.0[me] += 1;
    let elem = StoreElem {
        value,
        writer: me,
        stamp: t.clock.0[me],
        release: store_release_clock(t, ord, None),
    };
    l.stores.push(elem);
    std_val.store(value, Ordering::Relaxed);
}

/// Instrumented read-modify-write: atomically reads the *newest* store
/// (that is what makes it an RMW) and appends its replacement, continuing
/// the release sequence of the store it replaced.
pub(crate) fn op_rmw(
    ctx: &Ctx,
    loc: &Loc,
    std_val: &StdAtomicU64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let mut l = lock_loc(loc);
    init_loc(&mut l, st.gen, std_val);
    let me = ctx.tid;
    let read = *l.stores.last().expect("location always has a store");
    let t = &mut st.threads[me];
    t.clock.0[me] += 1;
    if is_acquire(ord) {
        t.clock.join(&read.release);
    }
    t.acq_pending.join(&read.release);
    let elem = StoreElem {
        value: f(read.value),
        writer: me,
        stamp: t.clock.0[me],
        release: store_release_clock(t, ord, Some(&read.release)),
    };
    let value = elem.value;
    l.stores.push(elem);
    l.last_read[me] = l.stores.len() - 1;
    std_val.store(value, Ordering::Relaxed);
    read.value
}

/// Instrumented compare-exchange over the newest store.
pub(crate) fn op_cas(
    ctx: &Ctx,
    loc: &Loc,
    std_val: &StdAtomicU64,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let mut l = lock_loc(loc);
    init_loc(&mut l, st.gen, std_val);
    let me = ctx.tid;
    let read = *l.stores.last().expect("location always has a store");
    let t = &mut st.threads[me];
    t.clock.0[me] += 1;
    let ord = if read.value == current {
        success
    } else {
        failure
    };
    if is_acquire(ord) {
        t.clock.join(&read.release);
    }
    t.acq_pending.join(&read.release);
    l.last_read[me] = l.stores.len() - 1;
    if read.value != current {
        return Err(read.value);
    }
    let elem = StoreElem {
        value: new,
        writer: me,
        stamp: t.clock.0[me],
        release: store_release_clock(t, success, Some(&read.release)),
    };
    l.stores.push(elem);
    l.last_read[me] = l.stores.len() - 1;
    std_val.store(new, Ordering::Relaxed);
    Ok(read.value)
}

/// Instrumented fence: an acquire fence upgrades every relaxed load since
/// the last one, a release fence arms every relaxed store until the next.
pub(crate) fn op_fence(ctx: &Ctx, ord: Ordering) {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let me = ctx.tid;
    let t = &mut st.threads[me];
    t.clock.0[me] += 1;
    if is_acquire(ord) {
        let pending = t.acq_pending;
        t.clock.join(&pending);
    }
    if is_release(ord) {
        t.rel_fence = Some(t.clock);
    }
}

/// Registers a new model thread and starts its OS thread (which waits for
/// the baton). The spawn itself is a decision point.
pub(crate) fn model_spawn<F, T>(ctx: &Ctx, f: F) -> (usize, Arc<Mutex<Option<T>>>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let mut st = schedule(&ctx.exec, ctx.tid);
    let tid_new = st.threads.len();
    if tid_new >= MAX_THREADS {
        record_failure(
            &mut st,
            format!("more than {MAX_THREADS} model threads spawned"),
        );
        ctx.exec.cv.notify_all();
        drop(st);
        abort_unwind();
    }
    let me = ctx.tid;
    st.threads[me].clock.0[me] += 1;
    let mut child_clock = st.threads[me].clock;
    child_clock.0[tid_new] += 1;
    st.threads.push(ThreadSt::new(child_clock));
    let exec = Arc::clone(&ctx.exec);
    let slot2 = Arc::clone(&slot);
    let handle = std::thread::Builder::new()
        .name(format!("shuttle-{tid_new}"))
        .spawn(move || runner(exec, tid_new, f, slot2))
        .expect("spawn model thread");
    st.os_handles.push(handle);
    (tid_new, slot)
}

/// The spawned OS thread's body: wait for the first baton, run the model
/// thread's closure, store its value, hand the baton on.
fn runner<F, T>(exec: Arc<Execution>, tid: usize, f: F, slot: Arc<Mutex<Option<T>>>)
where
    F: FnOnce() -> T,
{
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    let first = {
        let st = lock_state(&exec);
        // catch_unwind so an abort during the initial wait still cleans up.
        catch_unwind(AssertUnwindSafe(|| {
            drop(wait_for_turn(&exec, st, tid));
        }))
    };
    if first.is_ok() {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                finish_thread(&exec, tid);
            }
            Err(p) => {
                if p.downcast_ref::<AbortToken>().is_none() {
                    let mut st = lock_state(&exec);
                    record_failure(
                        &mut st,
                        format!("model thread {tid} panicked: {}", payload_to_string(&*p)),
                    );
                    exec.cv.notify_all();
                }
                finish_quiet(&exec, tid);
            }
        }
    } else {
        finish_quiet(&exec, tid);
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Blocks the calling model thread until `target` finishes, then joins its
/// clock (the sync edge `JoinHandle::join` provides).
pub(crate) fn model_join(ctx: &Ctx, target: usize) {
    let mut st = schedule(&ctx.exec, ctx.tid);
    let me = ctx.tid;
    if st.threads[target].status != Status::Finished {
        st.threads[me].status = Status::BlockedOn(target);
        let runnable = runnable_ids(&st);
        if runnable.is_empty() {
            record_failure(
                &mut st,
                "deadlock: every live thread is blocked on a join".to_owned(),
            );
            ctx.exec.cv.notify_all();
            drop(st);
            abort_unwind();
        }
        // Blocking is not a preemption: the thread cannot continue.
        let pick = choose(&ctx.exec, &mut st, runnable.len());
        st.active = runnable[pick];
        ctx.exec.cv.notify_all();
        st = wait_for_turn(&ctx.exec, st, me);
    }
    let tclock = st.threads[target].clock;
    let t = &mut st.threads[me];
    t.clock.join(&tclock);
    t.clock.0[me] += 1;
}

/// A plain decision point with no memory effect (`thread::yield_now`).
pub(crate) fn model_yield(ctx: &Ctx) {
    drop(schedule(&ctx.exec, ctx.tid));
}

/// Suppresses the default panic printout for [`AbortToken`] unwinds
/// (installed once per process; delegates everything else).
fn install_quiet_abort_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs the body once under `mode`; returns the mode (with the choice
/// stack grown by this run) and the failure, if any.
fn run_one<F: Fn()>(exec: &Arc<Execution>, mode: Mode, f: &F) -> (Mode, Option<String>) {
    {
        let mut st = lock_state(exec);
        st.gen = EXEC_GEN.fetch_add(1, Ordering::Relaxed) + 1;
        st.mode = mode;
        st.threads.clear();
        let mut main_clock = VClock::default();
        main_clock.0[0] = 1;
        st.threads.push(ThreadSt::new(main_clock));
        st.active = 0;
        st.preemptions = 0;
        st.ops = 0;
        st.finished = 0;
        st.failure = None;
        st.abort = false;
        debug_assert!(st.os_handles.is_empty());
    }
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(exec),
            tid: 0,
        })
    });
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => finish_thread(exec, 0),
        Err(p) => {
            if p.downcast_ref::<AbortToken>().is_none() {
                let mut st = lock_state(exec);
                record_failure(
                    &mut st,
                    format!("main thread panicked: {}", payload_to_string(&*p)),
                );
                exec.cv.notify_all();
            }
            finish_quiet(exec, 0);
        }
    }
    // Wait for every model thread (normal or unwinding) to finish, then
    // reap the OS threads so the next execution starts clean.
    let handles = {
        let mut st = lock_state(exec);
        while st.finished < st.threads.len() {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = lock_state(exec);
    let failure = st.failure.take();
    let mode = std::mem::replace(&mut st.mode, Mode::Random(0));
    (mode, failure)
}

/// Explores `f` under the default [`Config`]; panics on the first failing
/// schedule. See the crate docs.
pub fn check<F: Fn()>(f: F) -> Report {
    check_with(Config::default(), f)
}

/// Explores `f` under `cfg`: exhaustive bounded-preemption DFS, then the
/// optional random phase. Panics (with the failing choice path) on the
/// first execution whose body panics, deadlocks, or exceeds its budget.
pub fn check_with<F: Fn()>(cfg: Config, f: F) -> Report {
    assert!(
        current_ctx().is_none(),
        "shuttle::check may not be nested inside another check"
    );
    install_quiet_abort_hook();
    let exec = Arc::new(Execution {
        cfg: cfg.clone(),
        state: Mutex::new(ExecState {
            gen: 0,
            mode: Mode::Random(0),
            threads: Vec::new(),
            active: 0,
            preemptions: 0,
            ops: 0,
            finished: 0,
            failure: None,
            abort: false,
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let mut stack: Vec<Choice> = Vec::new();
    let mut executions = 0u64;
    let mut exhaustive = true;
    loop {
        executions += 1;
        let (mode, failure) = run_one(
            &exec,
            Mode::Dfs {
                stack: std::mem::take(&mut stack),
                cursor: 0,
            },
            &f,
        );
        if let Mode::Dfs { stack: s, .. } = mode {
            stack = s;
        }
        if let Some(msg) = failure {
            let path: Vec<usize> = stack.iter().map(|c| c.taken).collect();
            panic!(
                "shuttle: execution {executions} failed: {msg}\n  \
                 choice path {path:?} (re-run with the same Config to reproduce)"
            );
        }
        loop {
            match stack.last_mut() {
                None => break,
                Some(c) if c.taken + 1 < c.options => {
                    c.taken += 1;
                    break;
                }
                Some(_) => {
                    stack.pop();
                }
            }
        }
        if stack.is_empty() {
            break;
        }
        if executions >= cfg.max_executions {
            exhaustive = false;
            break;
        }
    }
    let mut rng = cfg.seed | 1;
    for i in 0..cfg.random_samples {
        let (_, failure) = run_one(&exec, Mode::Random(rng), &f);
        rng = rng.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        if let Some(msg) = failure {
            panic!(
                "shuttle: random sample {i} (of {}) failed: {msg}",
                cfg.random_samples
            );
        }
    }
    Report {
        executions,
        exhaustive,
        random_samples: cfg.random_samples,
    }
}
