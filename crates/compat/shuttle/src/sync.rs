//! Instrumented drop-ins for `std::sync::atomic`.
//!
//! Each atomic pairs a plain std atomic (the authoritative value outside
//! executions, and the seed when an execution first touches the location)
//! with the explorer's per-location model state. Inside a [`crate::check`]
//! execution every operation is a decision point; outside one, every
//! operation falls straight through to the std atomic, so the same binary
//! runs ordinary tests unchanged.
//!
//! ## The memory model, in one paragraph
//!
//! Stores append to a per-location history. A load does *not* simply see
//! the newest store: it may observe any store from its visible window —
//! everything from the newest store that happens-before the loading
//! thread (or the thread's own latest read of that location, whichever is
//! newer) up to the newest store — and the choice is a DFS branch. A
//! `Release` store carries the writer's vector clock; an `Acquire` load
//! that observes it joins that clock (the classic release/acquire edge).
//! Relaxed stores after a `fence(Release)` carry the fence-time clock;
//! `fence(Acquire)` retroactively upgrades earlier relaxed loads. RMWs
//! always operate on the newest store (that is their atomicity) and
//! continue release sequences. `SeqCst` is modeled as `AcqRel`.

use crate::exec::{self, current_ctx, Loc};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Atomic memory orderings, re-exported from std so call sites switch
/// between std and shuttle by changing only the type imports.
pub use std::sync::atomic::Ordering;

/// `std::sync::atomic::fence` drop-in; a decision point inside executions.
pub fn fence(order: Ordering) {
    match current_ctx() {
        Some(ctx) => exec::op_fence(&ctx, order),
        None => std::sync::atomic::fence(order),
    }
}

/// The shared core: every instrumented atomic is a `u64` cell plus model
/// state, with narrower types converting at the API boundary.
struct Cell {
    std: StdAtomicU64,
    loc: Loc,
}

impl Cell {
    const fn new(v: u64) -> Self {
        Self {
            std: StdAtomicU64::new(v),
            loc: Loc::new(),
        }
    }

    fn load(&self, order: Ordering) -> u64 {
        match current_ctx() {
            Some(ctx) => exec::op_load(&ctx, &self.loc, &self.std, order),
            None => self.std.load(order),
        }
    }

    fn store(&self, val: u64, order: Ordering) {
        match current_ctx() {
            Some(ctx) => exec::op_store(&ctx, &self.loc, &self.std, val, order),
            None => self.std.store(val, order),
        }
    }

    fn rmw(
        &self,
        order: Ordering,
        model: impl FnOnce(u64) -> u64,
        std: impl FnOnce(&StdAtomicU64) -> u64,
    ) -> u64 {
        match current_ctx() {
            Some(ctx) => exec::op_rmw(&ctx, &self.loc, &self.std, order, model),
            None => std(&self.std),
        }
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match current_ctx() {
            Some(ctx) => exec::op_cas(&ctx, &self.loc, &self.std, current, new, success, failure),
            None => self.std.compare_exchange(current, new, success, failure),
        }
    }
}

macro_rules! forward_common {
    ($native:ty) => {
        /// `load` drop-in.
        pub fn load(&self, order: Ordering) -> $native {
            self.cell.load(order) as $native
        }

        /// `store` drop-in.
        pub fn store(&self, val: $native, order: Ordering) {
            self.cell.store(val as u64, order);
        }

        /// `swap` drop-in.
        pub fn swap(&self, val: $native, order: Ordering) -> $native {
            self.cell
                .rmw(order, |_| val as u64, |s| s.swap(val as u64, order)) as $native
        }

        /// `fetch_add` drop-in (wrapping, like std).
        pub fn fetch_add(&self, val: $native, order: Ordering) -> $native {
            self.cell.rmw(
                order,
                |v| (v as $native).wrapping_add(val) as u64,
                |s| s.fetch_add(val as u64, order),
            ) as $native
        }

        /// `fetch_sub` drop-in (wrapping, like std).
        pub fn fetch_sub(&self, val: $native, order: Ordering) -> $native {
            self.cell.rmw(
                order,
                |v| (v as $native).wrapping_sub(val) as u64,
                |s| s.fetch_sub(val as u64, order),
            ) as $native
        }

        /// `fetch_max` drop-in.
        pub fn fetch_max(&self, val: $native, order: Ordering) -> $native {
            self.cell.rmw(
                order,
                |v| (v as $native).max(val) as u64,
                |s| s.fetch_max(val as u64, order),
            ) as $native
        }

        /// `fetch_min` drop-in.
        pub fn fetch_min(&self, val: $native, order: Ordering) -> $native {
            self.cell.rmw(
                order,
                |v| (v as $native).min(val) as u64,
                |s| s.fetch_min(val as u64, order),
            ) as $native
        }

        /// `compare_exchange` drop-in.
        pub fn compare_exchange(
            &self,
            current: $native,
            new: $native,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$native, $native> {
            self.cell
                .compare_exchange(current as u64, new as u64, success, failure)
                .map(|v| v as $native)
                .map_err(|v| v as $native)
        }

        /// `compare_exchange_weak` drop-in (never fails spuriously here —
        /// removing behaviors from the model is sound, adding none).
        pub fn compare_exchange_weak(
            &self,
            current: $native,
            new: $native,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$native, $native> {
            self.compare_exchange(current, new, success, failure)
        }
    };
}

/// `std::sync::atomic::AtomicU64` drop-in.
pub struct AtomicU64 {
    cell: Cell,
}

impl AtomicU64 {
    /// `const`-constructible, like std (required for statics).
    pub const fn new(v: u64) -> Self {
        Self { cell: Cell::new(v) }
    }

    forward_common!(u64);
}

impl Default for AtomicU64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Peek the std value without a model decision point, like std's impl.
        f.debug_tuple("AtomicU64")
            .field(&self.cell.std.load(StdOrdering::Relaxed))
            .finish()
    }
}

/// `std::sync::atomic::AtomicUsize` drop-in.
pub struct AtomicUsize {
    cell: Cell,
}

impl AtomicUsize {
    /// `const`-constructible, like std (required for statics).
    pub const fn new(v: usize) -> Self {
        Self {
            cell: Cell::new(v as u64),
        }
    }

    forward_common!(usize);
}

impl Default for AtomicUsize {
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Debug for AtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicUsize")
            .field(&(self.cell.std.load(StdOrdering::Relaxed) as usize))
            .finish()
    }
}

/// `std::sync::atomic::AtomicBool` drop-in.
pub struct AtomicBool {
    cell: Cell,
}

impl AtomicBool {
    /// `const`-constructible, like std (required for statics).
    pub const fn new(v: bool) -> Self {
        Self {
            cell: Cell::new(v as u64),
        }
    }

    /// `load` drop-in.
    pub fn load(&self, order: Ordering) -> bool {
        self.cell.load(order) != 0
    }

    /// `store` drop-in.
    pub fn store(&self, val: bool, order: Ordering) {
        self.cell.store(val as u64, order);
    }

    /// `swap` drop-in.
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        self.cell
            .rmw(order, |_| val as u64, |s| s.swap(val as u64, order))
            != 0
    }

    /// `compare_exchange` drop-in.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.cell
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&(self.cell.std.load(StdOrdering::Relaxed) != 0))
            .finish()
    }
}

/// Mirror of `std::sync::atomic` so facades can `pub use` a whole module.
pub mod atomic {
    pub use super::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
