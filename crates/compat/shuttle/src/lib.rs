//! # shuttle — a hand-rolled interleaving explorer for lock-free code
//!
//! An offline, std-only stand-in for a loom-style model checker (the name
//! nods at AWS's `shuttle`; the build environment has no crates.io access,
//! so this is written from scratch like the other `crates/compat` shims).
//! It exists to *prove* the workspace's lock-free layer — the seqlock span
//! rings and log-bucketed histograms in `ses-obs`, the shard gauges in
//! `ses-server` — instead of trusting empirical stress tests.
//!
//! ## How it works
//!
//! [`check`] runs a closure over and over. Inside the closure, every
//! operation on the instrumented types ([`sync::atomic`], [`thread`]) is a
//! *decision point*: the explorer serializes all model threads (exactly one
//! runs at a time, coordinated by baton-passing over a condvar) and at each
//! point consults a depth-first search over a persistent choice stack.
//! Two kinds of choices branch the search:
//!
//! * **scheduling** — which runnable thread executes the next operation.
//!   Context switches away from a still-runnable thread are *preemptions*
//!   and are bounded ([`Config::preemption_bound`]); within the bound the
//!   DFS is exhaustive, which is the classic iterative-context-bounding
//!   result that almost all concurrency bugs need only a few preemptions.
//! * **visibility** — which store a load observes. Each atomic location
//!   keeps its full store history with vector clocks; a load may read any
//!   store not superseded by happens-before (see [`sync::atomic`] for the
//!   memory model). This is what makes `Relaxed` vs `Release`/`Acquire`
//!   *observable*: weaken a publish store and the explorer will find the
//!   stale read the real memory model permits.
//!
//! Above the preemption bound, [`Config::random_samples`] adds seeded
//! pseudo-random executions (unbounded preemptions, random read choices)
//! as a cheap lottery over the schedules the DFS did not enumerate.
//!
//! ## Using it
//!
//! Code under test switches its atomics to a facade that resolves here
//! under `cfg(ses_shuttle)` (see `ses_obs::sync`). Outside a [`check`]
//! execution the instrumented types fall back to plain `std` atomics, so a
//! `--cfg ses_shuttle` build still runs its ordinary test suite unchanged.
//!
//! ```
//! use shuttle::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let report = shuttle::check(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let data = Arc::new(AtomicU64::new(0));
//!     let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
//!     let t = shuttle::thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         // Release/Acquire publication: 42 is guaranteed visible.
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! assert!(report.exhaustive);
//! ```
//!
//! Weaken the `Release` to `Relaxed` and [`check`] panics with the failing
//! schedule — the explorer finds the interleaving-plus-visibility choice
//! where the reader sees `flag == 1` but stale `data`.
//!
//! ## Model limitations (documented, deliberate)
//!
//! * Modification order is the serialized execution order of stores;
//!   weakness is modeled on the *read* side (stale visibility), which
//!   covers publication/ordering bugs but not store-reordering anomalies.
//! * `SeqCst` is treated as `AcqRel` (no global SC order), which only
//!   *adds* behaviors — safe for bug-finding, but code whose correctness
//!   needs the SC total order (Dekker-style mutual exclusion) will report
//!   false positives. Nothing in this workspace relies on SC-only order.
//! * Only the types in [`sync::atomic`] and [`thread`] are instrumented;
//!   `Mutex`/channels run on std and are invisible to the scheduler.

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{check, check_with, Config, Report};

/// Test-only knobs for *mutating* the modeled memory semantics, used to
/// prove the explorer actually catches weakened orderings.
pub mod model {
    pub use crate::exec::set_weaken_release_stores;
}
