//! Derive macros for the offline `serde` shim.
//!
//! Hand-rolled over raw `proc_macro` token trees (the offline build has no
//! `syn`/`quote`). Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields (`#[serde(skip)]` honored via `Default`,
//!   `#[serde(default)]` fills missing fields from `Default` on
//!   deserialization);
//! * tuple structs — single-field ones serialize as the inner value
//!   (newtype convention), `#[serde(transparent)]` accepted;
//! * enums with unit variants (as strings) and newtype variants
//!   (as single-entry objects, serde's external tagging).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    newtype: bool,
}

#[derive(Debug)]
enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

/// Returns serde attribute arguments (e.g. `["transparent"]`) if `group` is
/// the bracket body of a `#[serde(...)]` attribute, else `None`.
fn serde_attr_args(tokens: &[TokenTree]) -> Option<Vec<String>> {
    match tokens {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            Some(
                args.stream()
                    .into_iter()
                    .filter_map(|t| match t {
                        TokenTree::Ident(i) => Some(i.to_string()),
                        _ => None,
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Container attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(args) = serde_attr_args(&inner) {
                        if args.iter().any(|a| a == "transparent") {
                            transparent = true;
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde shim derive: expected struct or enum, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde shim derive: expected struct body, found {other:?}"),
        }
    };

    Item {
        name,
        transparent,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = false;
        // Field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(args) = serde_attr_args(&inner) {
                            if args.iter().any(|a| a == "skip") {
                                skip = true;
                            }
                            if args.iter().any(|a| a == "default") {
                                default = true;
                            }
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        i = skip_type(&tokens, i);
        fields.push(Field {
            name,
            skip,
            default,
        });
        // Consume the separating comma, if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Advances past one type, stopping at the first `,` outside angle brackets.
/// Returns the index of that comma (or the end of the tokens).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        // Parenthesized/bracketed parts of the type are single trees, so
        // only punctuation needs inspection.
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                '-' => {
                    // `->` in fn-pointer types: swallow the `>` too.
                    if let Some(TokenTree::Punct(q)) = tokens.get(i + 1) {
                        if q.as_char() == '>' {
                            i += 1;
                        }
                    }
                }
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Visibility on tuple fields.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let mut newtype = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde shim derive: variant `{enum_name}::{name}` has {n} fields; \
                         only unit and newtype variants are supported"
                    );
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde shim derive: struct variant `{enum_name}::{name}` is not supported");
            }
            _ => {}
        }
        // Skip an optional discriminant, then the comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

// ---- generation ------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert_eq!(
                    live.len(),
                    1,
                    "serde shim derive: #[serde(transparent)] on `{name}` needs exactly one \
                     non-skipped field"
                );
                format!("::serde::Serialize::to_value(&self.{})", live[0].name)
            } else {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in live {
                    s.push_str(&format!(
                        "fields.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(fields)");
                s
            }
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_owned(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{0}(inner) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(inner))]),\n",
                        v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{0} => \
                         ::serde::Value::String(::std::string::String::from(\"{0}\")),\n",
                        v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert_eq!(
                    live.len(),
                    1,
                    "serde shim derive: #[serde(transparent)] on `{name}` needs exactly one \
                     non-skipped field"
                );
                let mut inits =
                    format!("{}: ::serde::Deserialize::from_value(v)?,\n", live[0].name);
                for f in fields.iter().filter(|f| f.skip) {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                }
                format!("::core::result::Result::Ok({name} {{\n{inits}}})")
            } else {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::core::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        let on_missing = if f.default {
                            "::core::default::Default::default()".to_owned()
                        } else {
                            format!(
                                "return ::core::result::Result::Err(\
                                 ::serde::Error::missing_field(\"{}\"))",
                                f.name
                            )
                        };
                        inits.push_str(&format!(
                            "{0}: match v.get_field(\"{0}\") {{\n\
                             ::core::option::Option::Some(x) => \
                             ::serde::Deserialize::from_value(x)?,\n\
                             ::core::option::Option::None => {on_missing},\n\
                             }},\n",
                            f.name
                        ));
                    }
                }
                format!("::core::result::Result::Ok({name} {{\n{inits}}})")
            }
        }
        Kind::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::custom(\"wrong array length for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Unit => format!("::core::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                if v.newtype {
                    newtype_arms.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}(\
                         ::serde::Deserialize::from_value(val)?)),\n",
                        v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            let val_name = if newtype_arms.is_empty() {
                "_val"
            } else {
                "val"
            };
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (key, {val_name}) = &fields[0];\n\
                 match key.as_str() {{\n\
                 {newtype_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected {name} variant\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
