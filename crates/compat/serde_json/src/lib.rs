//! Offline drop-in subset of `serde_json`: JSON text encode/decode over the
//! serde shim's [`serde::Value`] tree.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so every
//! finite `f64` survives a write/parse cycle bit-for-bit; `u64`/`i64` are
//! written as integer literals and never go through `f64`.

#![warn(missing_docs)]

use serde::{Deserialize, Number, Serialize, Value};
use std::io::{Read, Write};

/// Encode/decode error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a `T` from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) if f.is_finite() => {
            // `{:?}` is the shortest string that round-trips the exact value.
            let _ = write!(out, "{f:?}");
        }
        // JSON has no NaN/∞; mirror serde_json's lossy-null fallback.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last digit
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at the
    /// `u`; on exit it is at the last hex digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        let f = 0.123_456_789_012_345_68_f64;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        let s = "hi \"there\"\n\tunicode: ✓";
        assert_eq!(from_str::<String>(&to_string(s).unwrap()).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.75)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,1.75]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let opt: Vec<Option<u8>> = vec![Some(3), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[3,null]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&json).unwrap(), opt);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        // Valid surrogate pair decodes; a high surrogate followed by a
        // non-low-surrogate `\u` escape (or nothing) must be a clean error,
        // not a debug-mode subtraction overflow.
        assert_eq!(
            from_str::<String>(r#""\ud83d\ude00""#).unwrap(),
            "\u{1F600}"
        );
        assert!(from_str::<String>(r#""\ud834\u0041""#).is_err());
        assert!(from_str::<String>(r#""\ud834A""#).is_err());
        assert!(from_str::<String>(r#""\ud834""#).is_err());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }
}
