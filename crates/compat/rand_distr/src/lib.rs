//! Offline drop-in subset of `rand_distr`: the [`Beta`], [`Poisson`] and
//! [`Zipf`] distributions used by the EBSN generator. Samplers are textbook
//! algorithms (Jöhnk for Beta, Knuth/normal-approximation for Poisson,
//! inverse-CDF for Zipf) — deterministic given the shim RNG, statistically
//! faithful, not bit-compatible with upstream.

#![warn(missing_docs)]

use rand::RngCore;

/// A distribution over `T`, sampleable with any RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The Beta(α, β) distribution on `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates `Beta(alpha, beta)`; both parameters must be positive finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, Error> {
        if alpha > 0.0 && beta > 0.0 && alpha.is_finite() && beta.is_finite() {
            Ok(Self { alpha, beta })
        } else {
            Err(Error("Beta parameters must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Jöhnk's algorithm: accept (U^(1/α), V^(1/β)) with X + Y ≤ 1.
        // Acceptance probability is fine for the small shape parameters the
        // generator uses (α, β ≤ ~5); bail out to the mean after many
        // rejections so adversarial parameters cannot hang a simulation.
        for _ in 0..10_000 {
            let x = rng.next_f64().powf(1.0 / self.alpha);
            let y = rng.next_f64().powf(1.0 / self.beta);
            let s = x + y;
            if s > 0.0 && s <= 1.0 {
                return x / s;
            }
        }
        self.alpha / (self.alpha + self.beta)
    }
}

/// The Poisson(λ) distribution (sampled as `f64` counts, like upstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates `Poisson(lambda)`; `lambda` must be positive finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Self { lambda })
        } else {
            Err(Error("Poisson lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction for large λ.
            let (u1, u2) = (rng.next_f64().max(f64::MIN_POSITIVE), rng.next_f64());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (self.lambda + self.lambda.sqrt() * z + 0.5)
                .floor()
                .max(0.0)
        }
    }
}

/// The Zipf distribution over `{1, …, n}` with exponent `s`
/// (`P(k) ∝ k^-s`), sampled as `f64` ranks like upstream.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[k-1] = P(X ≤ k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf over `{1, …, n}`; requires `n ≥ 1` and `s ≥ 0` finite.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error("Zipf n must be at least 1"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(Error("Zipf exponent must be finite and non-negative"));
        }
        if n > 16_000_000 {
            return Err(Error("Zipf n too large for the offline inverse-CDF shim"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_stays_in_unit_interval_with_plausible_mean() {
        let beta = Beta::new(2.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = beta.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_lambda_small_and_large() {
        for lambda in [0.7, 4.0, 60.0] {
            let p = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
            let mean = sum / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let z = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut first = 0usize;
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&k));
            if k == 1.0 {
                first += 1;
            }
        }
        assert!(first > 1_000, "rank 1 should dominate, got {first}");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }
}
