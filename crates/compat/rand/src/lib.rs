//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` the codebase actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen_bool`], [`Rng::gen`] for `f64`, and
//! [`seq::SliceRandom`] shuffling. The backend is xoshiro256** seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for
//! simulation workloads (it is **not** a cryptographic generator, and its
//! streams differ from upstream `rand`'s `StdRng`).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// A sample from the standard distribution of `T` (`f64`: uniform `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Marker for types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Streams are *not* bit-compatible with upstream `rand::rngs::StdRng`;
    /// they are stable across runs and platforms, which is what the tests,
    /// datagen pipelines and the simulator rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
            let w = rng.gen_range(10u64..=10);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
