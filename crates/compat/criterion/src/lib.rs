//! Offline drop-in subset of `criterion`: enough of the API for the
//! workspace's benches (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_with_input`, `Bencher::iter`).
//!
//! The harness is intentionally simple — a short warm-up followed by
//! per-sample wall-clock timing, reporting min/median/mean per iteration.
//! It has none of criterion's statistics, but the numbers are honest and the
//! API is source-compatible, so benches run unmodified with `cargo bench`.
//!
//! Passing `--test` (e.g. `cargo bench --bench engine -- --test`) mirrors
//! real criterion's smoke mode: every benchmark body runs exactly once,
//! untimed, and reports `ok` — CI uses this so bench code cannot silently
//! rot without paying for full sampling.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each invocation. In `--test` mode the
    /// body runs exactly once, untimed (a smoke check, not a measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.samples.clear();
            return;
        }
        // Warm-up (untimed).
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], test_mode: bool) {
    if test_mode {
        println!("bench {name:<50} ok (--test smoke mode, 1 iteration)");
        return;
    }
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {name:<50} median {:>12.3?}  mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        median,
        mean,
        min,
        samples.len()
    );
}

/// The top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            test_mode,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(&id.id, &mut b.samples, self.test_mode);
        self
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &mut b.samples,
            self.test_mode,
        );
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            &mut b.samples,
            self.test_mode,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("free", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("in", 7), &7u32, |b, &x| b.iter(|| x * 2));
        g.bench_function("plain", |b| b.iter(|| ()));
        g.finish();
        calls += 1;
        assert_eq!(calls, 1);
    }
}
