//! Property tests pinning the columnar mass-table engine to its oracles
//! (DESIGN.md §2, §6): the from-scratch hash-map evaluation
//! (`evaluate_schedule`), the analytic operation counts, and the
//! serial-equals-parallel guarantee of the sharded scoring sweeps.

use proptest::prelude::*;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::util::float::approx_eq_tol;
use ses_core::{
    evaluate_schedule, AttendanceEngine, EventId, GreedyHeapScheduler, GreedyScheduler, IntervalId,
    Scheduler, TopScheduler,
};

/// Strategy over modest random instances (mirrors `properties.rs`).
fn instance_config() -> impl Strategy<Value = TestInstanceConfig> {
    (
        2usize..24,   // users
        2usize..10,   // events
        1usize..6,    // intervals
        0usize..8,    // competing
        1usize..5,    // locations
        2.0f64..20.0, // theta
        0.05f64..0.9, // density
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                num_users,
                num_events,
                num_intervals,
                num_competing,
                num_locations,
                theta,
                interest_density,
                seed,
            )| {
                TestInstanceConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    num_competing,
                    num_locations,
                    theta,
                    xi_max: 3.0,
                    interest_density,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any valid op sequence, the columnar engine's Ω and its
    /// per-event expected attendances match the from-scratch hash-map
    /// oracle, and every applied assignment's realized gain equals the
    /// score predicted immediately before it — bit for bit, since both are
    /// computed from the same frozen columns.
    #[test]
    fn columnar_omega_and_scores_match_oracle(
        cfg in instance_config(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let inst = random_instance(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % inst.num_events() as u32);
            let t = IntervalId::new(traw % inst.num_intervals() as u32);
            if engine.schedule().contains(e) {
                engine.unassign(e).unwrap();
            } else if engine.check_assignment(e, t).is_ok() {
                let predicted = engine.score(e, t);
                let gain = engine.assign(e, t).unwrap();
                prop_assert_eq!(predicted.to_bits(), gain.to_bits(),
                    "assignment gain must equal the just-predicted score exactly");
            }
        }
        let oracle = evaluate_schedule(&inst, engine.schedule());
        prop_assert!(
            approx_eq_tol(engine.total_utility(), oracle.total_utility, 1e-7),
            "columnar Ω {} vs oracle {}", engine.total_utility(), oracle.total_utility
        );
        for &(event, _, omega) in &oracle.per_event {
            let engine_omega = engine.expected_attendance(event).unwrap();
            prop_assert!(
                approx_eq_tol(engine_omega, omega, 1e-9),
                "ω({event}): columnar {engine_omega} vs oracle {omega}"
            );
        }
    }

    /// `EngineCounters` stay analytic: `posting_visits` is exactly the sum
    /// of posting-list lengths over all Eq. 4 evaluations (explicit scores
    /// plus the one evaluation inside every assign), and the batch APIs
    /// count like the equivalent per-pair calls.
    #[test]
    fn posting_visits_match_analytic_count(
        cfg in instance_config(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let inst = random_instance(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        let postings_len = |e: EventId| -> u64 {
            inst.interest().interested_users(e.into()).len() as u64
        };
        let mut expected_visits = 0u64;
        let mut expected_evals = 0u64;
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % inst.num_events() as u32);
            let t = IntervalId::new(traw % inst.num_intervals() as u32);
            engine.score(e, t);
            expected_evals += 1;
            expected_visits += postings_len(e);
            if engine.check_assignment(e, t).is_ok() {
                engine.assign(e, t).unwrap(); // one internal Eq. 4 evaluation
                expected_evals += 1;
                expected_visits += postings_len(e);
            }
        }
        // One batch sweep counts like |T| per-pair scores of the event.
        let probe = EventId::new(0);
        engine.score_all(probe);
        expected_evals += inst.num_intervals() as u64;
        expected_visits += postings_len(probe) * inst.num_intervals() as u64;
        let c = engine.counters();
        prop_assert_eq!(c.score_evaluations, expected_evals);
        prop_assert_eq!(c.posting_visits, expected_visits);
    }

    /// Parallel (`--threads N`) and serial runs of the whole greedy family
    /// pick identical schedules (bit-identical Ω, identical counters): the
    /// sharded sweeps read frozen engine state, so only wall-clock changes.
    #[test]
    fn parallel_and_serial_sweeps_pick_identical_schedules(
        cfg in instance_config(),
        k_frac in 0.1f64..1.0,
        threads in 2usize..5,
    ) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let pairs: [(Box<dyn Scheduler>, Box<dyn Scheduler>); 3] = [
            (
                Box::new(GreedyScheduler::new()),
                Box::new(GreedyScheduler::with_threads(threads)),
            ),
            (
                Box::new(GreedyHeapScheduler::new()),
                Box::new(GreedyHeapScheduler::with_threads(threads)),
            ),
            (
                Box::new(TopScheduler::new()),
                Box::new(TopScheduler::with_threads(threads)),
            ),
        ];
        for (serial, parallel) in pairs {
            let a = serial.run(&inst, k).unwrap();
            let b = parallel.run(&inst, k).unwrap();
            prop_assert_eq!(&a.schedule, &b.schedule,
                "{}: {} threads changed the schedule", serial.name(), threads);
            prop_assert_eq!(a.total_utility.to_bits(), b.total_utility.to_bits());
            prop_assert_eq!(a.stats.engine, b.stats.engine,
                "{}: shard counters must merge to the serial totals", serial.name());
        }
    }
}
