//! Deterministic integration tests comparing the algorithms against each
//! other and against the exact oracle on a seed grid (complementing the
//! randomized `properties.rs`).

use ses_core::testkit::{hand_instance, random_instance, small_instance, TestInstanceConfig};
use ses_core::util::float::{approx_eq, approx_ge};
use ses_core::{
    evaluate_schedule, EventId, ExactScheduler, GreedyHeapScheduler, GreedyScheduler, IntervalId,
    LocalSearchScheduler, RandomScheduler, Scheduler, TopScheduler,
};

#[test]
fn greedy_is_near_optimal_on_small_instances() {
    // GRD has no proven ratio in the paper, but on small random instances it
    // should typically land within 80% of the optimum and never above it.
    let mut worst: f64 = 1.0;
    for seed in 0..12u64 {
        let inst = small_instance(seed);
        let k = 3;
        let opt = ExactScheduler::new().run(&inst, k).unwrap().total_utility;
        if opt <= 0.0 {
            continue;
        }
        let grd = GreedyScheduler::new().run(&inst, k).unwrap().total_utility;
        assert!(approx_ge(opt, grd), "seed {seed}: GRD {grd} > OPT {opt}");
        worst = worst.min(grd / opt);
    }
    assert!(
        worst > 0.8,
        "GRD fell below 80% of optimum somewhere (worst ratio {worst})"
    );
}

#[test]
fn greedy_beats_baselines_in_aggregate() {
    let (mut grd, mut top, mut rand) = (0.0, 0.0, 0.0);
    for seed in 0..10u64 {
        let inst = random_instance(&TestInstanceConfig {
            num_users: 40,
            num_events: 20,
            num_intervals: 8,
            num_competing: 16,
            num_locations: 5,
            theta: 12.0,
            xi_max: 4.0,
            interest_density: 0.35,
            seed,
        });
        let k = 10;
        grd += GreedyScheduler::new().run(&inst, k).unwrap().total_utility;
        top += TopScheduler::new().run(&inst, k).unwrap().total_utility;
        rand += RandomScheduler::new(seed)
            .run(&inst, k)
            .unwrap()
            .total_utility;
    }
    assert!(grd > top, "GRD {grd} must beat TOP {top} in aggregate");
    assert!(grd > rand, "GRD {grd} must beat RAND {rand} in aggregate");
}

#[test]
fn greedy_first_pick_on_hand_instance_is_correct() {
    // On the hand instance the single best first assignment is e1 → t1
    // (user0 ρ=1 plus user1 ρ=1 ⇒ score 2).
    let inst = hand_instance();
    let out = GreedyScheduler::new().run(&inst, 1).unwrap();
    assert_eq!(
        out.schedule.interval_of(EventId::new(1)),
        Some(IntervalId::new(1)),
        "expected e1→t1, got {}",
        out.schedule
    );
    assert!(approx_eq(out.total_utility, 2.0), "{}", out.total_utility);
}

#[test]
fn greedy_full_schedule_on_hand_instance() {
    // k = 3 on the hand instance: all three events placed; brute-force over
    // all 3-event schedules confirms the greedy result is optimal here.
    let inst = hand_instance();
    let grd = GreedyScheduler::new().run(&inst, 3).unwrap();
    assert!(grd.complete);
    let opt = ExactScheduler::new().run(&inst, 3).unwrap();
    assert!(approx_ge(opt.total_utility, grd.total_utility));
    assert!(
        grd.total_utility / opt.total_utility > 0.95,
        "GRD {} vs OPT {}",
        grd.total_utility,
        opt.total_utility
    );
}

#[test]
fn local_search_recovers_most_of_the_gap_from_random() {
    let mut closed = 0usize;
    let mut total = 0usize;
    for seed in 0..8u64 {
        let inst = small_instance(seed);
        let k = 3;
        let opt = ExactScheduler::new().run(&inst, k).unwrap().total_utility;
        let rand = RandomScheduler::new(seed)
            .run(&inst, k)
            .unwrap()
            .total_utility;
        let ls = LocalSearchScheduler::new(RandomScheduler::new(seed))
            .run(&inst, k)
            .unwrap()
            .total_utility;
        if opt - rand > 1e-9 {
            total += 1;
            if (ls - rand) / (opt - rand) > 0.5 {
                closed += 1;
            }
        }
    }
    assert!(
        total == 0 || closed * 2 >= total,
        "LS closed >50% of the RAND→OPT gap in only {closed}/{total} cases"
    );
}

#[test]
fn all_algorithms_handle_every_k_from_zero_to_max() {
    let inst = small_instance(4);
    for k in 0..=inst.num_events() {
        for s in [
            &GreedyScheduler::new() as &dyn Scheduler,
            &GreedyHeapScheduler::new(),
            &TopScheduler::new(),
            &RandomScheduler::new(0),
        ] {
            let out = s.run(&inst, k).unwrap();
            assert!(out.len() <= k);
            inst.check_schedule(&out.schedule).unwrap();
            let eval = evaluate_schedule(&inst, &out.schedule);
            assert!(
                (out.total_utility - eval.total_utility).abs() < 1e-7,
                "{} at k={k}",
                s.name()
            );
        }
    }
}

#[test]
fn outcome_reports_are_coherent() {
    let inst = small_instance(9);
    let out = GreedyScheduler::new().run(&inst, 4).unwrap();
    assert_eq!(out.algorithm, "GRD");
    assert_eq!(out.len(), out.schedule.len());
    assert_eq!(out.complete, out.len() == 4);
    assert!(out.stats.elapsed.as_nanos() > 0);
    assert!(out.stats.engine.assigns as usize >= out.len());
}
