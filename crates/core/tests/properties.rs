//! Property-based tests of the engine and algorithm invariants
//! (DESIGN.md §6).

use proptest::prelude::*;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::util::float::{approx_eq_tol, approx_ge};
use ses_core::{
    evaluate_schedule, AttendanceEngine, EventId, ExactScheduler, GreedyHeapScheduler,
    GreedyScheduler, IntervalId, LocalSearchScheduler, RandomScheduler, Scheduler, TopScheduler,
    UserId,
};

/// Strategy over modest random instances.
fn instance_config() -> impl Strategy<Value = TestInstanceConfig> {
    (
        2usize..20,   // users
        2usize..10,   // events
        1usize..6,    // intervals
        0usize..8,    // competing
        1usize..5,    // locations
        2.0f64..20.0, // theta
        0.05f64..0.9, // density
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                num_users,
                num_events,
                num_intervals,
                num_competing,
                num_locations,
                theta,
                interest_density,
                seed,
            )| {
                TestInstanceConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    num_competing,
                    num_locations,
                    theta,
                    xi_max: 3.0,
                    interest_density,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm returns a feasible schedule whose reported utility
    /// matches the from-scratch reference evaluation.
    #[test]
    fn algorithms_feasible_and_consistent(cfg in instance_config(), k_frac in 0.0f64..1.0) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GreedyScheduler::new()),
            Box::new(GreedyHeapScheduler::new()),
            Box::new(TopScheduler::new()),
            Box::new(RandomScheduler::new(cfg.seed)),
        ];
        for s in schedulers {
            let out = s.run(&inst, k).unwrap();
            prop_assert!(inst.check_schedule(&out.schedule).is_ok(),
                "{} produced an infeasible schedule", s.name());
            prop_assert!(out.len() <= k);
            let eval = evaluate_schedule(&inst, &out.schedule);
            prop_assert!(approx_eq_tol(out.total_utility, eval.total_utility, 1e-7),
                "{}: incremental {} vs reference {}", s.name(), out.total_utility, eval.total_utility);
        }
    }

    /// Assignment scores are non-negative, and per-interval marginal gains
    /// diminish as the interval fills.
    #[test]
    fn scores_nonnegative_and_diminishing(cfg in instance_config()) {
        let inst = random_instance(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        let t = IntervalId::new(0);
        // Scores of all events on the empty interval.
        let before: Vec<f64> = (0..inst.num_events())
            .map(|e| engine.score(EventId::new(e as u32), t))
            .collect();
        prop_assert!(before.iter().all(|&s| s >= 0.0));
        // Fill the interval with the first event that fits, then rescore.
        let placed = (0..inst.num_events()).find(|&e| {
            engine.assign(EventId::new(e as u32), t).is_ok()
        });
        if placed.is_some() {
            for (e, &b) in before.iter().enumerate() {
                let s = engine.score(EventId::new(e as u32), t);
                prop_assert!(s >= 0.0);
                prop_assert!(s <= b + 1e-9,
                    "marginal gain grew after filling: {b} -> {s}");
            }
        }
    }

    /// A user's total attendance probability within one interval never
    /// exceeds their activity probability σ(u,t).
    #[test]
    fn per_interval_attendance_bounded_by_sigma(cfg in instance_config()) {
        let inst = random_instance(&cfg);
        let out = GreedyScheduler::new().run(&inst, inst.num_events()).unwrap();
        let engine = AttendanceEngine::with_schedule(&inst, &out.schedule).unwrap();
        for t in 0..inst.num_intervals() {
            let interval = IntervalId::new(t as u32);
            for u in 0..inst.num_users() {
                let user = UserId::new(u as u32);
                let total: f64 = out.schedule.events_at(interval).iter()
                    .map(|&e| engine.attendance_probability(user, e).unwrap())
                    .sum();
                let sigma = inst.sigma(user, interval);
                prop_assert!(total <= sigma + 1e-9,
                    "user {u} at t{t}: Σρ = {total} > σ = {sigma}");
            }
        }
    }

    /// The list greedy and the heap greedy produce equal-utility schedules.
    #[test]
    fn greedy_variants_agree(cfg in instance_config(), k_frac in 0.0f64..1.0) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let a = GreedyScheduler::new().run(&inst, k).unwrap();
        let b = GreedyHeapScheduler::new().run(&inst, k).unwrap();
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(approx_eq_tol(a.total_utility, b.total_utility, 1e-7),
            "GRD {} vs GRD-PQ {}", a.total_utility, b.total_utility);
    }

    /// Random assign/unassign sequences keep the incremental utility in
    /// lockstep with the reference evaluation, and a full rollback returns
    /// to exactly zero.
    #[test]
    fn engine_incremental_consistency(cfg in instance_config(), ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..40)) {
        let inst = random_instance(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        let mut assigned: Vec<EventId> = Vec::new();
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % inst.num_events() as u32);
            let t = IntervalId::new(traw % inst.num_intervals() as u32);
            if engine.schedule().contains(e) {
                engine.unassign(e).unwrap();
                assigned.retain(|&x| x != e);
            } else if engine.check_assignment(e, t).is_ok() {
                engine.assign(e, t).unwrap();
                assigned.push(e);
            }
            let reference = evaluate_schedule(&inst, engine.schedule()).total_utility;
            prop_assert!(approx_eq_tol(engine.total_utility(), reference, 1e-7),
                "incremental {} vs reference {}", engine.total_utility(), reference);
        }
        // Roll everything back. The per-entry masses snap to exactly zero
        // (no phantom Luce ratios — see engine::MassEntry), but the running
        // Ω is a float sum over the whole op sequence, so it lands within
        // rounding of zero rather than exactly on it.
        for e in assigned {
            engine.unassign(e).unwrap();
        }
        prop_assert!(engine.total_utility().abs() < 1e-9,
            "rolled-back utility {} not ~0", engine.total_utility());
        // And the *next* score is computed from pristine state.
        let mut fresh = AttendanceEngine::new(&inst);
        let e0 = EventId::new(0);
        let t0 = IntervalId::new(0);
        prop_assert_eq!(engine.score(e0, t0), fresh.score(e0, t0));
    }

    /// Local search never hurts its base scheduler and preserves size and
    /// feasibility.
    #[test]
    fn local_search_dominates_base(cfg in instance_config(), k_frac in 0.1f64..1.0) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let base = RandomScheduler::new(cfg.seed).run(&inst, k).unwrap();
        let ls = LocalSearchScheduler::new(RandomScheduler::new(cfg.seed)).run(&inst, k).unwrap();
        prop_assert!(inst.check_schedule(&ls.schedule).is_ok());
        prop_assert_eq!(ls.len(), base.len());
        prop_assert!(approx_ge(ls.total_utility, base.total_utility),
            "LS {} < base {}", ls.total_utility, base.total_utility);
    }
}

proptest! {
    // The exact oracle is expensive — fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exact optimum dominates every heuristic.
    #[test]
    fn exact_dominates_heuristics(seed in any::<u64>(), density in 0.2f64..0.8) {
        let cfg = TestInstanceConfig {
            num_users: 8,
            num_events: 5,
            num_intervals: 3,
            num_competing: 3,
            num_locations: 2,
            theta: 5.0,
            xi_max: 2.5,
            interest_density: density,
            seed,
        };
        let inst = random_instance(&cfg);
        let k = 3;
        let opt = ExactScheduler::new().run(&inst, k).unwrap();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GreedyScheduler::new()),
            Box::new(GreedyHeapScheduler::new()),
            Box::new(TopScheduler::new()),
            Box::new(RandomScheduler::new(seed)),
            Box::new(LocalSearchScheduler::new(GreedyScheduler::new())),
        ];
        for s in schedulers {
            let h = s.run(&inst, k).unwrap();
            prop_assert!(approx_ge(opt.total_utility + 1e-9, h.total_utility),
                "{}: {} exceeds OPT {}", s.name(), h.total_utility, opt.total_utility);
        }
    }
}
