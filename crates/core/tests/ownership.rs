//! The owned-handle contract of the redesigned core API: engines and
//! sessions are `Send + 'static` (compile-time asserted), outlive the scope
//! that built their instance, and behave identically when moved to another
//! thread — the property the service layer's multi-tenant session map
//! relies on.

use ses_core::testkit;
use ses_core::{
    AttendanceEngine, EventId, GreedyScheduler, OnlineSession, Schedule, Scheduler, SesInstance,
    UserId,
};
use std::sync::Arc;

/// Compile-time: the acceptance criterion of the API redesign.
#[test]
fn engine_and_session_are_send_and_static() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<AttendanceEngine>();
    assert_send::<OnlineSession>();
    // The instance handle itself is shareable across threads.
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Arc<SesInstance>>();
}

#[test]
fn engine_outlives_the_scope_that_built_the_instance() {
    // Build the instance in an inner scope and drop every other handle; the
    // engine's own Arc keeps it alive — impossible with the old borrowed API.
    let mut engine = {
        let inst = testkit::medium_instance(3);
        AttendanceEngine::new(&inst)
    };
    let e = EventId::new(0);
    let t = ses_core::IntervalId::new(0);
    if engine.is_valid(e, t) {
        engine.assign(e, t).unwrap();
    }
    assert!(engine.total_utility() >= 0.0);
    assert_eq!(engine.instance().num_events(), 12);
}

/// The disruption script both sessions replay.
fn replay(session: &mut OnlineSession, postings: &[(UserId, f64)]) -> (f64, Schedule) {
    let busy = session
        .schedule()
        .occupied_intervals()
        .next()
        .expect("non-empty plan");
    session.announce_competing(busy, postings);
    let victim = session.schedule().scheduled_events()[0];
    session.cancel_event(victim).unwrap();
    session.extend();
    session.change_capacity(session.instance().budget() * 0.6);
    session.announce_competing(busy, postings);
    (session.utility(), session.schedule().clone())
}

#[test]
fn session_moved_to_another_thread_repairs_identically() {
    let inst = testkit::medium_instance(21);
    let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
    let postings: Vec<(UserId, f64)> = (0..inst.num_users())
        .map(|u| (UserId::new(u as u32), 0.7))
        .collect();

    // Seed behaviour: the session stays on this thread.
    let mut local = OnlineSession::new(&inst, &plan.schedule).unwrap();
    let (local_utility, local_schedule) = replay(&mut local, &postings);

    // Same starting state, but the session (owning its instance handle)
    // crosses a thread boundary before replaying the same script.
    let mut moved = OnlineSession::new(&inst, &plan.schedule).unwrap();
    let postings_clone = postings.clone();
    let (moved_utility, moved_schedule) = std::thread::spawn(move || {
        let out = replay(&mut moved, &postings_clone);
        drop(moved); // session (and its instance handle) dies off-thread
        out
    })
    .join()
    .expect("worker thread must not panic");

    assert_eq!(
        local_utility.to_bits(),
        moved_utility.to_bits(),
        "thread move must not change repair arithmetic: {local_utility} vs {moved_utility}"
    );
    assert_eq!(local_schedule, moved_schedule);
}

#[test]
fn many_sessions_share_one_instance_across_threads() {
    // The multi-tenant shape: one instance, many owned sessions, each on
    // its own thread, all repairing concurrently.
    let inst = testkit::medium_instance(9);
    let plan = GreedyScheduler::new().run(&inst, 5).unwrap();
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
            std::thread::spawn(move || {
                let mut session = session;
                let postings: Vec<(UserId, f64)> = (0..session.instance().num_users())
                    .map(|u| (UserId::new(u as u32), 0.1 + 0.2 * (i as f64 % 3.0)))
                    .collect();
                let busy = session.schedule().occupied_intervals().next().unwrap();
                let report = session.announce_competing(busy, &postings);
                assert!(report.recovered() >= -1e-9);
                session.utility()
            })
        })
        .collect();
    for h in handles {
        let utility = h.join().expect("no panics");
        assert!(utility.is_finite() && utility >= 0.0);
    }
    // The shared instance is still alive and usable afterwards.
    assert!(Arc::strong_count(&inst) >= 1);
    assert_eq!(inst.num_events(), 12);
}
