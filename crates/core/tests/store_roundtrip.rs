//! Property tests for the packed instance store (DESIGN.md §12).
//!
//! Contracts pinned here, on *random* sparse instances (the unit tests in
//! `store.rs` cover fixed fixtures and exhaustive truncation/bit-flip
//! sweeps on one small file):
//!
//! * pack→open round-trips are **bit-exact**: the reopened instance
//!   reproduces `evaluate_schedule` Ω and every per-event ω to the last
//!   bit, and the engine's memory accounting (excluding the wall-clock
//!   `build_millis`) is identical;
//! * the encoding is canonical — re-packing the reopened instance yields
//!   byte-identical output;
//! * truncating the stream anywhere, corrupting any single byte, or
//!   rewriting the version all surface as typed [`StoreError`]s. Reads
//!   never panic and never silently accept altered bytes.

use proptest::prelude::*;
use ses_core::store::{read_instance, write_instance, StoreError, FORMAT_VERSION, MAGIC};
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{evaluate_schedule, AttendanceEngine, EventId, IntervalId};
use std::io::Cursor;

fn config() -> impl Strategy<Value = TestInstanceConfig> {
    (
        1usize..20, // users
        1usize..8,  // events
        1usize..6,  // intervals
        0usize..6,  // competing events
        0.1f64..0.9,
        any::<u64>(),
    )
        .prop_map(
            |(num_users, num_events, num_intervals, num_competing, interest_density, seed)| {
                TestInstanceConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    num_competing,
                    num_locations: 3,
                    theta: 9.0,
                    xi_max: 3.0,
                    interest_density,
                    seed,
                }
            },
        )
}

fn packed(cfg: &TestInstanceConfig) -> Vec<u8> {
    let inst = random_instance(cfg);
    let mut buf = Vec::new();
    write_instance(&inst, &mut buf).expect("write to memory");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ω, per-event ω and the engine's memory accounting survive the
    /// round-trip bit for bit, and the encoding is canonical.
    #[test]
    fn pack_open_round_trip_is_bit_exact(
        cfg in config(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..20),
    ) {
        let original = random_instance(&cfg);
        let mut buf = Vec::new();
        write_instance(&original, &mut buf).expect("write to memory");
        let reopened = read_instance(Cursor::new(&buf)).expect("reopen");

        prop_assert_eq!(reopened.num_users(), original.num_users());
        prop_assert_eq!(reopened.num_events(), original.num_events());
        prop_assert_eq!(reopened.num_intervals(), original.num_intervals());
        prop_assert_eq!(reopened.num_competing(), original.num_competing());

        // Drive the same feasible schedule into both instances.
        let mut sched_a = original.empty_schedule();
        let mut sched_b = reopened.empty_schedule();
        let mut probe = AttendanceEngine::new(&original);
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % original.num_events() as u32);
            let t = IntervalId::new(traw % original.num_intervals() as u32);
            if !sched_a.contains(e) && probe.check_assignment(e, t).is_ok() {
                sched_a.assign(e, t).unwrap();
                probe.assign(e, t).unwrap();
                sched_b.assign(e, t).unwrap();
            }
        }
        let eval_a = evaluate_schedule(&original, &sched_a);
        let eval_b = evaluate_schedule(&reopened, &sched_b);
        prop_assert_eq!(
            eval_a.total_utility.to_bits(),
            eval_b.total_utility.to_bits(),
            "Ω differs: built {} vs reopened {}",
            eval_a.total_utility,
            eval_b.total_utility
        );
        for (a, b) in eval_a.per_event.iter().zip(eval_b.per_event.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits(), "ω({}) differs", a.0);
        }

        // The blocked engine builds the same layout from both (build_millis
        // is wall-clock and deliberately excluded).
        let ma = AttendanceEngine::new(&original).memory_stats();
        let mb = AttendanceEngine::new(&reopened).memory_stats();
        prop_assert_eq!(ma.column_slots, mb.column_slots);
        prop_assert_eq!(ma.dense_slots, mb.dense_slots);
        prop_assert_eq!(ma.resident_column_bytes, mb.resident_column_bytes);
        prop_assert_eq!(ma.run_bytes, mb.run_bytes);

        // Canonical encoding: one universe, one byte stream.
        let mut again = Vec::new();
        write_instance(&reopened, &mut again).expect("re-pack");
        prop_assert_eq!(&buf, &again, "re-packing the reopened instance changed bytes");
    }

    /// Cutting the stream anywhere short of the end is a typed error.
    #[test]
    fn truncation_anywhere_is_a_typed_error(cfg in config(), cut in any::<u64>()) {
        let buf = packed(&cfg);
        let cut = (cut % buf.len() as u64) as usize; // strictly shorter than the file
        let err = read_instance(Cursor::new(&buf[..cut])).expect_err("truncated must fail");
        // Any StoreError variant is acceptable; reaching here proves no panic.
        let _ = err.to_string();
    }

    /// Any single corrupted byte is rejected — the FNV-1a section checksums
    /// (and the framed header) leave no byte uncovered.
    #[test]
    fn single_byte_corruption_is_detected(
        cfg in config(),
        pos in any::<u64>(),
        xor in 1u8..=255u8,
    ) {
        let mut buf = packed(&cfg);
        let pos = (pos % buf.len() as u64) as usize;
        buf[pos] ^= xor;
        let err = read_instance(Cursor::new(&buf)).expect_err("corrupted byte must fail");
        let _ = err.to_string();
    }
}

#[test]
fn wrong_version_and_bad_magic_are_typed_errors() {
    let buf = packed(&TestInstanceConfig::default());

    let mut wrong_version = buf.clone();
    wrong_version[MAGIC.len()..MAGIC.len() + 4]
        .copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match read_instance(Cursor::new(&wrong_version)) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    let mut bad_magic = buf;
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        read_instance(Cursor::new(&bad_magic)),
        Err(StoreError::BadMagic { .. })
    ));
}
