//! Property tests pinning the blocked/CSR interval-column layout
//! (DESIGN.md §11) to the from-scratch hash-map oracle.
//!
//! The instances here are deliberately *sparse in σ*: random activity holes
//! put every code path through the partial-column run translation instead
//! of the dense-era full-column alias. The contracts pinned:
//!
//! * per-event expected attendances match `evaluate_schedule` **bit for
//!   bit** when the engine replays the schedule in the oracle's order;
//! * predicted scores equal realized gains bit for bit through arbitrary
//!   assign/unassign churn, and Ω tracks the oracle;
//! * `posting_visits` under the blocked layout never exceeds the dense
//!   layout's analytic count;
//! * degenerate shapes — empty intervals, single-user universes, one
//!   interval holding every posting, events with empty posting lists —
//!   build and score without special-casing.

use proptest::prelude::*;
use ses_core::util::float::approx_eq_tol;
use ses_core::{
    evaluate_schedule, AttendanceEngine, CandidateEvent, DenseActivity, EventId, InterestBuilder,
    IntervalId, LocationId, Organizer, SesInstance, UserId,
};
use std::sync::Arc;

/// Shape + seed of one random sparse-σ instance.
#[derive(Debug, Clone)]
struct SparseConfig {
    num_users: usize,
    num_events: usize,
    num_intervals: usize,
    /// Probability a user is interested in an event.
    interest_density: f64,
    /// Probability a user is active (σ > 0) at an interval. Low values
    /// produce empty columns and whole empty intervals.
    activity_density: f64,
    seed: u64,
}

fn config() -> impl Strategy<Value = SparseConfig> {
    (
        1usize..14,   // users (1 ⇒ single-user universes)
        1usize..7,    // events
        1usize..6,    // intervals
        0.1f64..0.9,  // interest density (low ⇒ events with empty lists)
        0.0f64..=1.0, // activity density (0 ⇒ all intervals empty)
        any::<u64>(),
    )
        .prop_map(
            |(num_users, num_events, num_intervals, interest_density, activity_density, seed)| {
                SparseConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    interest_density,
                    activity_density,
                    seed,
                }
            },
        )
}

/// Tiny deterministic generator — splitmix64 over (seed, counter), mapped to
/// `[0, 1)`. Keeps the instance a pure function of `SparseConfig` without
/// dragging a full RNG strategy through proptest shrinking.
struct Mix {
    state: u64,
}

impl Mix {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn build(cfg: &SparseConfig) -> Arc<SesInstance> {
    let mut mix = Mix::new(cfg.seed);
    let mut interest = InterestBuilder::new(cfg.num_users, cfg.num_events, 0);
    for u in 0..cfg.num_users {
        for e in 0..cfg.num_events {
            if mix.next_unit() < cfg.interest_density {
                let mu = 0.05 + 0.95 * mix.next_unit();
                interest
                    .set(UserId::new(u as u32), EventId::new(e as u32), mu)
                    .expect("in range");
            }
        }
    }
    let rows: Vec<Vec<f64>> = (0..cfg.num_users)
        .map(|_| {
            (0..cfg.num_intervals)
                .map(|_| {
                    if mix.next_unit() < cfg.activity_density {
                        0.05 + 0.95 * mix.next_unit()
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let events = (0..cfg.num_events)
        .map(|e| {
            // Locations collide on purpose (mod 3) so feasibility checks
            // fire; the budget is generous enough that resources rarely do.
            CandidateEvent::new(EventId::new(e as u32), LocationId::new((e % 3) as u32), 1.0)
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(100.0))
        .intervals(ses_core::uniform_grid(cfg.num_intervals, 10))
        .events(events)
        .interest(interest.build_sparse().expect("valid"))
        .activity(DenseActivity::from_rows(rows).expect("valid"))
        .build_shared()
        .expect("sparse instance validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying a feasible schedule through the blocked engine in the
    /// oracle's iteration order reproduces every per-event ω bit for bit:
    /// skipped σ = 0 slots contribute exactly-zero terms, so dropping them
    /// cannot move a single bit.
    #[test]
    fn replayed_schedule_matches_oracle_bitwise(
        cfg in config(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..24),
    ) {
        let inst = build(&cfg);
        let mut schedule = inst.empty_schedule();
        let mut probe = AttendanceEngine::new(&inst);
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % inst.num_events() as u32);
            let t = IntervalId::new(traw % inst.num_intervals() as u32);
            if !schedule.contains(e) && probe.check_assignment(e, t).is_ok() {
                schedule.assign(e, t).unwrap();
                probe.assign(e, t).unwrap();
            }
        }
        let engine = AttendanceEngine::with_schedule(&inst, &schedule).unwrap();
        let oracle = evaluate_schedule(&inst, &schedule);
        for &(event, _, omega) in &oracle.per_event {
            let engine_omega = engine.expected_attendance(event).unwrap();
            prop_assert_eq!(
                engine_omega.to_bits(),
                omega.to_bits(),
                "ω({}): blocked {} vs oracle {}",
                event, engine_omega, omega
            );
        }
        prop_assert!(
            approx_eq_tol(engine.total_utility(), oracle.total_utility, 1e-9),
            "Ω: blocked {} vs oracle {}", engine.total_utility(), oracle.total_utility
        );
    }

    /// Through arbitrary assign/unassign churn on sparse-σ instances, the
    /// realized gain equals the just-predicted score bit for bit and Ω
    /// tracks the from-scratch oracle.
    #[test]
    fn churn_keeps_scores_and_omega_consistent(
        cfg in config(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let inst = build(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        for (eraw, traw) in ops {
            let e = EventId::new(eraw % inst.num_events() as u32);
            let t = IntervalId::new(traw % inst.num_intervals() as u32);
            if engine.schedule().contains(e) {
                engine.unassign(e).unwrap();
            } else if engine.check_assignment(e, t).is_ok() {
                let predicted = engine.score(e, t);
                let gain = engine.assign(e, t).unwrap();
                prop_assert_eq!(predicted.to_bits(), gain.to_bits());
            }
        }
        let oracle = evaluate_schedule(&inst, engine.schedule());
        prop_assert!(
            approx_eq_tol(engine.total_utility(), oracle.total_utility, 1e-7),
            "Ω after churn: blocked {} vs oracle {}",
            engine.total_utility(), oracle.total_utility
        );
    }

    /// The blocked layout only ever *removes* work: `posting_visits` after
    /// a full `score_all` sweep of every event is bounded by the dense
    /// layout's analytic `Σ_e |postings(e)| · |T|`, with equality exactly
    /// when no posting aims at a σ = 0 slot.
    #[test]
    fn posting_visits_never_exceed_dense_count(cfg in config()) {
        let inst = build(&cfg);
        let mut engine = AttendanceEngine::new(&inst);
        let mut dense_visits = 0u64;
        for e in 0..inst.num_events() {
            let event = EventId::new(e as u32);
            engine.score_all(event);
            dense_visits += inst.interest().interested_users(event.into()).len() as u64
                * inst.num_intervals() as u64;
        }
        let c = engine.counters();
        prop_assert!(
            c.posting_visits <= dense_visits,
            "blocked visits {} exceed dense {}", c.posting_visits, dense_visits
        );
        let m = engine.memory_stats();
        prop_assert!(m.column_slots <= m.dense_slots);
        if m.column_slots == m.dense_slots {
            prop_assert_eq!(c.posting_visits, dense_visits,
                "full columns must alias the dense walk exactly");
            prop_assert_eq!(m.run_bytes, 0u64);
        }
    }
}

#[test]
fn degenerate_shapes_build_and_score() {
    // Empty intervals: nobody is active anywhere.
    let nobody = build(&SparseConfig {
        num_users: 5,
        num_events: 3,
        num_intervals: 4,
        interest_density: 0.8,
        activity_density: 0.0,
        seed: 1,
    });
    let mut engine = AttendanceEngine::new(&nobody);
    assert_eq!(engine.memory_stats().column_slots, 0);
    for t in 0..4 {
        assert_eq!(engine.score(EventId::new(0), IntervalId::new(t)), 0.0);
    }
    engine.assign(EventId::new(0), IntervalId::new(2)).unwrap();
    assert_eq!(engine.total_utility(), 0.0);
    assert_eq!(engine.expected_attendance(EventId::new(0)), Some(0.0));

    // Single-user universe.
    let solo = build(&SparseConfig {
        num_users: 1,
        num_events: 2,
        num_intervals: 3,
        interest_density: 1.0,
        activity_density: 1.0,
        seed: 2,
    });
    let mut engine = AttendanceEngine::new(&solo);
    let s = engine.score(EventId::new(0), IntervalId::new(0));
    engine.assign(EventId::new(0), IntervalId::new(0)).unwrap();
    let oracle = evaluate_schedule(&solo, engine.schedule());
    assert_eq!(engine.total_utility().to_bits(), s.to_bits());
    assert!((oracle.total_utility - engine.total_utility()).abs() < 1e-12);

    // One interval holds every posting: users active only at t0.
    let mut interest = InterestBuilder::new(4, 2, 0);
    for u in 0..4u32 {
        interest
            .set(UserId::new(u), EventId::new(u % 2), 0.5)
            .unwrap();
    }
    let one_col = SesInstance::builder()
        .organizer(Organizer::new(100.0))
        .intervals(ses_core::uniform_grid(3, 10))
        .events(vec![
            CandidateEvent::new(EventId::new(0), LocationId::new(0), 1.0),
            CandidateEvent::new(EventId::new(1), LocationId::new(1), 1.0),
        ])
        .interest(interest.build_sparse().unwrap())
        .activity(DenseActivity::from_rows(vec![vec![0.9, 0.0, 0.0]; 4]).unwrap())
        .build_shared()
        .unwrap();
    let mut engine = AttendanceEngine::new(&one_col);
    let m = engine.memory_stats();
    assert_eq!(m.column_slots, 4, "all nnz concentrated in interval 0");
    assert_eq!(m.dense_slots, 12);
    engine.assign(EventId::new(0), IntervalId::new(0)).unwrap();
    engine.assign(EventId::new(1), IntervalId::new(0)).unwrap();
    let oracle = evaluate_schedule(&one_col, engine.schedule());
    for &(event, _, omega) in &oracle.per_event {
        assert_eq!(
            engine.expected_attendance(event).unwrap().to_bits(),
            omega.to_bits()
        );
    }

    // An event with an empty posting list scores zero everywhere and its
    // assignment leaves the generation clock untouched.
    let mut interest = InterestBuilder::new(2, 2, 0);
    interest.set(UserId::new(0), EventId::new(0), 0.6).unwrap();
    let ghost = SesInstance::builder()
        .organizer(Organizer::new(100.0))
        .intervals(ses_core::uniform_grid(2, 10))
        .events(vec![
            CandidateEvent::new(EventId::new(0), LocationId::new(0), 1.0),
            CandidateEvent::new(EventId::new(1), LocationId::new(1), 1.0),
        ])
        .interest(interest.build_sparse().unwrap())
        .activity(DenseActivity::from_rows(vec![vec![0.8, 0.8]; 2]).unwrap())
        .build_shared()
        .unwrap();
    let mut engine = AttendanceEngine::new(&ghost);
    assert_eq!(engine.score(EventId::new(1), IntervalId::new(0)), 0.0);
    engine.assign(EventId::new(1), IntervalId::new(0)).unwrap();
    assert_eq!(engine.clock(), 0, "empty posting list moves no mass");
    assert_eq!(engine.expected_attendance(EventId::new(1)), Some(0.0));
}
