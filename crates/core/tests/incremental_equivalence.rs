//! Incremental ≡ full: the delta-maintained paths introduced with the
//! dirty-interval generations (DESIGN.md §7) must be *invisible* in every
//! output — they only skip recomputing scores that provably did not change.
//!
//! Three equivalences are pinned across random instances and disruption
//! streams:
//!
//! 1. the CELF lazy greedy (GRD-PQ) picks bit-identical schedules and Ω to
//!    the eager list greedy (GRD);
//! 2. the lazy sweep stays bit-identical to itself under sharding —
//!    schedules, Ω *and* merged `EngineCounters`;
//! 3. an `OnlineSession` with the dirty-interval score cache replays any
//!    disruption stream to bit-identical repair reports, schedules and Ω
//!    as the exhaustive `score_all` reference — with strictly fewer posting
//!    visits on non-trivial streams.

use proptest::prelude::*;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{
    EventId, GreedyHeapScheduler, GreedyScheduler, IntervalId, OnlineSession, Scheduler, UserId,
};

/// Strategy over modest random instances (mirrors `columnar_oracle.rs`).
fn instance_config() -> impl Strategy<Value = TestInstanceConfig> {
    (
        2usize..24,   // users
        2usize..10,   // events
        1usize..6,    // intervals
        0usize..8,    // competing
        1usize..5,    // locations
        2.0f64..20.0, // theta
        0.05f64..0.9, // density
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                num_users,
                num_events,
                num_intervals,
                num_competing,
                num_locations,
                theta,
                interest_density,
                seed,
            )| {
                TestInstanceConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    num_competing,
                    num_locations,
                    theta,
                    xi_max: 3.0,
                    interest_density,
                    seed,
                }
            },
        )
}

/// One raw disruption drawn by proptest; indices are reduced modulo the
/// instance dimensions at replay time.
#[derive(Debug, Clone)]
enum RawDisruption {
    /// Rival announcement: interval, per-user µ seeds.
    Announce(u32, Vec<(u32, f64)>),
    /// Cancel the i-th currently scheduled event (if any).
    CancelNth(u32),
    /// Greedy `k → k+1` extension.
    Extend,
    /// Flip availability of an event.
    Toggle(u32),
    /// Late arrival of an event.
    Arrive(u32),
    /// Budget change as a fraction of the instance budget.
    Capacity(f64),
}

fn disruption_strategy() -> impl Strategy<Value = RawDisruption> {
    // The proptest shim has no `prop_oneof`; a discriminant + payload tuple
    // mapped through a match covers the same space.
    (
        0usize..6,
        any::<u32>(),
        0.2f64..1.5,
        prop::collection::vec((any::<u32>(), 0.01f64..1.0), 0..12),
    )
        .prop_map(|(kind, raw, frac, postings)| match kind {
            0 => RawDisruption::Announce(raw, postings),
            1 => RawDisruption::CancelNth(raw),
            2 => RawDisruption::Extend,
            3 => RawDisruption::Toggle(raw),
            4 => RawDisruption::Arrive(raw),
            _ => RawDisruption::Capacity(frac),
        })
}

/// Applies one raw disruption to a session; returns a comparable digest of
/// what happened (report + resulting utility bits).
fn apply(
    session: &mut OnlineSession,
    raw: &RawDisruption,
    num_users: usize,
    num_intervals: usize,
    num_events: usize,
    base_budget: f64,
) -> String {
    let outcome = match raw {
        RawDisruption::Announce(t, postings) => {
            let interval = IntervalId::new(t % num_intervals as u32);
            let postings: Vec<(UserId, f64)> = postings
                .iter()
                .map(|&(u, mu)| (UserId::new(u % num_users as u32), mu))
                .collect();
            format!("{:?}", session.announce_competing(interval, &postings))
        }
        RawDisruption::CancelNth(n) => {
            let scheduled = session.schedule().scheduled_events();
            if scheduled.is_empty() {
                "cancel-noop".to_owned()
            } else {
                let victim = scheduled[*n as usize % scheduled.len()];
                format!("{:?}", session.cancel_event(victim))
            }
        }
        RawDisruption::Extend => format!("{:?}", session.extend()),
        RawDisruption::Toggle(e) => {
            let event = EventId::new(e % num_events as u32);
            let flipped = !session.is_available(event);
            session.set_available(event, flipped);
            format!("toggle {event} -> {flipped}")
        }
        RawDisruption::Arrive(e) => {
            let event = EventId::new(e % num_events as u32);
            format!("{:?}", session.arrive(event))
        }
        RawDisruption::Capacity(frac) => {
            format!("{:?}", session.change_capacity(base_budget * frac))
        }
    };
    format!(
        "{outcome} | schedule {:?} | omega {:016x}",
        session.schedule(),
        session.utility().to_bits()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CELF lazy GRD-PQ ≡ eager GRD: bit-identical schedules and Ω for any
    /// instance and any k. Stale heap entries are over-estimates (marginal
    /// gains diminish as intervals fill), so re-validating only entries
    /// whose interval generation moved never changes a selection.
    #[test]
    fn lazy_heap_matches_eager_greedy_bit_for_bit(
        cfg in instance_config(),
        k_frac in 0.1f64..1.0,
    ) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let eager = GreedyScheduler::new().run(&inst, k).unwrap();
        let lazy = GreedyHeapScheduler::new().run(&inst, k).unwrap();
        prop_assert_eq!(&eager.schedule, &lazy.schedule);
        prop_assert_eq!(eager.total_utility.to_bits(), lazy.total_utility.to_bits());
        prop_assert!(
            lazy.stats.engine.score_evaluations <= eager.stats.engine.score_evaluations,
            "lazy did more scoring than eager: {} vs {}",
            lazy.stats.engine.score_evaluations,
            eager.stats.engine.score_evaluations
        );
    }

    /// The lazy sweep under sharding: schedules, Ω and merged counters all
    /// bit-identical to the serial run (the initial fill reads frozen
    /// engine state; the selection loop is serial by construction).
    #[test]
    fn lazy_heap_parallel_equals_serial_with_counters(
        cfg in instance_config(),
        k_frac in 0.1f64..1.0,
        threads in 2usize..5,
    ) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let serial = GreedyHeapScheduler::new().run(&inst, k).unwrap();
        let parallel = GreedyHeapScheduler::with_threads(threads).run(&inst, k).unwrap();
        prop_assert_eq!(&serial.schedule, &parallel.schedule);
        prop_assert_eq!(serial.total_utility.to_bits(), parallel.total_utility.to_bits());
        prop_assert_eq!(serial.stats.engine, parallel.stats.engine);
    }

    /// Replaying any disruption stream: the dirty-interval score cache and
    /// the exhaustive `score_all` reference produce bit-identical repair
    /// reports, schedules and Ω at every step, and the cache never does
    /// *more* scoring work.
    #[test]
    fn cached_online_repair_replays_streams_bit_identically(
        cfg in instance_config(),
        k_frac in 0.2f64..1.0,
        stream in prop::collection::vec(disruption_strategy(), 1..25),
    ) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).min(inst.num_events());
        let seeded = GreedyScheduler::new().run(&inst, k).unwrap();
        let mut cached = OnlineSession::new(&inst, &seeded.schedule).unwrap();
        let mut full = OnlineSession::new(&inst, &seeded.schedule).unwrap();
        full.set_exhaustive_rescan(true);
        let base_budget = inst.budget();
        for (step, raw) in stream.iter().enumerate() {
            let a = apply(&mut cached, raw, inst.num_users(), inst.num_intervals(),
                          inst.num_events(), base_budget);
            let b = apply(&mut full, raw, inst.num_users(), inst.num_intervals(),
                          inst.num_events(), base_budget);
            prop_assert_eq!(a, b, "step {} diverged: {:?}", step, raw);
        }
        let (c, f) = (cached.counters(), full.counters());
        prop_assert!(c.score_evaluations <= f.score_evaluations,
            "cache did more evals: {} vs {}", c.score_evaluations, f.score_evaluations);
        prop_assert!(c.posting_visits <= f.posting_visits);
        prop_assert_eq!(c.assigns, f.assigns);
        prop_assert_eq!(c.unassigns, f.unassigns);
    }
}
