//! Candidate time intervals.

use crate::ids::IntervalId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A candidate time interval `t ∈ T`: a period available for organizing
/// events, e.g. "Monday 19:00–22:00".
///
/// The paper requires the intervals in `T` to be pairwise disjoint; the
/// [`InstanceBuilder`](crate::instance::InstanceBuilder) validates this.
/// Times are opaque ticks (e.g. minutes since the schedule horizon start);
/// the engine never interprets them beyond disjointness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Dense id of this interval.
    pub id: IntervalId,
    /// Inclusive start tick.
    pub start: u64,
    /// Exclusive end tick. Must be strictly greater than `start`.
    pub end: u64,
}

impl TimeInterval {
    /// Creates an interval; panics if `end <= start` (a construction bug,
    /// not a data error — data errors are reported by the builder).
    pub fn new(id: IntervalId, start: u64, end: u64) -> Self {
        assert!(end > start, "interval {id} must have end > start");
        Self { id, start, end }
    }

    /// Duration in ticks.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Whether two intervals overlap in time (half-open semantics).
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether a tick falls within the interval.
    #[inline]
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.end
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..{})", self.id, self.start, self.end)
    }
}

/// Builds `n` equally sized, disjoint, consecutive intervals — the common
/// shape for experiment grids ("150 evening slots").
pub fn uniform_grid(n: usize, slot_len: u64) -> Vec<TimeInterval> {
    assert!(slot_len > 0, "slot length must be positive");
    (0..n)
        .map(|i| {
            TimeInterval::new(
                IntervalId::new(i as u32),
                i as u64 * slot_len,
                (i as u64 + 1) * slot_len,
            )
        })
        .collect()
}

/// Builds `n` disjoint intervals with a gap between consecutive slots
/// (e.g. one 3-hour slot per evening).
pub fn spaced_grid(n: usize, slot_len: u64, gap: u64) -> Vec<TimeInterval> {
    assert!(slot_len > 0, "slot length must be positive");
    let stride = slot_len + gap;
    (0..n)
        .map(|i| {
            let start = i as u64 * stride;
            TimeInterval::new(IntervalId::new(i as u32), start, start + slot_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_contains() {
        let t = TimeInterval::new(IntervalId::new(0), 10, 20);
        assert_eq!(t.duration(), 10);
        assert!(t.contains(10));
        assert!(t.contains(19));
        assert!(!t.contains(20));
        assert!(!t.contains(9));
    }

    #[test]
    #[should_panic(expected = "end > start")]
    fn empty_interval_panics() {
        let _ = TimeInterval::new(IntervalId::new(0), 5, 5);
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let a = TimeInterval::new(IntervalId::new(0), 0, 10);
        let b = TimeInterval::new(IntervalId::new(1), 10, 20);
        let c = TimeInterval::new(IntervalId::new(2), 9, 11);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(c.overlaps(&a), "overlap is symmetric");
    }

    #[test]
    fn uniform_grid_is_disjoint_and_consecutive() {
        let grid = uniform_grid(5, 100);
        assert_eq!(grid.len(), 5);
        for w in grid.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(grid[4].id, IntervalId::new(4));
    }

    #[test]
    fn spaced_grid_leaves_gaps() {
        let grid = spaced_grid(3, 180, 60);
        assert_eq!(grid[0].end, 180);
        assert_eq!(grid[1].start, 240);
        for w in grid.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
    }

    #[test]
    fn display_format() {
        let t = TimeInterval::new(IntervalId::new(3), 1, 2);
        assert_eq!(t.to_string(), "t3[1..2)");
    }
}
