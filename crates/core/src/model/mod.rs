//! Domain entities of the SES problem: intervals, candidate events,
//! competing events, and the organizer.

pub mod competing;
pub mod event;
pub mod interval;
pub mod organizer;

pub use competing::CompetingEvent;
pub use event::CandidateEvent;
pub use interval::{spaced_grid, uniform_grid, TimeInterval};
pub use organizer::Organizer;
