//! The event organizer and its resource budget.

use serde::{Deserialize, Serialize};

/// The organizer (company, venue, …) running the schedule.
///
/// The only quantity the optimization consumes is the per-interval resource
/// budget `θ`: the total required resources of events scheduled in any single
/// interval must not exceed it (e.g. available staff at any one time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Organizer {
    /// Available resources `θ > 0` per time interval.
    pub available_resources: f64,
    /// Optional label for reports.
    pub name: Option<String>,
}

impl Organizer {
    /// Creates an organizer with budget `θ`.
    pub fn new(available_resources: f64) -> Self {
        Self {
            available_resources,
            name: None,
        }
    }

    /// Creates a labelled organizer.
    pub fn named(available_resources: f64, name: impl Into<String>) -> Self {
        Self {
            available_resources,
            name: Some(name.into()),
        }
    }

    /// An organizer with effectively unlimited resources, for instances where
    /// only the location constraint matters (the paper's Theorem 1 uses the
    /// converse restriction).
    pub fn unconstrained() -> Self {
        Self::new(f64::INFINITY)
    }
}

impl Default for Organizer {
    /// The paper's experimental default: `θ = 20`.
    fn default() -> Self {
        Self::new(20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        assert_eq!(Organizer::default().available_resources, 20.0);
    }

    #[test]
    fn unconstrained_is_infinite() {
        assert!(Organizer::unconstrained().available_resources.is_infinite());
    }

    #[test]
    fn named_keeps_label() {
        let o = Organizer::named(10.0, "Summerfest Inc.");
        assert_eq!(o.name.as_deref(), Some("Summerfest Inc."));
    }
}
