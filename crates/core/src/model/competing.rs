//! Competing (third-party) events.

use crate::ids::{CompetingEventId, IntervalId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A competing event `c ∈ C`: an event already scheduled by a third party
/// that may attract the organizer's potential attendees.
///
/// A competing event is pinned to the candidate interval `t_c` it temporally
/// coincides with; it is an *input* of the problem, never a decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompetingEvent {
    /// Dense id of this competing event.
    pub id: CompetingEventId,
    /// The candidate interval during which the competing event takes place.
    pub interval: IntervalId,
    /// Optional human-readable label.
    pub name: Option<String>,
}

impl CompetingEvent {
    /// Creates a competing event pinned to `interval`.
    pub fn new(id: CompetingEventId, interval: IntervalId) -> Self {
        Self {
            id,
            interval,
            name: None,
        }
    }

    /// Creates a labelled competing event.
    pub fn named(id: CompetingEventId, interval: IntervalId, name: impl Into<String>) -> Self {
        Self {
            id,
            interval,
            name: Some(name.into()),
        }
    }
}

impl fmt::Display for CompetingEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}@{}", self.interval),
            None => write!(f, "{}@{}", self.id, self.interval),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_to_interval() {
        let c = CompetingEvent::new(CompetingEventId::new(0), IntervalId::new(7));
        assert_eq!(c.interval, IntervalId::new(7));
        assert_eq!(c.to_string(), "c0@t7");
    }

    #[test]
    fn named_display() {
        let c = CompetingEvent::named(CompetingEventId::new(1), IntervalId::new(2), "Rival Gig");
        assert_eq!(c.to_string(), "Rival Gig@t2");
    }

    #[test]
    fn serde_roundtrip() {
        let c = CompetingEvent::named(CompetingEventId::new(3), IntervalId::new(1), "X");
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<CompetingEvent>(&json).unwrap(), c);
    }
}
