//! Candidate events.

use crate::ids::{EventId, LocationId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A candidate event `e ∈ E`: an event the organizer *may* schedule.
///
/// Each candidate event is tied to a location `ℓe` (the place that would host
/// it, e.g. a specific stage) and requires `ξe ≥ 0` organizer resources
/// (e.g. staff) when scheduled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvent {
    /// Dense id of this event.
    pub id: EventId,
    /// The location that hosts the event if it is scheduled.
    pub location: LocationId,
    /// Resources `ξe` consumed when the event is scheduled (`>= 0`).
    pub required_resources: f64,
    /// Optional human-readable label (carried through from datasets; never
    /// inspected by the engine).
    pub name: Option<String>,
}

impl CandidateEvent {
    /// Creates a candidate event without a label.
    pub fn new(id: EventId, location: LocationId, required_resources: f64) -> Self {
        Self {
            id,
            location,
            required_resources,
            name: None,
        }
    }

    /// Creates a labelled candidate event.
    pub fn named(
        id: EventId,
        location: LocationId,
        required_resources: f64,
        name: impl Into<String>,
    ) -> Self {
        Self {
            id,
            location,
            required_resources,
            name: Some(name.into()),
        }
    }

    /// Returns the label if present, otherwise the id rendering.
    pub fn display_name(&self) -> String {
        self.name.clone().unwrap_or_else(|| self.id.to_string())
    }
}

impl fmt::Display for CandidateEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} (ξ={})",
            self.display_name(),
            self.location,
            self.required_resources
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = CandidateEvent::new(EventId::new(0), LocationId::new(2), 3.5);
        assert_eq!(e.required_resources, 3.5);
        assert_eq!(e.display_name(), "e0");

        let named = CandidateEvent::named(EventId::new(1), LocationId::new(0), 1.0, "Pop Night");
        assert_eq!(named.display_name(), "Pop Night");
    }

    #[test]
    fn display_contains_location_and_resources() {
        let e = CandidateEvent::named(EventId::new(1), LocationId::new(4), 2.0, "Gala");
        let s = e.to_string();
        assert!(s.contains("Gala"));
        assert!(s.contains("l4"));
        assert!(s.contains("ξ=2"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = CandidateEvent::named(EventId::new(9), LocationId::new(1), 0.5, "Jazz");
        let json = serde_json::to_string(&e).unwrap();
        let back: CandidateEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
