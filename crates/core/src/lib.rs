//! # ses-core — Social Event Scheduling
//!
//! A faithful, production-quality implementation of the **Social Event
//! Scheduling (SES)** problem introduced by Bikakis, Kalogeraki and
//! Gunopulos (*ICDE 2018*): given candidate events, disjoint candidate time
//! intervals, competing third-party events and a population of users with
//! per-event interests and per-interval activity probabilities, schedule `k`
//! events so that the total expected attendance is maximized, subject to
//! per-interval location and resource constraints.
//!
//! ## What lives where
//!
//! * [`model`] — intervals, candidate events, competing events, organizer;
//! * [`interest`] / [`activity`] — the `µ(u,h)` and `σ(u,t)` inputs, with
//!   dense, sparse, slot-based and procedural backends;
//! * [`instance`] — validated problem instances ([`SesInstance`]);
//! * [`schedule`] — assignments and schedules;
//! * [`engine`] — the Luce-choice attendance engine: probabilities (Eq. 1),
//!   expected attendance (Eq. 2), total utility (Eq. 3) and incremental
//!   assignment scores (Eq. 4). The aggregates live in a **columnar slot
//!   index** (flat `B`/`M`/count/`σ` columns over ranked posting-list
//!   users, `DESIGN.md` §2) with batch scoring APIs
//!   ([`AttendanceEngine::score_all`], [`AttendanceEngine::score_frontier`])
//!   whose `_with` variants count into caller-owned [`EngineCounters`] for
//!   parallel shards;
//! * [`algorithms`] — the paper's greedy **GRD** (Algorithm 1), the **TOP**
//!   and **RAND** baselines, a priority-queue greedy (**GRD-PQ**), an exact
//!   branch-and-bound oracle and a local-search post-optimizer. The greedy
//!   family shards its scoring sweeps across `std::thread::scope` threads
//!   (`with_threads`) without changing any schedule;
//! * [`registry`] — the algorithm registry: [`SchedulerSpec`] parsing and
//!   [`registry::build`], the single mapping from spec strings to runnable
//!   schedulers (front ends must not string-match algorithm names);
//! * [`online`] — live schedule maintenance under disruptions
//!   ([`OnlineSession`]);
//! * [`error`] — the unified [`Error`] hierarchy folding every subsystem
//!   error into one type with `From` conversions;
//! * [`reduction`] — the Theorem 1 MKPI → SES reduction, executable;
//! * [`store`] — the persisted columnar instance store: pack a validated
//!   instance once, cold-open it later bit-identically (versioned,
//!   checksummed sections; `DESIGN.md` §12);
//! * [`testkit`] — deterministic instance factories for tests and benches.
//!
//! ## Ownership model
//!
//! [`SesInstance`] is immutable after construction and always handled as an
//! `Arc<SesInstance>` (`InstanceBuilder::build_shared` returns one).
//! [`AttendanceEngine`] and [`OnlineSession`] *own* a shared handle rather
//! than borrowing, so both are `Send + 'static`: a long-lived server can
//! keep sessions for many tenants in a map, move them across threads, and
//! drop instances only when the last engine is done. The higher-level
//! `ses-service` crate builds its request/response facade on exactly this
//! property.
//!
//! ## Quick example
//!
//! ```
//! use ses_core::prelude::*;
//!
//! // 2 users, 2 candidate events, 2 evening slots, 1 competing event.
//! let mut interest = InterestBuilder::new(2, 2, 1);
//! interest.set(UserId::new(0), EventId::new(0), 0.9).unwrap();
//! interest.set(UserId::new(1), EventId::new(1), 0.7).unwrap();
//! interest.set(UserId::new(0), CompetingEventId::new(0), 0.4).unwrap();
//!
//! let instance = SesInstance::builder()
//!     .organizer(Organizer::new(10.0))
//!     .intervals(uniform_grid(2, 180))
//!     .events(vec![
//!         CandidateEvent::new(EventId::new(0), LocationId::new(0), 2.0),
//!         CandidateEvent::new(EventId::new(1), LocationId::new(1), 2.0),
//!     ])
//!     .competing(vec![CompetingEvent::new(CompetingEventId::new(0), IntervalId::new(0))])
//!     .interest(interest.build_sparse().unwrap())
//!     .activity(ConstantActivity::new(2, 2, 0.8).unwrap())
//!     .build_shared() // Arc<SesInstance> — the handle engines consume
//!     .unwrap();
//!
//! let outcome = GreedyScheduler::new().run(&instance, 2).unwrap();
//! assert_eq!(outcome.len(), 2);
//! assert!(outcome.total_utility > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod algorithms;
pub mod engine;
pub mod error;
pub mod ids;
pub mod instance;
pub mod interest;
pub mod metrics;
pub mod model;
pub mod online;
pub mod reduction;
pub mod registry;
pub mod schedule;
pub mod store;
pub mod testkit;
pub mod util;

pub use activity::{
    ActivityModel, ConstantActivity, DenseActivity, HashedActivity, MaskedActivity, SlotActivity,
};
pub use algorithms::{
    AnnealingConfig, AnnealingScheduler, ExactScheduler, GreedyHeapScheduler, GreedyScheduler,
    LocalSearchConfig, LocalSearchScheduler, RandomScheduler, RunStats, ScheduleOutcome, Scheduler,
    SesError, TopScheduler,
};
pub use engine::{
    evaluate_schedule, AttendanceEngine, EngineCounters, EngineMemoryStats, Evaluation,
};
pub use error::Error;
pub use ids::{CompetingEventId, EventId, EventRef, IntervalId, LocationId, UserId};
pub use instance::{FeasibilityViolation, InstanceBuilder, SesInstance, ValidationError};
pub use interest::{DenseInterest, InterestBuilder, InterestModel, SparseInterest};
pub use metrics::{schedule_metrics, utility_upper_bound, IntervalReport, ScheduleMetrics};
pub use model::{
    spaced_grid, uniform_grid, CandidateEvent, CompetingEvent, Organizer, TimeInterval,
};
pub use online::{OnlineSession, RepairReport};
pub use registry::{SchedulerSpec, UnknownScheduler, SPEC_NAMES};
pub use schedule::{Assignment, Schedule, ScheduleError};
pub use store::{FoldState, StoreError, StoredActivity};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::activity::{
        ActivityModel, ConstantActivity, DenseActivity, HashedActivity, MaskedActivity,
        SlotActivity,
    };
    pub use crate::algorithms::{
        AnnealingScheduler, ExactScheduler, GreedyHeapScheduler, GreedyScheduler,
        LocalSearchScheduler, RandomScheduler, RunStats, ScheduleOutcome, Scheduler, SesError,
        TopScheduler,
    };
    pub use crate::engine::{evaluate_schedule, AttendanceEngine, EngineMemoryStats, Evaluation};
    pub use crate::error::Error;
    pub use crate::ids::{CompetingEventId, EventId, EventRef, IntervalId, LocationId, UserId};
    pub use crate::instance::{FeasibilityViolation, InstanceBuilder, SesInstance};
    pub use crate::interest::{DenseInterest, InterestBuilder, InterestModel, SparseInterest};
    pub use crate::metrics::{schedule_metrics, utility_upper_bound, ScheduleMetrics};
    pub use crate::model::{
        spaced_grid, uniform_grid, CandidateEvent, CompetingEvent, Organizer, TimeInterval,
    };
    pub use crate::online::{OnlineSession, RepairReport};
    pub use crate::registry::{self, SchedulerSpec};
    pub use crate::schedule::{Assignment, Schedule};
}
