//! Theorem 1 machinery: the Multiple Knapsack Problem with Identical bin
//! capacities (MKPI) and its reduction to SES.
//!
//! The paper proves SES strongly NP-hard by reducing MKPI to a restricted
//! SES instance. This module makes the reduction executable:
//!
//! * bins → time intervals, capacity → `θ`, items → events,
//!   weight → `ξ`, profit → interest;
//! * one user per item, each user interested in exactly their own item's
//!   event with `µ_i = p_i·K/(1−p_i)`, and in every interval's single
//!   competing event with interest `K`;
//! * `σ ≡ 1`, distinct locations (no location constraint binds).
//!
//! With that choice the Luce ratio for user `i` when event `i` is scheduled
//! collapses to `µ_i/(K+µ_i) = p_i`, so `Ω(S) = Σ_{i ∈ S} p_i` — the packed
//! profit — regardless of which bins items land in. Solving the reduced SES
//! instance exactly therefore solves the MKPI instance; the tests verify
//! this end-to-end against a brute-force MKPI solver.

use crate::activity::ConstantActivity;
use crate::ids::{CompetingEventId, EventId, IntervalId, LocationId, UserId};
use crate::instance::SesInstance;
use crate::interest::InterestBuilder;
use crate::model::{uniform_grid, CandidateEvent, CompetingEvent, Organizer};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One MKPI item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MkpiItem {
    /// Item weight (`> 0`).
    pub weight: f64,
    /// Item profit (`> 0`).
    pub profit: f64,
}

/// A Multiple Knapsack instance with identical bin capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MkpiInstance {
    /// Number of identical bins.
    pub num_bins: usize,
    /// Capacity of every bin.
    pub capacity: f64,
    /// The items.
    pub items: Vec<MkpiItem>,
}

/// Errors in MKPI data or reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionError {
    /// Weights and profits must be strictly positive and finite.
    InvalidItem {
        /// Index of the offending item.
        index: usize,
    },
    /// Capacity must be strictly positive.
    InvalidCapacity {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::InvalidItem { index } => {
                write!(f, "MKPI item {index} has non-positive weight or profit")
            }
            ReductionError::InvalidCapacity { value } => {
                write!(f, "MKPI capacity {value} must be positive")
            }
        }
    }
}

impl std::error::Error for ReductionError {}

impl MkpiInstance {
    /// Validates the instance data.
    pub fn validate(&self) -> Result<(), ReductionError> {
        if !self.capacity.is_finite() || self.capacity <= 0.0 {
            return Err(ReductionError::InvalidCapacity {
                value: self.capacity,
            });
        }
        for (i, item) in self.items.iter().enumerate() {
            let ok = item.weight > 0.0
                && item.weight.is_finite()
                && item.profit > 0.0
                && item.profit.is_finite();
            if !ok {
                return Err(ReductionError::InvalidItem { index: i });
            }
        }
        Ok(())
    }

    /// Brute-force optimum: tries every assignment of items to
    /// `{none, bin 0, …, bin m−1}`. Exponential — only for tiny instances
    /// (≤ ~8 items) used as the reduction oracle.
    pub fn solve_brute_force(&self) -> f64 {
        fn rec(inst: &MkpiInstance, i: usize, loads: &mut [f64], profit: f64, best: &mut f64) {
            if i == inst.items.len() {
                *best = best.max(profit);
                return;
            }
            let item = inst.items[i];
            // Skip item i.
            rec(inst, i + 1, loads, profit, best);
            // Place item i into each bin with room. Identical capacities make
            // bins interchangeable; trying each is still exact (just slower).
            for b in 0..loads.len() {
                if loads[b] + item.weight <= inst.capacity + 1e-12 {
                    loads[b] += item.weight;
                    rec(inst, i + 1, loads, profit + item.profit, best);
                    loads[b] -= item.weight;
                }
            }
        }
        let mut loads = vec![0.0; self.num_bins];
        let mut best = 0.0;
        rec(self, 0, &mut loads, 0.0, &mut best);
        best
    }
}

/// The SES instance produced by the Theorem 1 reduction, together with the
/// factor converting SES utility back to MKPI profit.
pub struct ReducedInstance {
    /// The restricted SES instance (shared, ready for engines and sessions).
    pub instance: Arc<SesInstance>,
    /// `MKPI profit = SES utility × profit_scale`.
    pub profit_scale: f64,
}

/// Builds the restricted SES instance of Theorem 1 from an MKPI instance.
///
/// Profits are normalized to `p_i = profit_i / (2·max_profit) ∈ (0, ½]` so
/// that with `K = 1` every interest `µ_i = p_i/(1−p_i) ≤ 1`; the returned
/// `profit_scale = 2·max_profit` undoes the normalization.
pub fn mkpi_to_ses(mkpi: &MkpiInstance) -> Result<ReducedInstance, ReductionError> {
    mkpi.validate()?;
    let n = mkpi.items.len();
    let m = mkpi.num_bins;
    let max_profit = mkpi
        .items
        .iter()
        .map(|i| i.profit)
        .fold(f64::MIN_POSITIVE, f64::max);
    let scale = 2.0 * max_profit;
    const K: f64 = 1.0;

    let mut interest = InterestBuilder::new(n, n, m);
    for (i, item) in mkpi.items.iter().enumerate() {
        let p = item.profit / scale; // ∈ (0, 1/2]
        let mu = p * K / (1.0 - p); // ≤ 1 by construction
        interest
            .set(UserId::new(i as u32), EventId::new(i as u32), mu)
            .expect("µ in range by construction");
        // Every user has interest K in the single competing event of every
        // interval.
        for t in 0..m {
            interest
                .set(UserId::new(i as u32), CompetingEventId::new(t as u32), K)
                .expect("K in range");
        }
    }

    let events = mkpi
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            // Distinct locations: the location constraint never binds
            // (restriction 7 of the proof sketch).
            CandidateEvent::new(
                EventId::new(i as u32),
                LocationId::new(i as u32),
                item.weight,
            )
        })
        .collect();
    let competing = (0..m)
        .map(|t| CompetingEvent::new(CompetingEventId::new(t as u32), IntervalId::new(t as u32)))
        .collect();

    let instance = SesInstance::builder()
        .organizer(Organizer::new(mkpi.capacity))
        .intervals(uniform_grid(m, 1))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().expect("valid by construction"))
        .activity(ConstantActivity::new(n, m, 1.0).expect("σ = 1 is valid"))
        .build_shared()
        .expect("reduction output must validate");

    Ok(ReducedInstance {
        instance,
        profit_scale: scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ExactScheduler, Scheduler};
    use crate::engine::AttendanceEngine;
    use crate::util::float::{approx_eq, approx_eq_tol};

    fn item(weight: f64, profit: f64) -> MkpiItem {
        MkpiItem { weight, profit }
    }

    #[test]
    fn validation_rejects_bad_data() {
        let bad = MkpiInstance {
            num_bins: 1,
            capacity: 0.0,
            items: Vec::new(),
        };
        assert!(matches!(
            bad.validate().unwrap_err(),
            ReductionError::InvalidCapacity { .. }
        ));
        let bad = MkpiInstance {
            num_bins: 1,
            capacity: 1.0,
            items: vec![item(1.0, -2.0)],
        };
        assert!(matches!(
            bad.validate().unwrap_err(),
            ReductionError::InvalidItem { index: 0 }
        ));
    }

    #[test]
    fn brute_force_solves_known_case() {
        // 2 bins of capacity 10; items (w, p):
        // (6, 30), (5, 20), (5, 19), (4, 10). Optimum packs (6+4) and (5+5):
        // all items fit → 79.
        let mkpi = MkpiInstance {
            num_bins: 2,
            capacity: 10.0,
            items: vec![
                item(6.0, 30.0),
                item(5.0, 20.0),
                item(5.0, 19.0),
                item(4.0, 10.0),
            ],
        };
        assert!(approx_eq(mkpi.solve_brute_force(), 79.0));

        // 1 bin: best pack is (6+4) → 30 + 10 = 40, beating (5+5) → 39.
        let single = MkpiInstance {
            num_bins: 1,
            ..mkpi
        };
        assert!(approx_eq(single.solve_brute_force(), 40.0));
    }

    #[test]
    fn scheduled_event_attendance_equals_normalized_profit() {
        // The core identity of the reduction: ω(e_i) = p_i wherever e_i goes.
        let mkpi = MkpiInstance {
            num_bins: 2,
            capacity: 10.0,
            items: vec![item(3.0, 8.0), item(4.0, 2.0)],
        };
        let reduced = mkpi_to_ses(&mkpi).unwrap();
        let inst = &reduced.instance;
        for t in 0..2u32 {
            let mut engine = AttendanceEngine::new(inst);
            engine.assign(EventId::new(0), IntervalId::new(t)).unwrap();
            let omega = engine.expected_attendance(EventId::new(0)).unwrap();
            let p0 = 8.0 / reduced.profit_scale;
            assert!(
                approx_eq(omega, p0),
                "interval {t}: ω = {omega}, expected p = {p0}"
            );
        }
    }

    #[test]
    fn attendance_is_independent_of_coscheduling() {
        // Users like exactly one candidate event, so co-scheduled events do
        // not cannibalize each other in the reduced instance.
        let mkpi = MkpiInstance {
            num_bins: 1,
            capacity: 10.0,
            items: vec![item(3.0, 5.0), item(3.0, 7.0)],
        };
        let reduced = mkpi_to_ses(&mkpi).unwrap();
        let mut engine = AttendanceEngine::new(&reduced.instance);
        engine.assign(EventId::new(0), IntervalId::new(0)).unwrap();
        let solo = engine.expected_attendance(EventId::new(0)).unwrap();
        engine.assign(EventId::new(1), IntervalId::new(0)).unwrap();
        let shared = engine.expected_attendance(EventId::new(0)).unwrap();
        assert!(approx_eq(solo, shared));
    }

    #[test]
    fn solving_reduced_ses_solves_mkpi() {
        let cases = [
            MkpiInstance {
                num_bins: 2,
                capacity: 10.0,
                items: vec![
                    item(6.0, 30.0),
                    item(5.0, 20.0),
                    item(5.0, 19.0),
                    item(4.0, 10.0),
                ],
            },
            MkpiInstance {
                num_bins: 1,
                capacity: 7.0,
                items: vec![item(3.0, 9.0), item(4.0, 12.0), item(5.0, 14.0)],
            },
            MkpiInstance {
                num_bins: 3,
                capacity: 5.0,
                items: vec![
                    item(4.0, 7.0),
                    item(4.0, 8.0),
                    item(4.0, 9.0),
                    item(2.0, 3.0),
                ],
            },
        ];
        for (i, mkpi) in cases.iter().enumerate() {
            let expected = mkpi.solve_brute_force();
            let reduced = mkpi_to_ses(mkpi).unwrap();
            // k = n lets the B&B pick the best subset of any size ≤ n.
            let out = ExactScheduler::new()
                .run(&reduced.instance, mkpi.items.len())
                .unwrap();
            let recovered = out.total_utility * reduced.profit_scale;
            assert!(
                approx_eq_tol(recovered, expected, 1e-6),
                "case {i}: SES-recovered profit {recovered} vs MKPI optimum {expected}"
            );
        }
    }

    #[test]
    fn reduction_respects_capacity_via_theta() {
        let mkpi = MkpiInstance {
            num_bins: 1,
            capacity: 5.0,
            items: vec![item(3.0, 1.0), item(3.0, 1.0)],
        };
        let reduced = mkpi_to_ses(&mkpi).unwrap();
        let mut engine = AttendanceEngine::new(&reduced.instance);
        engine.assign(EventId::new(0), IntervalId::new(0)).unwrap();
        // Second item does not fit (3 + 3 > 5) — mirrors the bin constraint.
        assert!(engine.assign(EventId::new(1), IntervalId::new(0)).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mkpi = MkpiInstance {
            num_bins: 2,
            capacity: 4.0,
            items: vec![item(1.0, 2.0)],
        };
        let json = serde_json::to_string(&mkpi).unwrap();
        assert_eq!(serde_json::from_str::<MkpiInstance>(&json).unwrap(), mkpi);
    }
}
