//! An exact branch-and-bound solver for small SES instances.
//!
//! SES is strongly NP-hard (Theorem 1), so exactness only scales to toy
//! sizes — which is precisely what a testing oracle needs: the property
//! suite verifies that every heuristic's utility is ≤ the optimum and that
//! GRD is near-optimal on random small instances.
//!
//! ## Bound
//!
//! The per-user gain of adding `r` to an interval is `g(M+µ) − g(M)` with
//! `g(x) = x/(B+x)` increasing and concave, so the marginal gain of an event
//! can only shrink as its interval fills. Hence `score(r→t | ∅)` — the score
//! against the *empty* schedule — upper-bounds `r`'s gain in any state, and
//! `max_t score(r→t | ∅)` ("solo bound") bounds it across intervals. At a
//! node with `r` slots left, the sum of the `r` largest solo bounds among
//! unprocessed events is an admissible upper bound on the remaining gain.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::schedule::Schedule;

use super::{validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// Exact branch-and-bound scheduler (testing oracle).
#[derive(Debug, Clone, Copy)]
pub struct ExactScheduler {
    /// Abort with [`SesError::ExactSearchExhausted`] after this many nodes.
    max_nodes: u64,
}

impl ExactScheduler {
    /// Creates a solver with the default node budget (2·10⁶).
    pub fn new() -> Self {
        Self {
            max_nodes: 2_000_000,
        }
    }

    /// Creates a solver with an explicit node budget.
    pub fn with_node_budget(max_nodes: u64) -> Self {
        Self { max_nodes }
    }
}

impl Default for ExactScheduler {
    fn default() -> Self {
        Self::new()
    }
}

struct Search<'e> {
    engine: &'e mut AttendanceEngine,
    /// Events in descending solo-bound order.
    order: Vec<EventId>,
    /// `cum[i]` = sum of the first `i` solo bounds in `order`.
    cum: Vec<f64>,
    intervals: Vec<IntervalId>,
    best_utility: f64,
    best_schedule: Schedule,
    nodes: u64,
    max_nodes: u64,
}

impl Search<'_> {
    /// Admissible bound on gain obtainable from `order[i..]` with `r` slots.
    fn upper_bound(&self, i: usize, r: usize) -> f64 {
        let end = (i + r).min(self.order.len());
        self.cum[end] - self.cum[i]
    }

    fn dfs(&mut self, i: usize, remaining: usize) -> Result<(), SesError> {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return Err(SesError::ExactSearchExhausted {
                explored: self.nodes,
                budget: self.max_nodes,
            });
        }
        let current = self.engine.total_utility();
        if current > self.best_utility {
            self.best_utility = current;
            self.best_schedule = self.engine.schedule().clone();
        }
        if remaining == 0 || i == self.order.len() {
            return Ok(());
        }
        // Prune: even the optimistic completion cannot beat the incumbent.
        if current + self.upper_bound(i, remaining) <= self.best_utility {
            return Ok(());
        }
        let event = self.order[i];
        // Branch 1: place `event` somewhere feasible.
        for ti in 0..self.intervals.len() {
            let interval = self.intervals[ti];
            if self.engine.check_assignment(event, interval).is_ok() {
                self.engine
                    .assign(event, interval)
                    .expect("checked assignment must apply");
                self.dfs(i + 1, remaining - 1)?;
                self.engine
                    .unassign(event)
                    .expect("assigned event must unassign");
            }
        }
        // Branch 2: skip `event`.
        self.dfs(i + 1, remaining)
    }
}

impl Scheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);

        let intervals: Vec<IntervalId> = (0..inst.num_intervals())
            .map(|t| IntervalId::new(t as u32))
            .collect();
        // Solo bounds against the empty schedule (batch-scored per event).
        let mut solo: Vec<(EventId, f64)> = (0..inst.num_events())
            .map(|e| {
                let event = EventId::new(e as u32);
                let bound = engine.score_all(event).into_iter().fold(0.0f64, f64::max);
                (event, bound)
            })
            .collect();
        solo.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let order: Vec<EventId> = solo.iter().map(|&(e, _)| e).collect();
        let mut cum = Vec::with_capacity(order.len() + 1);
        cum.push(0.0);
        for &(_, b) in &solo {
            cum.push(cum.last().unwrap() + b);
        }

        let mut search = Search {
            best_schedule: engine.schedule().clone(),
            engine: &mut engine,
            order,
            cum,
            intervals,
            best_utility: 0.0,
            nodes: 0,
            max_nodes: self.max_nodes,
        };
        search.dfs(0, k)?;

        let best_schedule = search.best_schedule;
        let best_utility = search.best_utility;
        let nodes = search.nodes;
        let placed = best_schedule.len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            schedule: best_schedule,
            total_utility: best_utility,
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops: nodes,
                updates: 0,
                memory: engine.memory_stats(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyHeapScheduler, GreedyScheduler, RandomScheduler, TopScheduler};
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::{approx_eq, approx_ge};

    #[test]
    fn finds_feasible_optimum_of_requested_size() {
        let inst = testkit::small_instance(1);
        let out = ExactScheduler::new().run(&inst, 3).unwrap();
        assert_eq!(out.len(), 3);
        inst.check_schedule(&out.schedule).unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(approx_eq(out.total_utility, eval.total_utility));
    }

    #[test]
    fn dominates_every_heuristic() {
        for seed in 0..6u64 {
            let inst = testkit::small_instance(seed);
            let k = 3;
            let opt = ExactScheduler::new().run(&inst, k).unwrap().total_utility;
            for sched in [
                &GreedyScheduler::new() as &dyn Scheduler,
                &GreedyHeapScheduler::new(),
                &TopScheduler::new(),
                &RandomScheduler::new(seed),
            ] {
                let h = sched.run(&inst, k).unwrap().total_utility;
                assert!(
                    approx_ge(opt, h),
                    "seed {seed}: {} utility {} exceeds optimum {}",
                    sched.name(),
                    h,
                    opt
                );
            }
        }
    }

    #[test]
    fn matches_exhaustive_enumeration_on_tiny_instance() {
        // Brute-force all ways to place 2 of the 3 events of the hand
        // instance and compare with the solver.
        let inst = testkit::hand_instance();
        let out = ExactScheduler::new().run(&inst, 2).unwrap();
        let mut best = 0.0f64;
        for e1 in 0..3u32 {
            for e2 in 0..3u32 {
                if e1 == e2 {
                    continue;
                }
                for t1 in 0..2u32 {
                    for t2 in 0..2u32 {
                        let mut s = inst.empty_schedule();
                        s.assign(EventId::new(e1), IntervalId::new(t1)).unwrap();
                        s.assign(EventId::new(e2), IntervalId::new(t2)).unwrap();
                        if inst.check_schedule(&s).is_ok() {
                            best = best.max(evaluate_schedule(&inst, &s).total_utility);
                        }
                    }
                }
            }
        }
        assert!(
            approx_eq(out.total_utility, best),
            "solver {} vs enumeration {}",
            out.total_utility,
            best
        );
    }

    #[test]
    fn node_budget_is_enforced() {
        let inst = testkit::small_instance(0);
        let err = ExactScheduler::with_node_budget(3)
            .run(&inst, 3)
            .unwrap_err();
        assert!(matches!(err, SesError::ExactSearchExhausted { .. }));
    }

    #[test]
    fn k_zero_returns_empty_optimum() {
        let inst = testkit::small_instance(2);
        let out = ExactScheduler::new().run(&inst, 0).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.total_utility, 0.0);
        assert!(out.complete);
    }

    #[test]
    fn handles_binding_constraints() {
        let inst = testkit::single_slot_shared_location(3);
        let out = ExactScheduler::new().run(&inst, 2).unwrap();
        assert_eq!(out.len(), 1, "only one event fits");
        assert!(!out.complete);
    }
}
