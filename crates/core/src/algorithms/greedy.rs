//! GRD — the paper's greedy algorithm (Algorithm 1), implemented faithfully:
//! an explicit assignment list `L`, a linear-scan `popTopAssgn`, and an eager
//! same-interval update pass after every selection.
//!
//! For a structurally faster variant with identical output quality see
//! [`GreedyHeapScheduler`](crate::algorithms::GreedyHeapScheduler); the two
//! are compared in the `algorithms` ablation bench (DESIGN.md, A1).

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::util::float::total_cmp;

use super::{validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// One entry of the assignment list `L`.
#[derive(Debug, Clone, Copy)]
struct ListEntry {
    event: EventId,
    interval: IntervalId,
    score: f64,
}

/// The paper's GRD (Algorithm 1).
///
/// * Line 2–4: score every `(e, t) ∈ E × T` pair and insert into `L`.
/// * Line 5–8: repeatedly pop the top-score assignment; if it is *valid*
///   (feasible and the event not yet scheduled) commit it.
/// * Line 9–13: after a commit, rescore every remaining entry of the selected
///   interval and drop entries that became invalid.
///
/// Worst-case cost `O(|E||T||U| + k|E||T| + k|E||U|)` exactly as analysed in
/// §III; space `O(|E||T|)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "GRD"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;
        let mut updates = 0u64;

        // Lines 2–4: generate all assignments.
        let mut list: Vec<ListEntry> = Vec::with_capacity(inst.num_events() * inst.num_intervals());
        for e in 0..inst.num_events() {
            let event = EventId::new(e as u32);
            for t in 0..inst.num_intervals() {
                let interval = IntervalId::new(t as u32);
                list.push(ListEntry {
                    event,
                    interval,
                    score: engine.score(event, interval),
                });
            }
        }

        // Lines 5–13: select k assignments.
        while engine.schedule().len() < k {
            // popTopAssgn: linear scan for the max, then O(1) removal.
            // Ties (common: an event scores identically on all empty
            // intervals with equal competing mass) are broken toward the
            // smallest (event, interval) ids — the same rule GRD-PQ uses, so
            // the two variants stay step-for-step identical.
            let Some(top_idx) = list
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    total_cmp(a.score, b.score)
                        .then_with(|| b.event.cmp(&a.event))
                        .then_with(|| b.interval.cmp(&a.interval))
                })
                .map(|(i, _)| i)
            else {
                break; // L exhausted — cannot place k assignments.
            };
            let top = list.swap_remove(top_idx);
            pops += 1;

            if engine.check_assignment(top.event, top.interval).is_err() {
                continue; // line 7: popped assignment not valid — discard.
            }
            engine
                .assign(top.event, top.interval)
                .expect("checked assignment must apply");

            if engine.schedule().len() < k {
                // Lines 10–13: update entries of the selected interval and
                // drop entries that became invalid anywhere.
                let selected_interval = top.interval;
                let mut i = 0;
                while i < list.len() {
                    let entry = list[i];
                    if engine
                        .check_assignment(entry.event, entry.interval)
                        .is_err()
                    {
                        list.swap_remove(i);
                        continue;
                    }
                    if entry.interval == selected_interval {
                        list[i].score = engine.score(entry.event, entry.interval);
                        updates += 1;
                    }
                    i += 1;
                }
            }
        }

        let requested = k;
        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == requested,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates,
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn schedules_exactly_k_when_feasible() {
        let inst = testkit::medium_instance(42);
        let out = GreedyScheduler::new().run(&inst, 5).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.complete);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn reported_utility_matches_reference_evaluation() {
        let inst = testkit::medium_instance(7);
        let out = GreedyScheduler::new().run(&inst, 6).unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(
            approx_eq(out.total_utility, eval.total_utility),
            "{} vs {}",
            out.total_utility,
            eval.total_utility
        );
    }

    #[test]
    fn rejects_k_larger_than_event_count() {
        let inst = testkit::medium_instance(1);
        let err = GreedyScheduler::new().run(&inst, 1000).unwrap_err();
        assert!(matches!(err, SesError::InvalidK { .. }));
    }

    #[test]
    fn k_zero_yields_empty_schedule() {
        let inst = testkit::medium_instance(3);
        let out = GreedyScheduler::new().run(&inst, 0).unwrap();
        assert!(out.is_empty());
        assert!(out.complete);
        assert_eq!(out.total_utility, 0.0);
    }

    #[test]
    fn first_pick_is_globally_best_initial_assignment() {
        // By construction the first greedy pick must have the maximum
        // initial score among all valid (event, interval) pairs.
        let inst = testkit::medium_instance(11);
        let engine = AttendanceEngine::new(&inst);
        let mut best = f64::NEG_INFINITY;
        for e in 0..inst.num_events() {
            for t in 0..inst.num_intervals() {
                let (ev, iv) = (EventId::new(e as u32), IntervalId::new(t as u32));
                if engine.is_valid(ev, iv) {
                    best = best.max(engine.score(ev, iv));
                }
            }
        }
        let out = GreedyScheduler::new().run(&inst, 1).unwrap();
        assert!(
            approx_eq(out.total_utility, best),
            "greedy first pick {} vs best initial score {}",
            out.total_utility,
            best
        );
    }

    #[test]
    fn incomplete_when_constraints_bind() {
        // One interval, one location shared by every event: only one event
        // can ever be placed.
        let inst = testkit::single_slot_shared_location(4);
        let out = GreedyScheduler::new().run(&inst, 3).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.complete);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn stats_are_populated() {
        let inst = testkit::medium_instance(5);
        let out = GreedyScheduler::new().run(&inst, 4).unwrap();
        assert!(out.stats.pops >= 4);
        assert!(out.stats.engine.score_evaluations > 0);
        // Initial scoring alone is |E|·|T| evaluations.
        assert!(
            out.stats.engine.score_evaluations >= (inst.num_events() * inst.num_intervals()) as u64
        );
    }
}
