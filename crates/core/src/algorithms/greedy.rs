//! GRD — the paper's greedy algorithm (Algorithm 1), implemented faithfully:
//! an explicit assignment list `L`, a linear-scan `popTopAssgn`, and an eager
//! same-interval update pass after every selection.
//!
//! For a structurally faster variant with identical output quality see
//! [`GreedyHeapScheduler`](crate::algorithms::GreedyHeapScheduler); the two
//! are compared in the `algorithms` ablation bench (DESIGN.md, A1).

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::util::float::total_cmp;

use super::{frontier_scores, initial_scores, validate_k};
use super::{RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// One entry of the assignment list `L`.
#[derive(Debug, Clone, Copy)]
struct ListEntry {
    event: EventId,
    interval: IntervalId,
    score: f64,
}

/// The paper's GRD (Algorithm 1).
///
/// * Line 2–4: score every `(e, t) ∈ E × T` pair and insert into `L`.
/// * Line 5–8: repeatedly pop the top-score assignment; if it is *valid*
///   (feasible and the event not yet scheduled) commit it.
/// * Line 9–13: after a commit, rescore the surviving entries of every
///   *dirty* interval — the engine's generation counters name exactly the
///   intervals whose mass columns moved (offline: the selected interval) —
///   and drop entries that became invalid. Entries at clean intervals keep
///   their bit-exact scores untouched.
///
/// Worst-case cost `O(|E||T||U| + k|E||T| + k|E||U|)` exactly as analysed in
/// §III; space `O(|E||T|)`.
///
/// Both scoring sweeps — the initial fill and the per-commit interval
/// rescoring — go through the engine's batch API and can be sharded across
/// scoped threads with [`Self::with_threads`]. Scores are computed against
/// frozen engine state either way, so parallel runs pick the exact same
/// schedule as serial ones.
#[derive(Debug, Clone, Copy)]
pub struct GreedyScheduler {
    threads: usize,
}

impl Default for GreedyScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyScheduler {
    /// Creates the scheduler (serial scoring).
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Creates the scheduler with scoring sweeps sharded across up to
    /// `threads` scoped threads (`0` is treated as `1`).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured scoring-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "GRD"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;
        let mut updates = 0u64;

        // Lines 2–4: generate all assignments (batch-scored, sharded).
        let mut list: Vec<ListEntry> = initial_scores(&mut engine, self.threads)
            .into_iter()
            .map(|(event, interval, score)| ListEntry {
                event,
                interval,
                score,
            })
            .collect();
        // Every list entry is fresh as of this clock snapshot; after each
        // commit the engine tells us exactly which intervals' columns moved.
        let mut last_clock = engine.clock();

        let mut select_span = ses_obs::span(ses_obs::Stage::Select);
        let counters_at_select = engine.counters();

        // Lines 5–13: select k assignments.
        while engine.schedule().len() < k {
            // popTopAssgn: linear scan for the max, then O(1) removal.
            // Ties (common: an event scores identically on all empty
            // intervals with equal competing mass) are broken toward the
            // smallest (event, interval) ids — the same rule GRD-PQ uses, so
            // the two variants stay step-for-step identical.
            let Some(top_idx) = list
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    total_cmp(a.score, b.score)
                        .then_with(|| b.event.cmp(&a.event))
                        .then_with(|| b.interval.cmp(&a.interval))
                })
                .map(|(i, _)| i)
            else {
                break; // L exhausted — cannot place k assignments.
            };
            let top = list.swap_remove(top_idx);
            pops += 1;

            if engine.check_assignment(top.event, top.interval).is_err() {
                continue; // line 7: popped assignment not valid — discard.
            }
            engine
                .assign(top.event, top.interval)
                .expect("checked assignment must apply");

            if engine.schedule().len() < k {
                // Lines 10–13: drop entries that became invalid anywhere
                // (cheap, no scoring), then rescore only the *dirty*
                // intervals' surviving frontiers — the engine's generation
                // counters name exactly the intervals whose columns moved
                // since the last rescan (offline that is the selected
                // interval, or nothing at all when the committed event moved
                // no mass), so every other entry's score is still bit-exact.
                let mut i = 0;
                while i < list.len() {
                    let entry = list[i];
                    if engine
                        .check_assignment(entry.event, entry.interval)
                        .is_err()
                    {
                        list.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                for dirty in engine.dirty_intervals(last_clock) {
                    let idxs: Vec<usize> = (0..list.len())
                        .filter(|&i| list[i].interval == dirty)
                        .collect();
                    let events: Vec<EventId> = idxs.iter().map(|&i| list[i].event).collect();
                    let scores = frontier_scores(&mut engine, &events, dirty, self.threads);
                    for (&i, score) in idxs.iter().zip(scores) {
                        list[i].score = score;
                    }
                    updates += idxs.len() as u64;
                }
                last_clock = engine.clock();
            }
        }
        select_span.set_ops(engine.counters().delta_since(counters_at_select).as_ops());
        select_span.set_aux(pops, updates);
        drop(select_span);

        let requested = k;
        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == requested,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates,
                memory: engine.memory_stats(),
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn schedules_exactly_k_when_feasible() {
        let inst = testkit::medium_instance(42);
        let out = GreedyScheduler::new().run(&inst, 5).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.complete);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn reported_utility_matches_reference_evaluation() {
        let inst = testkit::medium_instance(7);
        let out = GreedyScheduler::new().run(&inst, 6).unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(
            approx_eq(out.total_utility, eval.total_utility),
            "{} vs {}",
            out.total_utility,
            eval.total_utility
        );
    }

    #[test]
    fn rejects_k_larger_than_event_count() {
        let inst = testkit::medium_instance(1);
        let err = GreedyScheduler::new().run(&inst, 1000).unwrap_err();
        assert!(matches!(err, SesError::InvalidK { .. }));
    }

    #[test]
    fn k_zero_yields_empty_schedule() {
        let inst = testkit::medium_instance(3);
        let out = GreedyScheduler::new().run(&inst, 0).unwrap();
        assert!(out.is_empty());
        assert!(out.complete);
        assert_eq!(out.total_utility, 0.0);
    }

    #[test]
    fn first_pick_is_globally_best_initial_assignment() {
        // By construction the first greedy pick must have the maximum
        // initial score among all valid (event, interval) pairs.
        let inst = testkit::medium_instance(11);
        let mut engine = AttendanceEngine::new(&inst);
        let mut best = f64::NEG_INFINITY;
        for e in 0..inst.num_events() {
            for t in 0..inst.num_intervals() {
                let (ev, iv) = (EventId::new(e as u32), IntervalId::new(t as u32));
                if engine.is_valid(ev, iv) {
                    best = best.max(engine.score(ev, iv));
                }
            }
        }
        let out = GreedyScheduler::new().run(&inst, 1).unwrap();
        assert!(
            approx_eq(out.total_utility, best),
            "greedy first pick {} vs best initial score {}",
            out.total_utility,
            best
        );
    }

    #[test]
    fn incomplete_when_constraints_bind() {
        // One interval, one location shared by every event: only one event
        // can ever be placed.
        let inst = testkit::single_slot_shared_location(4);
        let out = GreedyScheduler::new().run(&inst, 3).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.complete);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn parallel_scoring_matches_serial_schedules_exactly() {
        // Sharded scoring reads frozen engine state, so the parallel run
        // must reproduce the serial schedule, utility bits and counters.
        for seed in 0..6u64 {
            let inst = testkit::medium_instance(seed);
            let serial = GreedyScheduler::new().run(&inst, 6).unwrap();
            for threads in [2usize, 4] {
                let par = GreedyScheduler::with_threads(threads)
                    .run(&inst, 6)
                    .unwrap();
                assert_eq!(
                    par.schedule, serial.schedule,
                    "seed {seed}, {threads} threads"
                );
                assert_eq!(par.total_utility.to_bits(), serial.total_utility.to_bits());
                assert_eq!(par.stats.engine, serial.stats.engine, "counters merge");
            }
        }
    }

    #[test]
    fn absurd_thread_counts_are_clamped_not_spawned() {
        // A hostile `threads` value (e.g. from a wire request) must clamp to
        // a sane shard count, not attempt a million `scope.spawn`s.
        let inst = testkit::medium_instance(2);
        let serial = GreedyScheduler::new().run(&inst, 5).unwrap();
        let absurd = GreedyScheduler::with_threads(1_000_000)
            .run(&inst, 5)
            .unwrap();
        assert_eq!(absurd.schedule, serial.schedule);
        assert_eq!(
            absurd.total_utility.to_bits(),
            serial.total_utility.to_bits()
        );
    }

    #[test]
    fn stats_are_populated() {
        let inst = testkit::medium_instance(5);
        let out = GreedyScheduler::new().run(&inst, 4).unwrap();
        assert!(out.stats.pops >= 4);
        assert!(out.stats.engine.score_evaluations > 0);
        // Initial scoring alone is |E|·|T| evaluations.
        assert!(
            out.stats.engine.score_evaluations >= (inst.num_events() * inst.num_intervals()) as u64
        );
    }
}
