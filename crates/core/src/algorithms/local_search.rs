//! Local-search post-optimization (extension beyond the paper).
//!
//! Wraps any base scheduler and hill-climbs its schedule with two move
//! kinds until a full pass finds no improvement (or a pass cap is hit):
//!
//! * **relocate** — move a scheduled event to a different interval;
//! * **swap** — replace a scheduled event with an unscheduled one (at any
//!   feasible interval).
//!
//! Every accepted move strictly increases Ω, so termination is guaranteed;
//! feasibility is preserved because moves go through the engine's checked
//! `assign`. The A4 ablation (DESIGN.md) measures how much headroom GRD
//! leaves on the table.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;

use super::{RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for [`LocalSearchScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Maximum full improvement passes.
    pub max_passes: usize,
    /// Enable the relocate move.
    pub relocate: bool,
    /// Enable the swap move (costlier: `O(k · |E| · |T|)` per pass).
    pub swap: bool,
    /// Minimum strict improvement for a move to be accepted.
    pub min_gain: f64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            max_passes: 10,
            relocate: true,
            swap: true,
            min_gain: 1e-9,
        }
    }
}

/// Hill-climbing post-optimizer around a base scheduler.
#[derive(Debug, Clone)]
pub struct LocalSearchScheduler<S> {
    base: S,
    config: LocalSearchConfig,
}

impl<S: Scheduler> LocalSearchScheduler<S> {
    /// Wraps `base` with default local-search settings.
    pub fn new(base: S) -> Self {
        Self {
            base,
            config: LocalSearchConfig::default(),
        }
    }

    /// Wraps `base` with explicit settings.
    pub fn with_config(base: S, config: LocalSearchConfig) -> Self {
        Self { base, config }
    }

    /// One relocate pass; returns whether any move was accepted.
    fn relocate_pass(&self, engine: &mut AttendanceEngine, moves: &mut u64) -> bool {
        let mut improved = false;
        let scheduled = engine.schedule().scheduled_events();
        let num_intervals = engine.instance().num_intervals();
        for event in scheduled {
            let home = engine
                .schedule()
                .interval_of(event)
                .expect("event was scheduled");
            let loss = engine.unassign(event).expect("event was scheduled");
            // Find the best feasible placement (home remains feasible since
            // we just vacated it).
            let mut best_t = home;
            let mut best_gain = f64::NEG_INFINITY;
            for t in 0..num_intervals {
                let interval = IntervalId::new(t as u32);
                if engine.check_assignment(event, interval).is_ok() {
                    *moves += 1;
                    let gain = engine.score(event, interval);
                    if gain > best_gain {
                        best_gain = gain;
                        best_t = interval;
                    }
                }
            }
            let target = if best_gain > loss + self.config.min_gain {
                improved |= best_t != home;
                best_t
            } else {
                home
            };
            engine
                .assign(event, target)
                .expect("home or checked target must be assignable");
        }
        improved
    }

    /// One swap pass; returns whether any move was accepted.
    fn swap_pass(&self, engine: &mut AttendanceEngine, moves: &mut u64) -> bool {
        let mut improved = false;
        let num_events = engine.instance().num_events();
        let num_intervals = engine.instance().num_intervals();
        let scheduled = engine.schedule().scheduled_events();
        for event in scheduled {
            // `event` may have been swapped out by an earlier iteration.
            let Some(home) = engine.schedule().interval_of(event) else {
                continue;
            };
            let loss = engine.unassign(event).expect("event is scheduled");
            let mut best: Option<(EventId, IntervalId, f64)> = None;
            for f in 0..num_events {
                let cand = EventId::new(f as u32);
                if engine.schedule().contains(cand) || cand == event {
                    continue;
                }
                for t in 0..num_intervals {
                    let interval = IntervalId::new(t as u32);
                    if engine.check_assignment(cand, interval).is_ok() {
                        *moves += 1;
                        let gain = engine.score(cand, interval);
                        if best.is_none_or(|(_, _, g)| gain > g) {
                            best = Some((cand, interval, gain));
                        }
                    }
                }
            }
            match best {
                Some((cand, interval, gain)) if gain > loss + self.config.min_gain => {
                    engine
                        .assign(cand, interval)
                        .expect("checked swap target must apply");
                    improved = true;
                }
                _ => {
                    engine
                        .assign(event, home)
                        .expect("vacated home must be assignable");
                }
            }
        }
        improved
    }
}

impl<S: Scheduler> Scheduler for LocalSearchScheduler<S> {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        let base_outcome = self.base.run(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut engine = AttendanceEngine::with_schedule(inst, &base_outcome.schedule)
            .expect("base schedule must be feasible");
        let mut moves = 0u64;
        let mut passes = 0u64;

        for _ in 0..self.config.max_passes {
            passes += 1;
            let mut improved = false;
            if self.config.relocate {
                improved |= self.relocate_pass(&mut engine, &mut moves);
            }
            if self.config.swap {
                improved |= self.swap_pass(&mut engine, &mut moves);
            }
            if !improved {
                break;
            }
        }

        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed() + base_outcome.stats.elapsed,
                engine: engine.counters(),
                pops: moves,
                updates: passes,
                memory: engine.memory_stats(),
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ExactScheduler, GreedyScheduler, RandomScheduler, TopScheduler};
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::{approx_eq, approx_ge};

    #[test]
    fn never_worse_than_base() {
        for seed in 0..6u64 {
            let inst = testkit::medium_instance(seed);
            let base = RandomScheduler::new(seed).run(&inst, 6).unwrap();
            let ls = LocalSearchScheduler::new(RandomScheduler::new(seed))
                .run(&inst, 6)
                .unwrap();
            assert!(
                approx_ge(ls.total_utility, base.total_utility),
                "seed {seed}: LS {} < base {}",
                ls.total_utility,
                base.total_utility
            );
            inst.check_schedule(&ls.schedule).unwrap();
            assert_eq!(ls.len(), base.len(), "LS must preserve schedule size");
        }
    }

    #[test]
    fn improves_a_poor_baseline_materially() {
        // Over several seeds, LS on top of RAND should close part of the gap
        // to GRD.
        let mut rand_sum = 0.0;
        let mut ls_sum = 0.0;
        for seed in 0..6u64 {
            let inst = testkit::medium_instance(seed);
            rand_sum += RandomScheduler::new(seed)
                .run(&inst, 6)
                .unwrap()
                .total_utility;
            ls_sum += LocalSearchScheduler::new(RandomScheduler::new(seed))
                .run(&inst, 6)
                .unwrap()
                .total_utility;
        }
        assert!(
            ls_sum > rand_sum,
            "LS mean {} should beat RAND mean {}",
            ls_sum / 6.0,
            rand_sum / 6.0
        );
    }

    #[test]
    fn bounded_by_exact_optimum() {
        for seed in 0..4u64 {
            let inst = testkit::small_instance(seed);
            let opt = ExactScheduler::new().run(&inst, 3).unwrap().total_utility;
            let ls = LocalSearchScheduler::new(TopScheduler::new())
                .run(&inst, 3)
                .unwrap()
                .total_utility;
            assert!(approx_ge(opt, ls), "seed {seed}: LS {ls} exceeds OPT {opt}");
        }
    }

    #[test]
    fn reported_utility_matches_reference() {
        let inst = testkit::medium_instance(3);
        let out = LocalSearchScheduler::new(GreedyScheduler::new())
            .run(&inst, 6)
            .unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(
            approx_eq(out.total_utility, eval.total_utility),
            "incremental {} vs reference {}",
            out.total_utility,
            eval.total_utility
        );
    }

    #[test]
    fn relocate_only_configuration_works() {
        let inst = testkit::medium_instance(4);
        let cfg = LocalSearchConfig {
            swap: false,
            ..LocalSearchConfig::default()
        };
        let out = LocalSearchScheduler::with_config(RandomScheduler::new(1), cfg)
            .run(&inst, 5)
            .unwrap();
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn zero_passes_is_identity() {
        let inst = testkit::medium_instance(5);
        let cfg = LocalSearchConfig {
            max_passes: 0,
            ..LocalSearchConfig::default()
        };
        let base = RandomScheduler::new(2).run(&inst, 5).unwrap();
        let out = LocalSearchScheduler::with_config(RandomScheduler::new(2), cfg)
            .run(&inst, 5)
            .unwrap();
        assert_eq!(out.schedule, base.schedule);
    }
}
