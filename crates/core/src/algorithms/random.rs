//! RAND — the second baseline of §IV: assign events to intervals at random,
//! keeping only feasible assignments, until `k` events are placed.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// The RAND baseline. Deterministic for a given seed.
#[derive(Debug, Clone, Copy)]
pub struct RandomScheduler {
    seed: u64,
}

impl RandomScheduler {
    /// Creates the scheduler with an explicit RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomScheduler {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;

        let mut events: Vec<EventId> = (0..inst.num_events())
            .map(|e| EventId::new(e as u32))
            .collect();
        events.shuffle(&mut rng);
        let mut intervals: Vec<IntervalId> = (0..inst.num_intervals())
            .map(|t| IntervalId::new(t as u32))
            .collect();

        for event in events {
            if engine.schedule().len() >= k {
                break;
            }
            intervals.shuffle(&mut rng);
            for &interval in &intervals {
                pops += 1;
                if engine.check_assignment(event, interval).is_ok() {
                    engine
                        .assign(event, interval)
                        .expect("checked assignment must apply");
                    break;
                }
            }
        }

        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates: 0,
                memory: engine.memory_stats(),
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn schedules_k_feasibly() {
        let inst = testkit::medium_instance(42);
        let out = RandomScheduler::new(1).run(&inst, 6).unwrap();
        assert_eq!(out.len(), 6);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = testkit::medium_instance(42);
        let a = RandomScheduler::new(5).run(&inst, 6).unwrap();
        let b = RandomScheduler::new(5).run(&inst, 6).unwrap();
        assert_eq!(a.schedule, b.schedule);
        let c = RandomScheduler::new(6).run(&inst, 6).unwrap();
        // Different seeds will almost surely differ on this instance.
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn utility_matches_reference() {
        let inst = testkit::medium_instance(2);
        let out = RandomScheduler::new(9).run(&inst, 5).unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(approx_eq(out.total_utility, eval.total_utility));
    }

    #[test]
    fn respects_binding_constraints() {
        let inst = testkit::single_slot_shared_location(5);
        let out = RandomScheduler::new(0).run(&inst, 5).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.complete);
    }
}
