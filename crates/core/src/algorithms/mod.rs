//! Scheduling algorithms: the paper's greedy (GRD, Algorithm 1), the TOP and
//! RAND baselines of §IV, plus an exact branch-and-bound oracle and a
//! local-search post-optimizer as extensions.

pub mod annealing;
pub mod exact;
pub mod greedy;
pub mod greedy_heap;
pub mod local_search;
pub mod random;
pub mod top;

pub use annealing::{AnnealingConfig, AnnealingScheduler};
pub use exact::ExactScheduler;
pub use greedy::GreedyScheduler;
pub use greedy_heap::GreedyHeapScheduler;
pub use local_search::{LocalSearchConfig, LocalSearchScheduler};
pub use random::RandomScheduler;
pub use top::TopScheduler;

use crate::engine::EngineCounters;
use crate::instance::SesInstance;
use crate::schedule::Schedule;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by schedulers.
#[derive(Debug, Clone, PartialEq)]
pub enum SesError {
    /// `k` exceeds the number of candidate events (no schedule of size `k`
    /// can exist).
    InvalidK {
        /// Requested number of events.
        k: usize,
        /// Available candidate events.
        num_events: usize,
    },
    /// The exact solver refused the instance (search space too large) or ran
    /// out of its node budget.
    ExactSearchExhausted {
        /// Nodes explored before giving up.
        explored: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for SesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SesError::InvalidK { k, num_events } => {
                write!(
                    f,
                    "k = {k} exceeds the number of candidate events ({num_events})"
                )
            }
            SesError::ExactSearchExhausted { explored, budget } => write!(
                f,
                "exact search exceeded its node budget ({explored} explored, budget {budget})"
            ),
        }
    }
}

impl std::error::Error for SesError {}

/// Wall-clock and operation-count statistics of a scheduler run.
///
/// Operation counts are hardware-independent and are what the complexity
/// analysis in the paper's §III predicts; the figure harness reports both.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Engine counters (score evaluations, posting visits, assigns).
    pub engine: EngineCounters,
    /// Assignments popped/considered from the candidate structure.
    pub pops: u64,
    /// Score *updates* performed after selections (GRD's inner loop).
    pub updates: u64,
}

/// The result of a scheduler run.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Which scheduler produced this (for reports).
    pub algorithm: &'static str,
    /// The produced feasible schedule.
    pub schedule: Schedule,
    /// Total utility `Ω` of the schedule (Eq. 3).
    pub total_utility: f64,
    /// Whether all `k` requested assignments were placed. `false` means the
    /// instance ran out of valid assignments first (the schedule is still
    /// feasible, just smaller).
    pub complete: bool,
    /// Run statistics.
    pub stats: RunStats,
}

impl ScheduleOutcome {
    /// Number of assignments actually placed.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// A SES scheduling algorithm: given an instance and `k`, produce a feasible
/// schedule with (up to) `k` assignments.
///
/// Instances are passed as shared handles so an algorithm can build owned
/// [`AttendanceEngine`](crate::engine::AttendanceEngine)s; see the engine
/// docs for the ownership model. Prefer instantiating schedulers through
/// [`crate::registry`] rather than matching on name strings.
pub trait Scheduler {
    /// Short stable name used in reports and figures (e.g. `"GRD"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm.
    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError>;
}

pub(crate) fn validate_k(inst: &SesInstance, k: usize) -> Result<(), SesError> {
    if k > inst.num_events() {
        Err(SesError::InvalidK {
            k,
            num_events: inst.num_events(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SesError::InvalidK {
            k: 5,
            num_events: 3,
        };
        assert!(e.to_string().contains("k = 5"));
        let e = SesError::ExactSearchExhausted {
            explored: 10,
            budget: 10,
        };
        assert!(e.to_string().contains("budget"));
    }
}
