//! Scheduling algorithms: the paper's greedy (GRD, Algorithm 1), the TOP and
//! RAND baselines of §IV, plus an exact branch-and-bound oracle and a
//! local-search post-optimizer as extensions.

pub mod annealing;
pub mod exact;
pub mod greedy;
pub mod greedy_heap;
pub mod local_search;
pub mod random;
pub mod top;

pub use annealing::{AnnealingConfig, AnnealingScheduler};
pub use exact::ExactScheduler;
pub use greedy::GreedyScheduler;
pub use greedy_heap::GreedyHeapScheduler;
pub use local_search::{LocalSearchConfig, LocalSearchScheduler};
pub use random::RandomScheduler;
pub use top::TopScheduler;

use crate::engine::{AttendanceEngine, EngineCounters, EngineMemoryStats};
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::schedule::Schedule;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by schedulers.
#[derive(Debug, Clone, PartialEq)]
pub enum SesError {
    /// `k` exceeds the number of candidate events (no schedule of size `k`
    /// can exist).
    InvalidK {
        /// Requested number of events.
        k: usize,
        /// Available candidate events.
        num_events: usize,
    },
    /// The exact solver refused the instance (search space too large) or ran
    /// out of its node budget.
    ExactSearchExhausted {
        /// Nodes explored before giving up.
        explored: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for SesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SesError::InvalidK { k, num_events } => {
                write!(
                    f,
                    "k = {k} exceeds the number of candidate events ({num_events})"
                )
            }
            SesError::ExactSearchExhausted { explored, budget } => write!(
                f,
                "exact search exceeded its node budget ({explored} explored, budget {budget})"
            ),
        }
    }
}

impl std::error::Error for SesError {}

/// Wall-clock and operation-count statistics of a scheduler run.
///
/// Operation counts are hardware-independent and are what the complexity
/// analysis in the paper's §III predicts; the figure harness reports both.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Engine counters (score evaluations, posting visits, assigns).
    pub engine: EngineCounters,
    /// Assignments popped/considered from the candidate structure.
    pub pops: u64,
    /// Score *updates* performed after selections (GRD's inner loop).
    pub updates: u64,
    /// Resident-memory/build accounting of the run's engine (blocked column
    /// layout — see [`EngineMemoryStats`]).
    pub memory: EngineMemoryStats,
}

/// The result of a scheduler run.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Which scheduler produced this (for reports).
    pub algorithm: &'static str,
    /// The produced feasible schedule.
    pub schedule: Schedule,
    /// Total utility `Ω` of the schedule (Eq. 3).
    pub total_utility: f64,
    /// Whether all `k` requested assignments were placed. `false` means the
    /// instance ran out of valid assignments first (the schedule is still
    /// feasible, just smaller).
    pub complete: bool,
    /// Run statistics.
    pub stats: RunStats,
}

impl ScheduleOutcome {
    /// Number of assignments actually placed.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// A SES scheduling algorithm: given an instance and `k`, produce a feasible
/// schedule with (up to) `k` assignments.
///
/// Instances are passed as shared handles so an algorithm can build owned
/// [`AttendanceEngine`]s; see the engine
/// docs for the ownership model. Prefer instantiating schedulers through
/// [`crate::registry`] rather than matching on name strings.
pub trait Scheduler {
    /// Short stable name used in reports and figures (e.g. `"GRD"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm.
    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError>;
}

/// Hard ceiling on scoring shards, wherever the `threads` knob came from
/// (CLI flag, wire request). More shards than cores only adds spawn
/// overhead, and a hostile `threads: 1_000_000` request must not translate
/// into a million `scope.spawn` calls; generous headroom over the core
/// count is kept so oversubscription can still be benchmarked deliberately.
fn clamp_threads(threads: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    threads.clamp(1, (4 * cores).max(16))
}

/// Scores every `(event, interval)` pair against the engine's current state
/// — the `O(|E||T|·postings)` sweep that opens GRD, GRD-PQ and TOP —
/// sharding *intervals* across up to `threads` scoped threads.
///
/// The sweep is interval-major on purpose: one interval's columnar block
/// (`B`/`M`/`σ` slices, tens of KB) stays cache-resident while every event
/// scores against it, instead of re-streaming all `|T|` blocks per event —
/// an order-of-magnitude cut in memory traffic at Fig. 1 scale.
///
/// Rows come back in `(event, interval)` order regardless of sharding, and
/// every score is computed from the same (frozen) engine state, so the
/// result is bit-identical to the serial sweep; per-shard [`EngineCounters`]
/// are merged back into the engine when the threads join.
pub(crate) fn initial_scores(
    engine: &mut AttendanceEngine,
    threads: usize,
) -> Vec<(EventId, IntervalId, f64)> {
    let mut sweep = ses_obs::span(ses_obs::Stage::Sweep);
    let counters_before = engine.counters();
    let threads = clamp_threads(threads);
    let ne = engine.instance().num_events();
    let nt = engine.instance().num_intervals();
    let all_events: Vec<EventId> = (0..ne).map(|e| EventId::new(e as u32)).collect();
    // `columns[t][e]` = score(e → t); filled interval-major, emitted
    // event-major.
    let columns: Vec<Vec<f64>> = if threads <= 1 || nt < 2 {
        (0..nt)
            .map(|t| engine.score_frontier(&all_events, IntervalId::new(t as u32)))
            .collect()
    } else {
        let shards = threads.min(nt);
        // Contiguous interval ranges balanced by *column length* (each
        // interval's share of the layout's nnz, +1 so empty columns still
        // bill their loop iteration) instead of uniform width: under the
        // blocked layout an interval's scoring cost is proportional to its
        // resident column, and skewed activity patterns would leave
        // uniform-width shards mostly idle. Shard boundaries only decide
        // *who* computes a row, never its inputs, so results stay
        // bit-identical to the serial sweep.
        let weights: Vec<u64> = (0..nt)
            .map(|t| engine.column_len(IntervalId::new(t as u32)) as u64 + 1)
            .collect();
        let total: u64 = weights.iter().sum();
        let mut bounds: Vec<usize> = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut cum = 0u64;
        for (t, &w) in weights.iter().enumerate() {
            cum += w;
            // Cut after interval `t` each time the running mass crosses the
            // next multiple of total/shards (integer-exact comparison).
            while bounds.len() < shards && cum * shards as u64 >= total * bounds.len() as u64 {
                bounds.push(t + 1);
            }
        }
        while bounds.len() <= shards {
            bounds.push(nt);
        }
        let frozen: &AttendanceEngine = engine;
        let all_events = &all_events;
        let bounds = &bounds;
        let shard_results: Vec<(Vec<Vec<f64>>, EngineCounters)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let (lo, hi) = (bounds[s], bounds[s + 1]);
                    scope.spawn(move || {
                        let mut counters = EngineCounters::default();
                        let cols: Vec<Vec<f64>> = (lo..hi)
                            .map(|t| {
                                frozen.score_frontier_with(
                                    all_events,
                                    IntervalId::new(t as u32),
                                    &mut counters,
                                )
                            })
                            .collect();
                        (cols, counters)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scoring shard panicked"))
                .collect()
        });
        let mut columns = Vec::with_capacity(nt);
        for (cols, counters) in shard_results {
            columns.extend(cols);
            engine.merge_counters(counters);
        }
        columns
    };
    let mut rows = Vec::with_capacity(ne * nt);
    for (e, &event) in all_events.iter().enumerate() {
        for (t, column) in columns.iter().enumerate() {
            rows.push((event, IntervalId::new(t as u32), column[e]));
        }
    }
    sweep.set_ops(engine.counters().delta_since(counters_before).as_ops());
    sweep.set_aux(rows.len() as u64, threads as u64);
    rows
}

/// Rescores `events` against one interval — GRD's update pass after a commit
/// — sharding the frontier across up to `threads` scoped threads. Results
/// are parallel to `events` and bit-identical to the serial pass; shard
/// counters are merged back into the engine.
pub(crate) fn frontier_scores(
    engine: &mut AttendanceEngine,
    events: &[EventId],
    interval: IntervalId,
    threads: usize,
) -> Vec<f64> {
    let threads = clamp_threads(threads);
    if threads <= 1 || events.len() < 2 {
        return engine.score_frontier(events, interval);
    }
    let shards = threads.min(events.len());
    let chunk = events.len().div_ceil(shards);
    let frozen: &AttendanceEngine = engine;
    let shard_results: Vec<(Vec<f64>, EngineCounters)> = std::thread::scope(|scope| {
        let handles: Vec<_> = events
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut counters = EngineCounters::default();
                    let scores = frozen.score_frontier_with(part, interval, &mut counters);
                    (scores, counters)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoring shard panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(events.len());
    for (scores, counters) in shard_results {
        out.extend(scores);
        engine.merge_counters(counters);
    }
    out
}

pub(crate) fn validate_k(inst: &SesInstance, k: usize) -> Result<(), SesError> {
    if k > inst.num_events() {
        Err(SesError::InvalidK {
            k,
            num_events: inst.num_events(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SesError::InvalidK {
            k: 5,
            num_events: 3,
        };
        assert!(e.to_string().contains("k = 5"));
        let e = SesError::ExactSearchExhausted {
            explored: 10,
            budget: 10,
        };
        assert!(e.to_string().contains("budget"));
    }
}
