//! Simulated-annealing scheduler (extension beyond the paper).
//!
//! Hill-climbing local search stops at the first local optimum; annealing
//! occasionally accepts worsening moves with probability
//! `exp(Δ / temperature)` and cools geometrically, which lets it cross
//! utility valleys (e.g. vacate a popular interval to re-pack it better).
//! Used in the ablation benches as an upper-effort reference point between
//! GRD+LS and the exact solver.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// Annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingConfig {
    /// Starting temperature, as a fraction of the initial utility
    /// (`T₀ = initial_temperature · max(Ω₀, 1)`).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration (`T ← T · cooling`).
    pub cooling: f64,
    /// Total iterations.
    pub iterations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 0.05,
            cooling: 0.999,
            iterations: 20_000,
            seed: 0,
        }
    }
}

/// Simulated annealing on top of a base scheduler's solution.
#[derive(Debug, Clone)]
pub struct AnnealingScheduler<S> {
    base: S,
    config: AnnealingConfig,
}

impl<S: Scheduler> AnnealingScheduler<S> {
    /// Wraps `base` with default annealing parameters.
    pub fn new(base: S) -> Self {
        Self {
            base,
            config: AnnealingConfig::default(),
        }
    }

    /// Wraps `base` with explicit parameters.
    pub fn with_config(base: S, config: AnnealingConfig) -> Self {
        Self { base, config }
    }
}

/// One candidate move, applied tentatively to the engine.
enum Move {
    /// Move a scheduled event to another interval.
    Relocate {
        event: EventId,
        from: IntervalId,
        to: IntervalId,
    },
    /// Swap a scheduled event out for an unscheduled one.
    Swap {
        out_event: EventId,
        out_interval: IntervalId,
        in_event: EventId,
        in_interval: IntervalId,
    },
}

impl<S: Scheduler> Scheduler for AnnealingScheduler<S> {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        let base_outcome = self.base.run(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut engine = AttendanceEngine::with_schedule(inst, &base_outcome.schedule)
            .expect("base schedule must be feasible");

        let mut best_utility = engine.total_utility();
        let mut best_schedule: Schedule = engine.schedule().clone();
        let mut temperature = self.config.initial_temperature * best_utility.max(1.0);
        let mut moves_tried = 0u64;
        let mut moves_accepted = 0u64;

        let num_events = inst.num_events();
        let num_intervals = inst.num_intervals();
        for _ in 0..self.config.iterations {
            temperature *= self.config.cooling;
            let scheduled = engine.schedule().scheduled_events();
            if scheduled.is_empty() || num_intervals < 2 {
                break;
            }
            // Propose: 60% relocate, 40% swap (when unscheduled events exist).
            let relocate = scheduled.len() == num_events || rng.gen_bool(0.6);
            let proposal = if relocate {
                let event = scheduled[rng.gen_range(0..scheduled.len())];
                let from = engine.schedule().interval_of(event).expect("scheduled");
                let to = IntervalId::new(rng.gen_range(0..num_intervals) as u32);
                if to == from {
                    continue;
                }
                Move::Relocate { event, from, to }
            } else {
                let out_event = scheduled[rng.gen_range(0..scheduled.len())];
                let out_interval = engine.schedule().interval_of(out_event).expect("scheduled");
                let in_event = EventId::new(rng.gen_range(0..num_events) as u32);
                if engine.schedule().contains(in_event) {
                    continue;
                }
                let in_interval = IntervalId::new(rng.gen_range(0..num_intervals) as u32);
                Move::Swap {
                    out_event,
                    out_interval,
                    in_event,
                    in_interval,
                }
            };
            moves_tried += 1;

            // Apply tentatively, measuring the exact Δ from the engine.
            let before = engine.total_utility();
            let applied = match proposal {
                Move::Relocate { event, from, to } => {
                    engine.unassign(event).expect("scheduled");
                    if engine.assign(event, to).is_ok() {
                        Some(Move::Relocate { event, from, to })
                    } else {
                        engine.assign(event, from).expect("home slot was vacated");
                        None
                    }
                }
                Move::Swap {
                    out_event,
                    out_interval,
                    in_event,
                    in_interval,
                } => {
                    engine.unassign(out_event).expect("scheduled");
                    if engine.assign(in_event, in_interval).is_ok() {
                        Some(Move::Swap {
                            out_event,
                            out_interval,
                            in_event,
                            in_interval,
                        })
                    } else {
                        engine
                            .assign(out_event, out_interval)
                            .expect("home slot was vacated");
                        None
                    }
                }
            };
            let Some(applied) = applied else { continue };
            let delta = engine.total_utility() - before;
            let accept = delta >= 0.0
                || (temperature > 0.0 && rng.gen_bool((delta / temperature).exp().clamp(0.0, 1.0)));
            if accept {
                moves_accepted += 1;
                if engine.total_utility() > best_utility {
                    best_utility = engine.total_utility();
                    best_schedule = engine.schedule().clone();
                }
            } else {
                // Revert.
                match applied {
                    Move::Relocate { event, from, .. } => {
                        engine.unassign(event).expect("just assigned");
                        engine.assign(event, from).expect("home slot is free");
                    }
                    Move::Swap {
                        out_event,
                        out_interval,
                        in_event,
                        ..
                    } => {
                        engine.unassign(in_event).expect("just assigned");
                        engine
                            .assign(out_event, out_interval)
                            .expect("home slot is free");
                    }
                }
            }
        }

        let placed = best_schedule.len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            schedule: best_schedule,
            total_utility: best_utility,
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed() + base_outcome.stats.elapsed,
                engine: engine.counters(),
                pops: moves_tried,
                updates: moves_accepted,
                memory: engine.memory_stats(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ExactScheduler, GreedyScheduler, RandomScheduler};
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::{approx_eq_tol, approx_ge};

    #[test]
    fn never_worse_than_base_and_stays_feasible() {
        for seed in 0..5u64 {
            let inst = testkit::medium_instance(seed);
            let base = RandomScheduler::new(seed).run(&inst, 6).unwrap();
            let sa = AnnealingScheduler::with_config(
                RandomScheduler::new(seed),
                AnnealingConfig {
                    iterations: 3000,
                    seed,
                    ..AnnealingConfig::default()
                },
            )
            .run(&inst, 6)
            .unwrap();
            assert!(
                approx_ge(sa.total_utility, base.total_utility),
                "seed {seed}: SA {} < base {}",
                sa.total_utility,
                base.total_utility
            );
            inst.check_schedule(&sa.schedule).unwrap();
            assert_eq!(sa.len(), base.len());
        }
    }

    #[test]
    fn reported_utility_matches_schedule() {
        let inst = testkit::medium_instance(2);
        let sa = AnnealingScheduler::new(RandomScheduler::new(2))
            .run(&inst, 5)
            .unwrap();
        let eval = evaluate_schedule(&inst, &sa.schedule);
        assert!(
            approx_eq_tol(sa.total_utility, eval.total_utility, 1e-6),
            "{} vs {}",
            sa.total_utility,
            eval.total_utility
        );
    }

    #[test]
    fn bounded_by_exact_optimum() {
        for seed in 0..3u64 {
            let inst = testkit::small_instance(seed);
            let opt = ExactScheduler::new().run(&inst, 3).unwrap().total_utility;
            let sa = AnnealingScheduler::new(GreedyScheduler::new())
                .run(&inst, 3)
                .unwrap()
                .total_utility;
            assert!(approx_ge(opt + 1e-9, sa), "SA {sa} exceeds OPT {opt}");
        }
    }

    #[test]
    fn improves_a_random_start_substantially() {
        let mut rand_sum = 0.0;
        let mut sa_sum = 0.0;
        for seed in 0..4u64 {
            let inst = testkit::medium_instance(seed + 100);
            rand_sum += RandomScheduler::new(seed)
                .run(&inst, 8)
                .unwrap()
                .total_utility;
            sa_sum += AnnealingScheduler::new(RandomScheduler::new(seed))
                .run(&inst, 8)
                .unwrap()
                .total_utility;
        }
        assert!(
            sa_sum > rand_sum * 1.02,
            "SA {} should clearly beat RAND {}",
            sa_sum,
            rand_sum
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = testkit::medium_instance(1);
        let cfg = AnnealingConfig {
            iterations: 1000,
            seed: 7,
            ..AnnealingConfig::default()
        };
        let a = AnnealingScheduler::with_config(RandomScheduler::new(1), cfg)
            .run(&inst, 5)
            .unwrap();
        let b = AnnealingScheduler::with_config(RandomScheduler::new(1), cfg)
            .run(&inst, 5)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn zero_iterations_returns_base_schedule() {
        let inst = testkit::medium_instance(4);
        let cfg = AnnealingConfig {
            iterations: 0,
            ..AnnealingConfig::default()
        };
        let base = GreedyScheduler::new().run(&inst, 5).unwrap();
        let sa = AnnealingScheduler::with_config(GreedyScheduler::new(), cfg)
            .run(&inst, 5)
            .unwrap();
        assert_eq!(sa.schedule, base.schedule);
    }
}
