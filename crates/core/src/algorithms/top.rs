//! TOP — the first baseline of §IV: compute the initial assignment scores
//! once, then take the top-k valid assignments without ever rescoring.
//!
//! TOP is fast (no update phase) but ignores cannibalization: assignments
//! that looked good on an empty schedule keep their stale scores as the
//! schedule fills, which is exactly why the paper reports "considerably low
//! utility scores in all cases" for it (Fig. 1a/1c).

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;
use crate::util::float::total_cmp;

use super::{initial_scores, validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::sync::Arc;
use std::time::Instant;

/// The TOP baseline.
///
/// Its single scoring sweep is batch-scored and can be sharded across scoped
/// threads ([`Self::with_threads`]). TOP deliberately stays on the batch
/// path and ignores the engine's dirty-interval generations: never rescoring
/// is the whole point of the baseline, so there is nothing for the delta
/// APIs to save.
#[derive(Debug, Clone, Copy)]
pub struct TopScheduler {
    threads: usize,
}

impl Default for TopScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl TopScheduler {
    /// Creates the scheduler (serial scoring).
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Creates the scheduler with the scoring sweep sharded across up to
    /// `threads` scoped threads (`0` is treated as `1`).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Scheduler for TopScheduler {
    fn name(&self) -> &'static str {
        "TOP"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;

        // Score every pair once, against the empty schedule.
        let mut scored: Vec<(f64, EventId, IntervalId)> = initial_scores(&mut engine, self.threads)
            .into_iter()
            .map(|(event, interval, score)| (score, event, interval))
            .collect();
        // Descending by initial score; ids tie-break for determinism.
        scored.sort_unstable_by(|a, b| {
            total_cmp(b.0, a.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });

        for &(_, event, interval) in &scored {
            if engine.schedule().len() >= k {
                break;
            }
            pops += 1;
            if engine.check_assignment(event, interval).is_ok() {
                engine
                    .assign(event, interval)
                    .expect("checked assignment must apply");
            }
        }

        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates: 0, // TOP never updates scores — the point of the baseline
                memory: engine.memory_stats(),
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::GreedyScheduler;
    use crate::engine::evaluate_schedule;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn schedules_k_and_is_feasible() {
        let inst = testkit::medium_instance(42);
        let out = TopScheduler::new().run(&inst, 6).unwrap();
        assert_eq!(out.len(), 6);
        inst.check_schedule(&out.schedule).unwrap();
    }

    #[test]
    fn utility_matches_reference() {
        let inst = testkit::medium_instance(8);
        let out = TopScheduler::new().run(&inst, 5).unwrap();
        let eval = evaluate_schedule(&inst, &out.schedule);
        assert!(approx_eq(out.total_utility, eval.total_utility));
    }

    #[test]
    fn performs_no_updates() {
        let inst = testkit::medium_instance(3);
        let out = TopScheduler::new().run(&inst, 5).unwrap();
        assert_eq!(out.stats.updates, 0);
    }

    #[test]
    fn greedy_dominates_top_on_average() {
        // Not guaranteed per instance, but over a handful of seeds the mean
        // utility of GRD must exceed TOP's (the paper's headline result).
        let (mut grd_sum, mut top_sum) = (0.0, 0.0);
        for seed in 0..8u64 {
            let inst = testkit::medium_instance(seed);
            grd_sum += GreedyScheduler::new().run(&inst, 6).unwrap().total_utility;
            top_sum += TopScheduler::new().run(&inst, 6).unwrap().total_utility;
        }
        assert!(
            grd_sum > top_sum,
            "GRD mean {} should beat TOP mean {}",
            grd_sum / 8.0,
            top_sum / 8.0
        );
    }

    #[test]
    fn k_zero_is_empty() {
        let inst = testkit::small_instance(0);
        let out = TopScheduler::new().run(&inst, 0).unwrap();
        assert!(out.is_empty());
    }
}
