//! GRD-PQ — a priority-queue variant of the paper's greedy.
//!
//! Algorithm 1 keeps `L` as a flat list: each selection scans all of `L`
//! (`O(|E||T|)`) and eagerly rescores every same-interval entry. GRD-PQ
//! replaces the list with a binary heap plus *lazy* rescoring:
//!
//! * every interval carries a version counter, bumped on each commit;
//! * heap entries remember the interval version they were scored at;
//! * on pop, a stale entry (entry version < interval version) is rescored
//!   against the current state and pushed back; a fresh entry is committed.
//!
//! A fresh entry at the top of the heap dominates every other entry's
//! *current* score (stale scores can only be over-estimates, because
//! per-interval marginal gains diminish as intervals fill — see
//! `engine.rs`), so GRD-PQ selects the same assignment as GRD at every step
//! up to floating-point ties. The ablation bench (DESIGN.md A1) quantifies
//! how much work lazy rescoring saves.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;

use super::{initial_scores, validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    event: EventId,
    interval: IntervalId,
    /// Version of `interval` at scoring time.
    version: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by score; tie-break on ids for determinism.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.event.cmp(&self.event))
            .then_with(|| other.interval.cmp(&self.interval))
    }
}

/// Priority-queue greedy with lazy rescoring (same selections as GRD).
///
/// The `O(|E||T|·postings)` initial fill is batch-scored and can be sharded
/// across scoped threads ([`Self::with_threads`]); the selection loop itself
/// stays serial because lazy rescoring is inherently sequential.
#[derive(Debug, Clone, Copy)]
pub struct GreedyHeapScheduler {
    threads: usize,
}

impl Default for GreedyHeapScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyHeapScheduler {
    /// Creates the scheduler (serial scoring).
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Creates the scheduler with the initial fill sharded across up to
    /// `threads` scoped threads (`0` is treated as `1`).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Scheduler for GreedyHeapScheduler {
    fn name(&self) -> &'static str {
        "GRD-PQ"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;
        let mut updates = 0u64;

        let mut versions = vec![0u64; inst.num_intervals()];
        let mut heap: BinaryHeap<HeapEntry> = initial_scores(&mut engine, self.threads)
            .into_iter()
            .map(|(event, interval, score)| HeapEntry {
                score,
                event,
                interval,
                version: 0,
            })
            .collect();

        while engine.schedule().len() < k {
            let Some(entry) = heap.pop() else {
                break;
            };
            pops += 1;
            if engine
                .check_assignment(entry.event, entry.interval)
                .is_err()
            {
                continue; // invalid entries are dropped, never rescored
            }
            let current_version = versions[entry.interval.index()];
            if entry.version < current_version {
                // Stale: rescore lazily against the current interval state.
                updates += 1;
                heap.push(HeapEntry {
                    score: engine.score(entry.event, entry.interval),
                    version: current_version,
                    ..entry
                });
                continue;
            }
            engine
                .assign(entry.event, entry.interval)
                .expect("checked assignment must apply");
            versions[entry.interval.index()] += 1;
        }

        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates,
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::GreedyScheduler;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn matches_list_greedy_utility() {
        for seed in 0..10u64 {
            let inst = testkit::medium_instance(seed);
            let a = GreedyScheduler::new().run(&inst, 6).unwrap();
            let b = GreedyHeapScheduler::new().run(&inst, 6).unwrap();
            assert!(
                approx_eq(a.total_utility, b.total_utility),
                "seed {seed}: GRD {} vs GRD-PQ {}",
                a.total_utility,
                b.total_utility
            );
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn produces_feasible_schedules() {
        let inst = testkit::medium_instance(123);
        let out = GreedyHeapScheduler::new().run(&inst, 8).unwrap();
        inst.check_schedule(&out.schedule).unwrap();
        assert!(out.complete);
    }

    #[test]
    fn performs_fewer_score_updates_than_eager_greedy() {
        // Lazy rescoring should not do *more* update work than the eager
        // same-interval pass on a non-trivial run.
        let inst = testkit::medium_instance(5);
        let a = GreedyScheduler::new().run(&inst, 10).unwrap();
        let b = GreedyHeapScheduler::new().run(&inst, 10).unwrap();
        assert!(
            b.stats.updates <= a.stats.updates,
            "lazy updates {} > eager updates {}",
            b.stats.updates,
            a.stats.updates
        );
    }

    #[test]
    fn rejects_invalid_k() {
        let inst = testkit::small_instance(0);
        assert!(GreedyHeapScheduler::new().run(&inst, 99).is_err());
    }

    #[test]
    fn incomplete_when_constraints_bind() {
        let inst = testkit::single_slot_shared_location(5);
        let out = GreedyHeapScheduler::new().run(&inst, 4).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.complete);
    }
}
