//! GRD-PQ — CELF-style lazy greedy over the engine's dirty-interval
//! generations (spec aliases: `LAZY`, `CELF`).
//!
//! Algorithm 1 keeps `L` as a flat list: each selection scans all of `L`
//! (`O(|E||T|)`) and eagerly rescores every same-interval entry. GRD-PQ
//! replaces the list with a stale-tagged max-heap of
//! `(gain, event, interval, generation)` entries and rescoring that is both
//! *lazy* and *delta-driven*:
//!
//! * the engine stamps every interval with a generation counter, advanced
//!   only when that interval's mass columns actually mutate
//!   ([`AttendanceEngine::interval_generation`]);
//! * heap entries remember the generation they were scored at;
//! * on pop, an entry is re-validated **only if its interval generation
//!   moved**: a fresh entry commits immediately, a stale one is rescored
//!   through the [`AttendanceEngine::rescore_event_at`] delta API;
//! * CELF shortcut: if the rescored entry *still* dominates the heap top
//!   (same total order, ids included), it commits directly instead of being
//!   pushed and immediately re-popped.
//!
//! A fresh entry at the top of the heap dominates every other entry's
//! *current* score (stale scores can only be over-estimates, because
//! per-interval marginal gains diminish as intervals fill — see
//! `engine.rs`), so GRD-PQ selects the same assignment as GRD at every
//! step, including float ties (both variants break ties toward smaller
//! `(event, interval)` ids). The equivalence is property-tested bit-for-bit
//! in `crates/core/tests/incremental_equivalence.rs`; the invariants are
//! written up in DESIGN.md §7 and the saved work is quantified by the A1
//! ablation and the `BENCH_engine.json` trajectory.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId};
use crate::instance::SesInstance;

use super::{initial_scores, validate_k, RunStats, ScheduleOutcome, Scheduler, SesError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    event: EventId,
    interval: IntervalId,
    /// Generation of `interval` at scoring time
    /// ([`AttendanceEngine::interval_generation`]).
    generation: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by score; tie-break on ids for determinism (and for
        // step-for-step agreement with GRD's linear-scan pop).
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.event.cmp(&self.event))
            .then_with(|| other.interval.cmp(&self.interval))
    }
}

/// CELF-style lazy greedy (same selections as GRD, bit for bit).
///
/// The `O(|E||T|·postings)` initial fill is batch-scored and can be sharded
/// across scoped threads ([`Self::with_threads`]); the selection loop itself
/// stays serial because lazy rescoring is inherently sequential.
#[derive(Debug, Clone, Copy)]
pub struct GreedyHeapScheduler {
    threads: usize,
}

impl Default for GreedyHeapScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyHeapScheduler {
    /// Creates the scheduler (serial scoring).
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Creates the scheduler with the initial fill sharded across up to
    /// `threads` scoped threads (`0` is treated as `1`).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Scheduler for GreedyHeapScheduler {
    fn name(&self) -> &'static str {
        "GRD-PQ"
    }

    fn run(&self, inst: &Arc<SesInstance>, k: usize) -> Result<ScheduleOutcome, SesError> {
        validate_k(inst, k)?;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SolveStats reporting only, never decisions
        let start = Instant::now();
        let mut engine = AttendanceEngine::new(inst);
        let mut pops = 0u64;
        let mut updates = 0u64;

        // The initial fill reads frozen engine state, so every entry is
        // valid at its interval's *current* generation (all zero on a fresh
        // engine, but tagging through the engine keeps this correct even if
        // construction semantics ever change).
        let mut heap: BinaryHeap<HeapEntry> = initial_scores(&mut engine, self.threads)
            .into_iter()
            .map(|(event, interval, score)| HeapEntry {
                score,
                event,
                interval,
                generation: engine.interval_generation(interval),
            })
            .collect();

        let mut select_span = ses_obs::span(ses_obs::Stage::Select);
        let counters_at_select = engine.counters();
        while engine.schedule().len() < k {
            let Some(mut entry) = heap.pop() else {
                break;
            };
            pops += 1;
            if engine
                .check_assignment(entry.event, entry.interval)
                .is_err()
            {
                continue; // invalid entries are dropped, never rescored
            }
            if entry.generation < engine.interval_generation(entry.interval) {
                // Stale: one delta rescore against the current columns.
                updates += 1;
                let (score, generation) = engine.rescore_event_at(entry.event, entry.interval);
                entry.score = score;
                entry.generation = generation;
                // CELF shortcut: if the fresh value still dominates the heap
                // top (total order, ids included), pushing it back would
                // only have it popped right again — commit directly.
                if heap.peek().is_some_and(|top| entry < *top) {
                    heap.push(entry);
                    continue;
                }
            }
            engine
                .assign(entry.event, entry.interval)
                .expect("checked assignment must apply");
        }
        select_span.set_ops(engine.counters().delta_since(counters_at_select).as_ops());
        select_span.set_aux(pops, updates);
        drop(select_span);

        let placed = engine.schedule().len();
        Ok(ScheduleOutcome {
            algorithm: self.name(),
            total_utility: engine.total_utility(),
            complete: placed == k,
            stats: RunStats {
                elapsed: start.elapsed(),
                engine: engine.counters(),
                pops,
                updates,
                memory: engine.memory_stats(),
            },
            schedule: engine.into_schedule(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::GreedyScheduler;
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn matches_list_greedy_utility() {
        for seed in 0..10u64 {
            let inst = testkit::medium_instance(seed);
            let a = GreedyScheduler::new().run(&inst, 6).unwrap();
            let b = GreedyHeapScheduler::new().run(&inst, 6).unwrap();
            assert!(
                approx_eq(a.total_utility, b.total_utility),
                "seed {seed}: GRD {} vs GRD-PQ {}",
                a.total_utility,
                b.total_utility
            );
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn matches_list_greedy_schedule_bit_for_bit() {
        // The CELF conversion must not perturb selections: same schedule,
        // same Ω bits as the eager list greedy (the property suite widens
        // this across random instances).
        for seed in 0..10u64 {
            let inst = testkit::medium_instance(seed);
            let a = GreedyScheduler::new().run(&inst, 8).unwrap();
            let b = GreedyHeapScheduler::new().run(&inst, 8).unwrap();
            assert_eq!(a.schedule, b.schedule, "seed {seed}");
            assert_eq!(a.total_utility.to_bits(), b.total_utility.to_bits());
        }
    }

    #[test]
    fn produces_feasible_schedules() {
        let inst = testkit::medium_instance(123);
        let out = GreedyHeapScheduler::new().run(&inst, 8).unwrap();
        inst.check_schedule(&out.schedule).unwrap();
        assert!(out.complete);
    }

    #[test]
    fn performs_fewer_score_updates_than_eager_greedy() {
        // Lazy rescoring should not do *more* update work than the eager
        // same-interval pass on a non-trivial run.
        let inst = testkit::medium_instance(5);
        let a = GreedyScheduler::new().run(&inst, 10).unwrap();
        let b = GreedyHeapScheduler::new().run(&inst, 10).unwrap();
        assert!(
            b.stats.updates <= a.stats.updates,
            "lazy updates {} > eager updates {}",
            b.stats.updates,
            a.stats.updates
        );
        assert!(
            b.stats.engine.score_evaluations <= a.stats.engine.score_evaluations,
            "lazy evals {} > eager evals {}",
            b.stats.engine.score_evaluations,
            a.stats.engine.score_evaluations
        );
    }

    #[test]
    fn rejects_invalid_k() {
        let inst = testkit::small_instance(0);
        assert!(GreedyHeapScheduler::new().run(&inst, 99).is_err());
    }

    #[test]
    fn incomplete_when_constraints_bind() {
        let inst = testkit::single_slot_shared_location(5);
        let out = GreedyHeapScheduler::new().run(&inst, 4).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.complete);
    }
}
