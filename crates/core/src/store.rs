//! The persisted columnar instance store (`DESIGN.md` §12).
//!
//! A [`SesInstance`] serializes to a versioned on-disk format so a universe
//! is materialized **once** (`ses pack`) and every later boot cold-opens it
//! without re-running a generator or re-sorting posting lists:
//!
//! ```text
//! magic "SESSTORE" · u32 version
//! [u8 section id][u64 payload len][payload][u64 FNV-1a checksum] …
//! META · INTERVALS · EVENTS · COMPETING ·
//! INTEREST_CAND · INTEREST_COMP ·
//! ACTIVITY_BY_USER · ACTIVITY_BY_INTERVAL · END
//! ```
//!
//! Everything is little-endian; floats are stored as raw `f64` bits so a
//! reopened instance reproduces Ω and every engine aggregate **bit for
//! bit**. Section checksums are four-lane FNV-1a over little-endian u64
//! *words* of the payload (`FoldState`): detection stays deterministic
//! (every fold step is invertible), but the serial multiply chain of a
//! byte fold is gone — that margin is most of what makes cold-open
//! competitive with an in-memory rebuild.
//! Interest is CSR by event (offsets + user column + µ-bits column);
//! activity σ is CSR by *both* axes — the by-user copy is what
//! [`StoredActivity`] serves the engine's `for_each_active` enumeration
//! from, while the by-interval copy is the layout a streaming per-interval
//! column build wants and doubles as a structural end-to-end check: the
//! reader verifies the two are exact transposes before accepting the file.
//!
//! The writer streams (section lengths are computed arithmetically up
//! front, payloads never buffered whole). The reader checks magic and
//! version, slurps the framed sections, and indexes them by slicing;
//! small sections verify their checksum before decoding, while the heavy
//! CSR columns fold the checksum *while* parsing in cache-sized windows
//! (one memory pass instead of two) and compare it before any parsed
//! value is validated or used — the conversions themselves are total, no
//! branch looks at an unvouched value. CSR monotonicity, value ranges and
//! the transpose cross-check run after. Every failure is a typed
//! [`StoreError`], never a panic, so a server can lazily open tenant
//! files on the request path (the `server-panic-discipline` lint covers
//! this module). With more than one core, the interest and activity
//! section groups decode on scoped threads.

use crate::activity::ActivityModel;
use crate::ids::{CompetingEventId, EventId, IntervalId, LocationId, UserId};
use crate::instance::{InstanceBuilder, SesInstance, ValidationError};
use crate::interest::{Posting, SparseInterest};
use crate::model::{CandidateEvent, CompetingEvent, Organizer, TimeInterval};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// The 8-byte magic opening every packed instance file.
pub const MAGIC: [u8; 8] = *b"SESSTORE";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Total little-endian conversions for the hot decode loops. Every call
/// site hands over an exactly-sized window (`chunks_exact`, `split_at`,
/// `take_slice(N)`), so the zero fallback is unreachable — spelled
/// without `expect` to keep this module panic-free *by construction*
/// (the `server-panic-discipline` lint covers it), and any
/// hypothetically wrong width would still be caught by the section
/// checksum or the value validation downstream.
#[inline]
fn le_u64(w: &[u8]) -> u64 {
    match <[u8; 8]>::try_from(w) {
        Ok(a) => u64::from_le_bytes(a),
        Err(_) => 0,
    }
}

#[inline]
fn le_u32(w: &[u8]) -> u32 {
    match <[u8; 4]>::try_from(w) {
        Ok(a) => u32::from_le_bytes(a),
        Err(_) => 0,
    }
}

/// Granularity of sink/source buffering: sections stream through the
/// checksum fold and the underlying reader/writer in chunks of this size,
/// so per-value `put`/`take` calls touch only an in-memory window.
const CHUNK: usize = 64 * 1024;

/// Streaming FNV-1a over little-endian **u64 words** of the byte stream,
/// folded across four independent lanes (word i goes to lane i mod 4) that
/// are combined at `finalize`. Word granularity plus four lanes breaks the
/// byte-fold's serial multiply chain — roughly 30× less fold latency, the
/// difference between cold-open beating an in-memory rebuild and losing to
/// it — and detection stays *deterministic*, not probabilistic: every fold
/// step `h' = (h ^ w)·P` with odd `P` is invertible and the lanes combine
/// invertibly, so any change to any word always changes the final hash.
/// The final partial word is zero-padded; truncations that would shift
/// word phase are caught by the length framing before the fold runs.
///
/// `carry`/`carry_len` hold an incomplete trailing word between `update`
/// calls, so the fold can consume arbitrarily-sized chunks.
///
/// Public so other on-disk formats in the workspace (the `ses-durable`
/// WAL records) frame their payloads with the *same* checksum the
/// instance store uses, rather than a second, subtly-different one.
#[derive(Clone, Copy, Debug)]
pub struct FoldState {
    lanes: [u64; 4],
    phase: usize,
    carry: u64,
    carry_len: usize,
}

impl Default for FoldState {
    fn default() -> Self {
        Self::new()
    }
}

impl FoldState {
    /// A fresh fold over the empty stream.
    pub fn new() -> Self {
        Self {
            lanes: [FNV_OFFSET, FNV_OFFSET ^ 1, FNV_OFFSET ^ 2, FNV_OFFSET ^ 3],
            phase: 0,
            carry: 0,
            carry_len: 0,
        }
    }

    #[inline]
    fn fold_word(&mut self, word: u64) {
        self.lanes[self.phase] = (self.lanes[self.phase] ^ word).wrapping_mul(FNV_PRIME);
        self.phase = (self.phase + 1) & 3;
    }

    /// Folds `bytes` into the running checksum (chunk boundaries do not
    /// affect the result).
    pub fn update(&mut self, mut bytes: &[u8]) {
        if self.carry_len > 0 {
            while self.carry_len < 8 {
                match bytes.split_first() {
                    Some((&b, rest)) => {
                        self.carry |= (b as u64) << (8 * self.carry_len);
                        self.carry_len += 1;
                        bytes = rest;
                    }
                    None => return,
                }
            }
            let word = self.carry;
            self.carry = 0;
            self.carry_len = 0;
            self.fold_word(word);
        }
        // Peel to a lane-aligned phase so the main loop's four lane
        // chains are position-fixed and run as independent pipelines.
        while self.phase != 0 && bytes.len() >= 8 {
            let (w, rest) = bytes.split_at(8);
            self.fold_word(le_u64(w));
            bytes = rest;
        }
        if self.phase == 0 {
            let mut quads = bytes.chunks_exact(32);
            let [mut l0, mut l1, mut l2, mut l3] = self.lanes;
            for q in &mut quads {
                l0 = (l0 ^ le_u64(&q[0..8])).wrapping_mul(FNV_PRIME);
                l1 = (l1 ^ le_u64(&q[8..16])).wrapping_mul(FNV_PRIME);
                l2 = (l2 ^ le_u64(&q[16..24])).wrapping_mul(FNV_PRIME);
                l3 = (l3 ^ le_u64(&q[24..32])).wrapping_mul(FNV_PRIME);
            }
            self.lanes = [l0, l1, l2, l3];
            bytes = quads.remainder();
        }
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            self.fold_word(le_u64(w));
        }
        for &b in words.remainder() {
            self.carry |= (b as u64) << (8 * self.carry_len);
            self.carry_len += 1;
        }
    }

    /// Zero-pads any trailing partial word and folds the four lanes into
    /// the final 64-bit checksum.
    pub fn finalize(mut self) -> u64 {
        if self.carry_len > 0 {
            let word = self.carry;
            self.carry = 0;
            self.carry_len = 0;
            self.fold_word(word);
        }
        let mut h = FNV_OFFSET;
        for lane in self.lanes {
            h = (h ^ lane).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

const SEC_META: u8 = 0x01;
const SEC_INTERVALS: u8 = 0x02;
const SEC_EVENTS: u8 = 0x03;
const SEC_COMPETING: u8 = 0x04;
const SEC_INTEREST_CAND: u8 = 0x05;
const SEC_INTEREST_COMP: u8 = 0x06;
const SEC_ACTIVITY_BY_USER: u8 = 0x07;
const SEC_ACTIVITY_BY_INTERVAL: u8 = 0x08;
const SEC_END: u8 = 0xFF;

fn section_name(id: u8) -> &'static str {
    match id {
        SEC_META => "meta",
        SEC_INTERVALS => "intervals",
        SEC_EVENTS => "events",
        SEC_COMPETING => "competing",
        SEC_INTEREST_CAND => "interest/candidate",
        SEC_INTEREST_COMP => "interest/competing",
        SEC_ACTIVITY_BY_USER => "activity/by-user",
        SEC_ACTIVITY_BY_INTERVAL => "activity/by-interval",
        SEC_END => "end",
        _ => "unknown",
    }
}

/// Everything that can go wrong packing or opening an instance file.
///
/// `Clone + PartialEq` like the rest of the `ses-core` error hierarchy, so
/// IO failures carry the `std::io::Error` rendering rather than the value.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying read/write failed.
    Io {
        /// What the store was doing (e.g. `"write section"`).
        op: &'static str,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version in the file.
        found: u32,
        /// The version this build understands.
        supported: u32,
    },
    /// The file ended before a section's promised payload or checksum.
    Truncated {
        /// The section being read when the data ran out.
        section: &'static str,
    },
    /// A section's payload does not hash to its recorded checksum.
    ChecksumMismatch {
        /// The damaged section.
        section: &'static str,
        /// The checksum recorded in the file.
        expected: u64,
        /// The checksum of the bytes actually read.
        actual: u64,
    },
    /// A section id arrived out of the fixed order (or is unknown).
    UnexpectedSection {
        /// The section id found.
        found: u8,
        /// The section id required here.
        expected: u8,
    },
    /// A section decoded but its contents are internally inconsistent
    /// (non-monotone CSR offsets, out-of-range values, transpose mismatch).
    Corrupt {
        /// The inconsistent section.
        section: &'static str,
        /// What exactly is wrong.
        detail: String,
    },
    /// The decoded components do not assemble into a valid instance.
    Validation(ValidationError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, message } => write!(f, "store io error during {op}: {message}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a packed SES instance (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "packed instance format v{found} is not supported (this build reads v{supported})"
            ),
            StoreError::Truncated { section } => {
                write!(f, "packed instance truncated in section '{section}'")
            }
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "section '{section}' checksum mismatch: file says {expected:#018x}, \
                 bytes hash to {actual:#018x}"
            ),
            StoreError::UnexpectedSection { found, expected } => write!(
                f,
                "unexpected section id {found:#04x} (expected {expected:#04x} '{}')",
                section_name(*expected)
            ),
            StoreError::Corrupt { section, detail } => {
                write!(f, "section '{section}' is corrupt: {detail}")
            }
            StoreError::Validation(e) => write!(f, "packed instance fails validation: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for StoreError {
    fn from(e: ValidationError) -> Self {
        StoreError::Validation(e)
    }
}

fn io_err(op: &'static str, e: io::Error) -> StoreError {
    StoreError::Io {
        op,
        message: e.to_string(),
    }
}

// ---- writing ---------------------------------------------------------------

/// Streams one section: buffers payload bytes in [`CHUNK`]-sized windows,
/// folding each window into the running word-FNV checksum as it drains, so
/// per-value `put` calls are a bounds check and a copy — never a write
/// syscall or a hash step — and the payload is never buffered whole.
struct SectionSink<'a, W: Write> {
    out: &'a mut W,
    fold: FoldState,
    written: u64,
    buf: Vec<u8>,
}

impl<'a, W: Write> SectionSink<'a, W> {
    fn begin(out: &'a mut W, id: u8, payload_len: u64) -> Result<Self, StoreError> {
        out.write_all(&[id])
            .and_then(|()| out.write_all(&payload_len.to_le_bytes()))
            .map_err(|e| io_err("write section header", e))?;
        Ok(Self {
            out,
            fold: FoldState::new(),
            written: 0,
            buf: Vec::with_capacity(CHUNK),
        })
    }

    /// Folds and writes the buffered window.
    fn drain(&mut self) -> Result<(), StoreError> {
        self.fold.update(&self.buf);
        self.out
            .write_all(&self.buf)
            .map_err(|e| io_err("write section payload", e))?;
        self.buf.clear();
        Ok(())
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.written += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= CHUNK {
            self.drain()?;
        }
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> Result<(), StoreError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<(), StoreError> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64_bits(&mut self, v: f64) -> Result<(), StoreError> {
        self.put_u64(v.to_bits())
    }

    fn put_opt_str(&mut self, s: Option<&str>) -> Result<(), StoreError> {
        match s {
            None => self.put(&[0]),
            Some(s) => {
                self.put(&[1])?;
                self.put_u64(s.len() as u64)?;
                self.put(s.as_bytes())
            }
        }
    }

    /// Closes the section: verifies the promised length was exactly met and
    /// appends the checksum. A mismatch is a bug in the length arithmetic,
    /// reported as a typed error rather than an assertion.
    fn finish(mut self, promised: u64) -> Result<u64, StoreError> {
        if self.written != promised {
            return Err(StoreError::Corrupt {
                section: "writer",
                detail: format!(
                    "section promised {promised} bytes but wrote {}",
                    self.written
                ),
            });
        }
        self.drain()?;
        let hash = self.fold.finalize();
        self.out
            .write_all(&hash.to_le_bytes())
            .map_err(|e| io_err("write section checksum", e))?;
        Ok(1 + 8 + self.written + 8)
    }
}

fn opt_str_len(s: Option<&str>) -> u64 {
    match s {
        None => 1,
        Some(s) => 1 + 8 + s.len() as u64,
    }
}

/// CSR length: `(rows + 1)` u64 offsets + per-entry `u32` id + `u64` bits.
fn csr_len(rows: usize, nnz: usize) -> u64 {
    8 * (rows as u64 + 1) + nnz as u64 * (4 + 8)
}

fn write_csr<W: Write>(out: &mut W, id: u8, rows: &[Vec<(u32, f64)>]) -> Result<u64, StoreError> {
    let nnz: usize = rows.iter().map(Vec::len).sum();
    let len = csr_len(rows.len(), nnz);
    let mut sink = SectionSink::begin(out, id, len)?;
    let mut offset = 0u64;
    sink.put_u64(0)?;
    for row in rows {
        offset += row.len() as u64;
        sink.put_u64(offset)?;
    }
    for row in rows {
        for &(id, _) in row {
            sink.put_u32(id)?;
        }
    }
    for row in rows {
        for &(_, v) in row {
            sink.put_f64_bits(v)?;
        }
    }
    sink.finish(len)
}

fn write_postings_csr<W: Write>(
    out: &mut W,
    id: u8,
    lists: &[&[Posting]],
) -> Result<u64, StoreError> {
    let nnz: usize = lists.iter().map(|l| l.len()).sum();
    let len = csr_len(lists.len(), nnz);
    let mut sink = SectionSink::begin(out, id, len)?;
    // Three streamed passes over the same lists: offsets, ids, µ bits.
    let mut offset = 0u64;
    sink.put_u64(0)?;
    for list in lists {
        offset += list.len() as u64;
        sink.put_u64(offset)?;
    }
    for list in lists {
        for &(u, _) in list.iter() {
            sink.put_u32(u.raw())?;
        }
    }
    for list in lists {
        for &(_, mu) in list.iter() {
            sink.put_f64_bits(mu)?;
        }
    }
    sink.finish(len)
}

/// Serializes `inst` to `out` in format v[`FORMAT_VERSION`]; returns the
/// total bytes written. The writer streams — nothing larger than a CSR
/// offset table's row is buffered beyond the instance already in memory.
pub fn write_instance<W: Write>(inst: &SesInstance, mut out: W) -> Result<u64, StoreError> {
    let mut total = 0u64;
    out.write_all(&MAGIC)
        .and_then(|()| out.write_all(&FORMAT_VERSION.to_le_bytes()))
        .map_err(|e| io_err("write header", e))?;
    total += MAGIC.len() as u64 + 4;

    // META: universe counts, budget bits, organizer name.
    let organizer = inst.organizer();
    let meta_len = 8 * 5 + opt_str_len(organizer.name.as_deref());
    let mut sink = SectionSink::begin(&mut out, SEC_META, meta_len)?;
    sink.put_u64(inst.num_users() as u64)?;
    sink.put_u64(inst.num_events() as u64)?;
    sink.put_u64(inst.num_competing() as u64)?;
    sink.put_u64(inst.num_intervals() as u64)?;
    sink.put_f64_bits(organizer.available_resources)?;
    sink.put_opt_str(organizer.name.as_deref())?;
    total += sink.finish(meta_len)?;

    // INTERVALS: (start, end) pairs; ids are dense by validation.
    let intervals_len = 16 * inst.num_intervals() as u64;
    let mut sink = SectionSink::begin(&mut out, SEC_INTERVALS, intervals_len)?;
    for t in inst.intervals() {
        sink.put_u64(t.start)?;
        sink.put_u64(t.end)?;
    }
    total += sink.finish(intervals_len)?;

    // EVENTS: location, ξ bits, name.
    let events_len: u64 = inst
        .events()
        .iter()
        .map(|e| 4 + 8 + opt_str_len(e.name.as_deref()))
        .sum();
    let mut sink = SectionSink::begin(&mut out, SEC_EVENTS, events_len)?;
    for e in inst.events() {
        sink.put_u32(e.location.raw())?;
        sink.put_f64_bits(e.required_resources)?;
        sink.put_opt_str(e.name.as_deref())?;
    }
    total += sink.finish(events_len)?;

    // COMPETING: pinned interval, name.
    let competing_len: u64 = inst
        .competing()
        .iter()
        .map(|c| 4 + opt_str_len(c.name.as_deref()))
        .sum();
    let mut sink = SectionSink::begin(&mut out, SEC_COMPETING, competing_len)?;
    for c in inst.competing() {
        sink.put_u32(c.interval.raw())?;
        sink.put_opt_str(c.name.as_deref())?;
    }
    total += sink.finish(competing_len)?;

    // INTEREST: CSR by event, candidates then competing.
    let interest = inst.interest();
    let cand_lists: Vec<&[Posting]> = (0..inst.num_events())
        .map(|e| interest.interested_users(EventId::new(e as u32).into()))
        .collect();
    total += write_postings_csr(&mut out, SEC_INTEREST_CAND, &cand_lists)?;
    let comp_lists: Vec<&[Posting]> = (0..inst.num_competing())
        .map(|c| interest.interested_users(CompetingEventId::new(c as u32).into()))
        .collect();
    total += write_postings_csr(&mut out, SEC_INTEREST_COMP, &comp_lists)?;

    // ACTIVITY: σ enumerated once per user through `for_each_active` (the
    // same enumeration the engine builds columns from, so the stored set is
    // exactly the engine's slot set), then transposed for the by-interval
    // copy.
    let activity = inst.activity();
    let mut by_user: Vec<Vec<(u32, f64)>> = vec![Vec::new(); inst.num_users()];
    for (u, row) in by_user.iter_mut().enumerate() {
        activity.for_each_active(UserId::new(u as u32), &mut |t, sigma| {
            row.push((t.raw(), sigma));
        });
    }
    total += write_csr(&mut out, SEC_ACTIVITY_BY_USER, &by_user)?;
    let mut by_interval: Vec<Vec<(u32, f64)>> = vec![Vec::new(); inst.num_intervals()];
    for (u, row) in by_user.iter().enumerate() {
        for &(t, sigma) in row {
            by_interval[t as usize].push((u as u32, sigma));
        }
    }
    total += write_csr(&mut out, SEC_ACTIVITY_BY_INTERVAL, &by_interval)?;

    // END: an empty, checksummed terminator.
    let sink = SectionSink::begin(&mut out, SEC_END, 0)?;
    total += sink.finish(0)?;
    out.flush().map_err(|e| io_err("flush", e))?;
    Ok(total)
}

/// Packs `inst` to a file at `path` (created or truncated); returns the
/// bytes written.
pub fn pack_to_path(inst: &SesInstance, path: &Path) -> Result<u64, StoreError> {
    let file = std::fs::File::create(path).map_err(|e| io_err("create file", e))?;
    let mut out = io::BufWriter::new(file);
    let bytes = write_instance(inst, &mut out)?;
    out.into_inner()
        .map_err(|e| io_err("flush file", e.into_error()))?
        .sync_all()
        .map_err(|e| io_err("sync file", e))?;
    Ok(bytes)
}

// ---- reading ---------------------------------------------------------------

/// Heavy sections (interest + activity CSRs) decode on scoped threads when
/// their combined payload crosses this size; tiny fixture files decode
/// inline so tests don't pay spawn latency.
const PARALLEL_DECODE_BYTES: usize = 1 << 20;

/// One indexed section: its payload slice and recorded checksum trailer.
struct RawSection<'a> {
    section: &'static str,
    payload: &'a [u8],
    checksum: u64,
}

impl<'a> RawSection<'a> {
    /// Folds the payload and compares against the recorded trailer. Called
    /// before any value is decoded, so decoders only ever see bytes the
    /// checksum has vouched for (they still validate *values* — a crafted
    /// file can checksum anything).
    fn verify(&self) -> Result<(), StoreError> {
        let mut fold = FoldState::new();
        fold.update(self.payload);
        self.check(fold)
    }

    /// Compares a finished fold against the stored checksum. Lets hot
    /// decoders fold the payload in cache-sized windows *while* parsing
    /// (one DRAM pass instead of two) and still refuse the section before
    /// any parsed value is validated or used.
    fn check(&self, fold: FoldState) -> Result<(), StoreError> {
        let actual = fold.finalize();
        if actual != self.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: self.section,
                expected: self.checksum,
                actual,
            });
        }
        Ok(())
    }

    fn source(&self) -> SliceSource<'a> {
        SliceSource {
            data: self.payload,
            pos: 0,
            section: self.section,
        }
    }
}

/// Splits the next framed section off the front of `bytes`, checking the
/// id against the fixed section order. Only slices — a corrupt length can
/// never drive an allocation, just a typed error.
fn next_section<'a>(bytes: &mut &'a [u8], expected: u8) -> Result<RawSection<'a>, StoreError> {
    let section = section_name(expected);
    let (&id, rest) = match bytes.split_first() {
        Some(split) => split,
        None => return Err(StoreError::Truncated { section }),
    };
    if id != expected {
        return Err(StoreError::UnexpectedSection {
            found: id,
            expected,
        });
    }
    if rest.len() < 8 {
        return Err(StoreError::Truncated { section });
    }
    let (len_bytes, rest) = rest.split_at(8);
    let len = usize_of(le_u64(len_bytes), section, "section length")?;
    if rest.len() < len || rest.len() - len < 8 {
        return Err(StoreError::Truncated { section });
    }
    let (payload, rest) = rest.split_at(len);
    let (sum_bytes, rest) = rest.split_at(8);
    *bytes = rest;
    Ok(RawSection {
        section,
        payload,
        checksum: le_u64(sum_bytes),
    })
}

/// Decodes scalar and column values off a checksum-verified payload slice.
struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SliceSource<'a> {
    #[inline]
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_slice(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                section: self.section,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// `n` values * `size` bytes with overflow-checked arithmetic, so a
    /// corrupt count from a checksum-valid crafted file cannot wrap.
    fn take_values(&mut self, n: usize, size: usize) -> Result<&'a [u8], StoreError> {
        let bytes = n.checked_mul(size).ok_or(StoreError::Corrupt {
            section: self.section,
            detail: "value count overflows the payload length".to_owned(),
        })?;
        self.take_slice(bytes)
    }

    #[inline]
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        // `take_slice(N)` returns exactly N bytes; the zeroed fallback is
        // unreachable, spelled without `expect` (panic discipline).
        Ok(<[u8; N]>::try_from(self.take_slice(N)?).unwrap_or([0; N]))
    }

    fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    fn take_f64_bits(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Bulk column reads: one `chunks_exact` pass straight off the slice.
    /// The output allocation is bounded by bytes actually present — the
    /// slice is taken first.
    fn take_u64s(&mut self, n: usize) -> Result<Vec<u64>, StoreError> {
        let bytes = self.take_values(n, 8)?;
        Ok(bytes.chunks_exact(8).map(le_u64).collect())
    }

    fn take_opt_str(&mut self) -> Result<Option<String>, StoreError> {
        let flag = self.take_arr::<1>()?;
        match flag[0] {
            0 => Ok(None),
            1 => {
                let len = usize_of(self.take_u64()?, self.section, "string length")?;
                let bytes = self.take_slice(len)?;
                String::from_utf8(bytes.to_vec())
                    .map(Some)
                    .map_err(|_| StoreError::Corrupt {
                        section: self.section,
                        detail: "name is not valid UTF-8".to_owned(),
                    })
            }
            other => Err(StoreError::Corrupt {
                section: self.section,
                detail: format!("optional-string flag must be 0 or 1, found {other}"),
            }),
        }
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt {
                section: self.section,
                detail: format!("{} payload bytes left unread", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Fold-while-parse column readers: each [`CHUNK`]-sized window is folded
/// into the running checksum and converted while it is still cache-hot,
/// so a column costs one DRAM pass instead of a verify pass plus a parse
/// pass. `CHUNK` is a multiple of 8 (and 4), so window boundaries never
/// split an element. The conversions are total — no branch looks at a
/// value — and callers compare the finished fold against the stored
/// checksum before validating or using anything parsed here.
fn fold_u64s(fold: &mut FoldState, bytes: &[u8]) -> Vec<u64> {
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for win in bytes.chunks(CHUNK) {
        fold.update(win);
        out.extend(win.chunks_exact(8).map(le_u64));
    }
    out
}

fn fold_u32s(fold: &mut FoldState, bytes: &[u8]) -> Vec<u32> {
    let mut out = Vec::with_capacity(bytes.len() / 4);
    for win in bytes.chunks(CHUNK) {
        fold.update(win);
        out.extend(win.chunks_exact(4).map(le_u32));
    }
    out
}

fn fold_f64s(fold: &mut FoldState, bytes: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for win in bytes.chunks(CHUNK) {
        fold.update(win);
        out.extend(win.chunks_exact(8).map(|w| f64::from_bits(le_u64(w))));
    }
    out
}

fn read_exact<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { section }
        } else {
            io_err("read", e)
        }
    })
}

fn usize_of(v: u64, section: &'static str, what: &str) -> Result<usize, StoreError> {
    usize::try_from(v).map_err(|_| StoreError::Corrupt {
        section,
        detail: format!("{what} {v} does not fit this platform's usize"),
    })
}

/// One CSR matrix read back whole: offsets plus parallel id/value columns.
struct Csr {
    offsets: Vec<u64>,
    ids: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (&self.ids[lo..hi], &self.values[lo..hi])
    }
}

/// Validates a CSR offsets column: starts at 0, monotone non-decreasing.
fn check_offsets(offsets: &[u64], section: &'static str) -> Result<usize, StoreError> {
    if offsets.first() != Some(&0) {
        return Err(StoreError::Corrupt {
            section,
            detail: "CSR offsets must start at 0".to_owned(),
        });
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(StoreError::Corrupt {
                section,
                detail: format!("CSR offsets decrease ({} then {})", w[0], w[1]),
            });
        }
    }
    usize_of(offsets[offsets.len() - 1], section, "CSR entry count")
}

/// Decodes one SoA CSR section into owned columns, folding the checksum
/// while parsing. The trailing offset only *sizes* the column takes until
/// the checksum is compared — `take_values` bounds every take (and the
/// matching allocation) by the bytes actually present, so a corrupt
/// length fails with a typed error instead of a huge allocation.
fn read_csr(sec: &RawSection<'_>, rows: usize) -> Result<Csr, StoreError> {
    let mut fold = FoldState::new();
    let mut src = sec.source();
    let section = src.section;
    let offsets = fold_u64s(&mut fold, src.take_values(rows + 1, 8)?);
    let nnz = usize_of(offsets[rows], section, "CSR entry count")?;
    let ids = fold_u32s(&mut fold, src.take_values(nnz, 4)?);
    let values = fold_f64s(&mut fold, src.take_values(nnz, 8)?);
    src.finish()?;
    sec.check(fold)?;
    check_offsets(&offsets, section)?;
    Ok(Csr {
        offsets,
        ids,
        values,
    })
}

/// Decodes one interest CSR section into per-row boxed posting lists,
/// folding the checksum while parsing. Both columns are parsed in bulk
/// first (those loops vectorise), then each row interleaves its slice
/// windows — after the checksum comparison has accepted the section.
fn read_postings(sec: &RawSection<'_>, rows: usize) -> Result<Vec<Box<[Posting]>>, StoreError> {
    let mut fold = FoldState::new();
    let mut src = sec.source();
    let section = src.section;
    let offsets = fold_u64s(&mut fold, src.take_values(rows + 1, 8)?);
    let nnz = usize_of(offsets[rows], section, "CSR entry count")?;
    let ids = fold_u32s(&mut fold, src.take_values(nnz, 4)?);
    let mus = fold_f64s(&mut fold, src.take_values(nnz, 8)?);
    src.finish()?;
    sec.check(fold)?;
    check_offsets(&offsets, section)?;
    let lists = (0..rows)
        .map(|r| {
            // In range: offsets are monotone and end at nnz.
            let lo = offsets[r] as usize;
            let hi = offsets[r + 1] as usize;
            ids[lo..hi]
                .iter()
                .zip(&mus[lo..hi])
                .map(|(&u, &mu)| (UserId::new(u), mu))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
        .collect();
    Ok(lists)
}

/// Decodes both interest sections and assembles the validated
/// [`SparseInterest`] (ascending users, µ range re-checked there).
fn decode_interest(
    cand: &RawSection<'_>,
    comp: &RawSection<'_>,
    num_users: usize,
    num_events: usize,
    num_competing: usize,
) -> Result<SparseInterest, StoreError> {
    let cand_lists = read_postings(cand, num_events)?;
    let comp_lists = read_postings(comp, num_competing)?;
    SparseInterest::from_sorted_postings(num_users, cand_lists, comp_lists).map_err(|e| {
        StoreError::Corrupt {
            section: "interest/candidate",
            detail: e.to_string(),
        }
    })
}

/// The activity model a packed file reopens into: the by-user CSR of
/// `(interval, σ)` pairs exactly as enumerated by the source model's
/// `for_each_active`, so the reopened engine builds bit-identical columns.
///
/// `activity()` binary-searches the user's row; `for_each_active` walks it
/// in stored (ascending-interval) order.
#[derive(Debug, Clone)]
pub struct StoredActivity {
    num_users: usize,
    num_intervals: usize,
    offsets: Vec<u64>,
    intervals: Vec<u32>,
    sigmas: Vec<f64>,
}

impl StoredActivity {
    fn row(&self, user: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[user] as usize;
        let hi = self.offsets[user + 1] as usize;
        (&self.intervals[lo..hi], &self.sigmas[lo..hi])
    }

    /// Total stored `(user, interval)` pairs with `σ > 0`.
    pub fn nnz(&self) -> usize {
        self.intervals.len()
    }
}

impl ActivityModel for StoredActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        if user.index() >= self.num_users {
            return 0.0;
        }
        let (intervals, sigmas) = self.row(user.index());
        match intervals.binary_search(&interval.raw()) {
            Ok(i) => sigmas[i],
            Err(_) => 0.0,
        }
    }

    fn for_each_active(&self, user: UserId, visit: &mut dyn FnMut(IntervalId, f64)) {
        if user.index() >= self.num_users {
            return;
        }
        let (intervals, sigmas) = self.row(user.index());
        for (&t, &sigma) in intervals.iter().zip(sigmas) {
            visit(IntervalId::new(t), sigma);
        }
    }
}

/// Reads a packed instance from `input`: magic and version are checked
/// off the stream first (a wrong file type fails before any slurp), then
/// the framed sections are read to the end and handed to the slice
/// parser. Prefer [`open_path`] for files — it reads with an exact-size
/// allocation instead of growing through `read_to_end`.
pub fn read_instance<R: Read>(mut input: R) -> Result<Arc<SesInstance>, StoreError> {
    let mut magic = [0u8; 8];
    read_exact(&mut input, &mut magic, "header")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let mut version = [0u8; 4];
    read_exact(&mut input, &mut version, "header")?;
    let version = u32::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    // Slurp the framed sections — transient memory on the order of the
    // file, strictly smaller than the instance being assembled.
    let mut bytes = Vec::new();
    input
        .read_to_end(&mut bytes)
        .map_err(|e| io_err("read sections", e))?;
    parse_sections(&bytes)
}

/// Parses the framed sections that follow the 12-byte header: indexes
/// them by slicing, verifies every section's checksum *before* its
/// values are decoded, decodes the heavy CSR sections on scoped threads
/// when there is more than one core to use, cross-checks the by-user /
/// by-interval activity transpose, and assembles through
/// [`InstanceBuilder`] (which re-runs full instance validation).
fn parse_sections(bytes: &[u8]) -> Result<Arc<SesInstance>, StoreError> {
    let mut rest: &[u8] = bytes;
    let meta_sec = next_section(&mut rest, SEC_META)?;
    let intervals_sec = next_section(&mut rest, SEC_INTERVALS)?;
    let events_sec = next_section(&mut rest, SEC_EVENTS)?;
    let competing_sec = next_section(&mut rest, SEC_COMPETING)?;
    let cand_sec = next_section(&mut rest, SEC_INTEREST_CAND)?;
    let comp_sec = next_section(&mut rest, SEC_INTEREST_COMP)?;
    let by_user_sec = next_section(&mut rest, SEC_ACTIVITY_BY_USER)?;
    let by_interval_sec = next_section(&mut rest, SEC_ACTIVITY_BY_INTERVAL)?;
    let end_sec = next_section(&mut rest, SEC_END)?;
    end_sec.verify()?;
    if !end_sec.payload.is_empty() {
        return Err(StoreError::Corrupt {
            section: "end",
            detail: "END section must be empty".to_owned(),
        });
    }

    // META.
    meta_sec.verify()?;
    let mut src = meta_sec.source();
    let num_users = usize_of(src.take_u64()?, "meta", "user count")?;
    let num_events = usize_of(src.take_u64()?, "meta", "event count")?;
    let num_competing = usize_of(src.take_u64()?, "meta", "competing count")?;
    let num_intervals = usize_of(src.take_u64()?, "meta", "interval count")?;
    let budget = src.take_f64_bits()?;
    let organizer_name = src.take_opt_str()?;
    src.finish()?;
    let organizer = match organizer_name {
        Some(name) => Organizer::named(budget, name),
        None => Organizer::new(budget),
    };

    // INTERVALS.
    intervals_sec.verify()?;
    let mut src = intervals_sec.source();
    let mut intervals = Vec::with_capacity(num_intervals.min(1 << 20));
    for t in 0..num_intervals {
        let start = src.take_u64()?;
        let end = src.take_u64()?;
        // `TimeInterval::new` asserts end > start — a fine contract for
        // construction bugs, but these values come from a file (the
        // checksum vouches for transport, not for what was written), so
        // reject them as data.
        if end <= start {
            return Err(StoreError::Corrupt {
                section: section_name(SEC_INTERVALS),
                detail: format!("interval {t} has end {end} <= start {start}"),
            });
        }
        intervals.push(TimeInterval::new(IntervalId::new(t as u32), start, end));
    }
    src.finish()?;

    // EVENTS.
    events_sec.verify()?;
    let mut src = events_sec.source();
    let mut events = Vec::with_capacity(num_events.min(1 << 20));
    for e in 0..num_events {
        let location = LocationId::new(src.take_u32()?);
        let xi = src.take_f64_bits()?;
        let ev = match src.take_opt_str()? {
            Some(name) => CandidateEvent::named(EventId::new(e as u32), location, xi, name),
            None => CandidateEvent::new(EventId::new(e as u32), location, xi),
        };
        events.push(ev);
    }
    src.finish()?;

    // COMPETING.
    competing_sec.verify()?;
    let mut src = competing_sec.source();
    let mut competing = Vec::with_capacity(num_competing.min(1 << 20));
    for c in 0..num_competing {
        let interval = IntervalId::new(src.take_u32()?);
        let ev = match src.take_opt_str()? {
            Some(name) => CompetingEvent::named(CompetingEventId::new(c as u32), interval, name),
            None => CompetingEvent::new(CompetingEventId::new(c as u32), interval),
        };
        competing.push(ev);
    }
    src.finish()?;

    // The heavy sections: interest CSRs → SparseInterest, activity by-user
    // CSR (+ per-entry validation), activity by-interval CSR. They are
    // independent byte ranges, so decode them on scoped threads when the
    // payload is big enough to pay for the spawns.
    let heavy = cand_sec.payload.len()
        + comp_sec.payload.len()
        + by_user_sec.payload.len()
        + by_interval_sec.payload.len();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (interest, by_user) = if cores > 1 && heavy >= PARALLEL_DECODE_BYTES {
        std::thread::scope(|scope| {
            let interest = scope.spawn(|| {
                decode_interest(&cand_sec, &comp_sec, num_users, num_events, num_competing)
            });
            let by_user = read_csr(&by_user_sec, num_users).and_then(|by_user| {
                verify_activity(&by_user, &by_interval_sec, num_users, num_intervals)?;
                Ok(by_user)
            });
            (joined(interest), by_user)
        })
    } else {
        let by_user = read_csr(&by_user_sec, num_users).and_then(|by_user| {
            verify_activity(&by_user, &by_interval_sec, num_users, num_intervals)?;
            Ok(by_user)
        });
        (
            decode_interest(&cand_sec, &comp_sec, num_users, num_events, num_competing),
            by_user,
        )
    };
    let (interest, by_user) = (interest?, by_user?);

    let activity = StoredActivity {
        num_users,
        num_intervals,
        offsets: by_user.offsets,
        intervals: by_user.ids,
        sigmas: by_user.values,
    };

    InstanceBuilder::default()
        .organizer(organizer)
        .intervals(intervals)
        .events(events)
        .competing(competing)
        .interest(interest)
        .activity(activity)
        .build_shared()
        .map_err(StoreError::from)
}

/// Collapses a scoped decode thread's result; a panicked decoder (which
/// the panic-discipline lint forbids in the first place) surfaces as a
/// typed error rather than propagating the panic to the caller.
fn joined<T>(
    handle: std::thread::ScopedJoinHandle<'_, Result<T, StoreError>>,
) -> Result<T, StoreError> {
    match handle.join() {
        Ok(res) => res,
        Err(_) => Err(StoreError::Corrupt {
            section: "decoder",
            detail: "section decoder thread panicked".to_owned(),
        }),
    }
}

/// Opens a packed instance file. Reads the whole file with an
/// exact-size allocation (`fs::read` pre-sizes from metadata) — on a
/// page-cached file this is one copy, several times faster than growing
/// a buffer through `read_to_end`.
pub fn open_path(path: &Path) -> Result<Arc<SesInstance>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("open file", e))?;
    let Some((magic, rest)) = bytes.split_first_chunk::<8>() else {
        return Err(StoreError::Truncated { section: "header" });
    };
    if *magic != MAGIC {
        return Err(StoreError::BadMagic { found: *magic });
    }
    let Some((version, rest)) = rest.split_first_chunk::<4>() else {
        return Err(StoreError::Truncated { section: "header" });
    };
    let version = u32::from_le_bytes(*version);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    parse_sections(rest)
}

/// Verifies the by-interval activity section against the decoded by-user
/// copy in one fused pass, without materialising the transpose: checksum
/// first, then the offsets column, then a cursor walk that validates the
/// by-user values (strictly ascending intervals per user, interval ids in
/// range, σ in (0, 1]) while decoding each by-interval entry straight
/// off the payload bytes and checking the transpose is *exact* — same
/// entry count, every `(u, t, σ)` of the by-user copy present at
/// `(t, u)` with bit-identical σ, no surplus entries. `O(nnz)` because
/// both sides are sorted; the walk touches each by-interval entry once.
fn verify_activity(
    by_user: &Csr,
    sec: &RawSection<'_>,
    num_users: usize,
    num_intervals: usize,
) -> Result<(), StoreError> {
    sec.verify()?;
    let mut src = sec.source();
    let section = src.section;
    let offsets = src.take_u64s(num_intervals + 1)?;
    let nnz = check_offsets(&offsets, section)?;
    if nnz != by_user.ids.len() {
        return Err(StoreError::Corrupt {
            section,
            detail: format!(
                "transpose entry count {nnz} differs from by-user count {}",
                by_user.ids.len()
            ),
        });
    }
    let tr_ids = src.take_values(nnz, 4)?;
    let tr_sigmas = src.take_values(nnz, 8)?;
    src.finish()?;
    // Walk the by-user copy in (u, t) order with one (cursor, row end)
    // pair per interval into the by-interval columns.
    let mut cursors: Vec<(usize, usize)> = offsets
        .windows(2)
        .map(|w| (w[0] as usize, w[1] as usize))
        .collect();
    for u in 0..num_users {
        let (ts, sigmas) = by_user.row(u);
        let mut last = None;
        for (&t, &sigma) in ts.iter().zip(sigmas) {
            if last.is_some_and(|l| t <= l) {
                return Err(StoreError::Corrupt {
                    section: "activity/by-user",
                    detail: format!("user {u} intervals are not strictly ascending"),
                });
            }
            last = Some(t);
            let ti = t as usize;
            if ti >= num_intervals {
                return Err(StoreError::Corrupt {
                    section: "activity/by-user",
                    detail: format!(
                        "user {u} references interval {t} \u{2265} |T| = {num_intervals}"
                    ),
                });
            }
            if !(sigma > 0.0 && sigma <= 1.0) {
                return Err(StoreError::Corrupt {
                    section: "activity/by-user",
                    detail: format!("\u{3c3}({u},{t}) = {sigma} is outside (0, 1]"),
                });
            }
            let (cursor, row_end) = cursors[ti];
            let matches = cursor < row_end && {
                let tu = le_u32(&tr_ids[cursor * 4..cursor * 4 + 4]);
                let tsig = le_u64(&tr_sigmas[cursor * 8..cursor * 8 + 8]);
                tu == u as u32 && tsig == sigma.to_bits()
            };
            if !matches {
                return Err(StoreError::Corrupt {
                    section,
                    detail: format!("entry (u{u}, t{ti}) missing or differs in the transpose"),
                });
            }
            cursors[ti].0 = cursor + 1;
        }
    }
    for (t, &(cursor, row_end)) in cursors.iter().enumerate() {
        if cursor != row_end {
            return Err(StoreError::Corrupt {
                section,
                detail: format!("interval {t} has surplus transpose entries"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::io::Cursor;

    fn packed(seed: u64) -> Vec<u8> {
        let inst = testkit::medium_instance(seed);
        let mut buf = Vec::new();
        let bytes = write_instance(&inst, &mut buf).unwrap();
        assert_eq!(bytes as usize, buf.len());
        buf
    }

    #[test]
    fn roundtrip_preserves_shape_and_values() {
        let inst = testkit::medium_instance(3);
        let mut buf = Vec::new();
        write_instance(&inst, &mut buf).unwrap();
        let reopened = read_instance(Cursor::new(&buf)).unwrap();
        assert_eq!(reopened.num_users(), inst.num_users());
        assert_eq!(reopened.num_events(), inst.num_events());
        assert_eq!(reopened.num_intervals(), inst.num_intervals());
        assert_eq!(reopened.num_competing(), inst.num_competing());
        assert_eq!(reopened.budget().to_bits(), inst.budget().to_bits());
        assert_eq!(reopened.interest().nnz(), inst.interest().nnz());
        for u in 0..inst.num_users() as u32 {
            for t in 0..inst.num_intervals() as u32 {
                assert_eq!(
                    reopened.sigma(UserId::new(u), IntervalId::new(t)).to_bits(),
                    inst.sigma(UserId::new(u), IntervalId::new(t)).to_bits(),
                );
            }
            for e in 0..inst.num_events() as u32 {
                assert_eq!(
                    reopened.mu(UserId::new(u), EventId::new(e)).to_bits(),
                    inst.mu(UserId::new(u), EventId::new(e)).to_bits(),
                );
            }
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = packed(1);
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_instance(Cursor::new(&buf)),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut buf = packed(1);
        buf[8] = 0xEE;
        assert!(matches!(
            read_instance(Cursor::new(&buf)),
            Err(StoreError::UnsupportedVersion { found, .. }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let buf = packed(2);
        // Cutting the stream at any point must yield a typed error, never a
        // panic. Step through a spread of prefixes including the tail.
        for cut in (0..buf.len()).step_by(97).chain([buf.len() - 1]) {
            let err = read_instance(Cursor::new(&buf[..cut])).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let clean = packed(3);
        // Flip a byte in every region of the file; the reader must reject
        // each damaged copy with a typed error (usually a checksum
        // mismatch) — silent acceptance would defeat the format.
        for pos in (12..clean.len()).step_by(211) {
            let mut buf = clean.clone();
            buf[pos] ^= 0x20;
            assert!(
                read_instance(Cursor::new(&buf)).is_err(),
                "bit flip at {pos} was accepted"
            );
        }
    }

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::ChecksumMismatch {
            section: "meta",
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("meta"));
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: FORMAT_VERSION,
        };
        assert!(e.to_string().contains("v9"));
        let e = StoreError::Io {
            op: "open file",
            message: "denied".to_owned(),
        };
        assert!(e.to_string().contains("open file"));
    }
}
