//! The Eq. 4 inner loop: one algebraically-reduced division per posting,
//! explicitly chunked 4-wide over a contiguous `(slot, µ)` run.
//!
//! This module is the repo's only `unsafe` surface inside `crates/core`
//! (enforced by `ses-analyze`'s `kernel-unsafe-confinement` lint): the
//! column-local slots in a run are validated against the column length at
//! construction, so the gathers skip the per-element bounds checks the
//! optimizer cannot hoist through the `chunks_exact` structure.
//!
//! # Bit-exactness contract
//!
//! The chunking batches only the *independent* work — the `σ`/`B`/`M`
//! gathers and the `µ·B/(D·(D+µ))` divisions, which the CPU can overlap —
//! and then folds the four gains into the accumulator strictly left to
//! right. The f64 reduction order is therefore identical to the scalar
//! loop's, so chunked ≡ scalar ≡ the dense layout bit-for-bit
//! (`chunked_reduction_is_bit_identical_to_scalar` below pins it, and
//! `tests/sparse_layout.rs` pins the whole engine against the hash-map
//! oracle).

/// One posting's Eq. 4 contribution, algebraically reduced.
///
/// With `D = B + M`, the telescoped difference
/// `(M+µ)/(D+µ) − M/D` simplifies to `µ·B / (D·(D+µ))` — one division
/// instead of two, and *zero* divisions when `B = 0` (then the ratio is `1`
/// before and after if the user already has mass, and jumps `0 → 1` if `µ`
/// is the first mass at the interval). The 0/0 := 0 Luce convention is what
/// the `d > 0` branch encodes.
#[inline(always)]
pub(crate) fn posting_gain(b: f64, m: f64, mu: f64) -> f64 {
    let d = b + m;
    let denom = d * (d + mu);
    // `denom > 0` whenever the user has any mass; the fallback covers the
    // first-mass case `D = 0` (ratio jumps 0 → µ/µ = 1) and is rare enough
    // for the branch to predict perfectly. The `µ > 0` guard there keeps a
    // contract-violating zero-weight posting (built-in backends drop them,
    // third-party `InterestModel`s might not) at the 0/0 := 0 convention
    // instead of inventing a phantom unit of gain.
    if denom > 0.0 {
        mu * b / denom
    } else if mu > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Width of the explicit chunks: four independent divisions in flight
/// covers the divider latency on current x86-64/aarch64 cores without
/// spilling the gain batch out of registers.
const LANES: usize = 4;

/// Eq. 4 over one run: `Σ σ[s] · posting_gain(B[s], M[s], µ)` for each
/// `(s, µ)` in `run`, where `b`/`m`/`sigma` are one interval's column.
///
/// `run` slots must index inside the column — guaranteed by construction
/// ([`super::columns::ResolvedRuns::build`] emits column-local slots, and
/// full columns are addressed by rank with `len == stride`), and
/// debug-asserted here at every entry.
pub(crate) fn score_run(run: &[(u32, f64)], b: &[f64], m: &[f64], sigma: &[f64]) -> f64 {
    debug_assert_eq!(b.len(), m.len());
    debug_assert_eq!(b.len(), sigma.len());
    debug_assert!(
        run.iter().all(|&(s, _)| (s as usize) < b.len()),
        "run slot outside its column"
    );
    let mut sum = 0.0;
    let mut chunks = run.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut gains = [0.0f64; LANES];
        for (g, &(slot, mu)) in gains.iter_mut().zip(chunk.iter()) {
            let i = slot as usize;
            // SAFETY: `i < b.len() == m.len() == sigma.len()` — run slots
            // are column-local indices validated against the column length
            // at construction and debug-asserted above.
            let (bv, mv, sv) = unsafe {
                (
                    *b.get_unchecked(i),
                    *m.get_unchecked(i),
                    *sigma.get_unchecked(i),
                )
            };
            *g = sv * posting_gain(bv, mv, mu);
        }
        // Fold strictly left to right — the bit-exactness contract.
        for g in gains {
            sum += g;
        }
    }
    for &(slot, mu) in chunks.remainder() {
        let i = slot as usize;
        // SAFETY: same construction-time bound as above.
        let (bv, mv, sv) = unsafe {
            (
                *b.get_unchecked(i),
                *m.get_unchecked(i),
                *sigma.get_unchecked(i),
            )
        };
        sum += sv * posting_gain(bv, mv, mu);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unchunked loop the kernel must reproduce bit-for-bit.
    fn score_run_scalar(run: &[(u32, f64)], b: &[f64], m: &[f64], sigma: &[f64]) -> f64 {
        let mut sum = 0.0;
        for &(slot, mu) in run {
            let i = slot as usize;
            sum += sigma[i] * posting_gain(b[i], m[i], mu);
        }
        sum
    }

    /// Deterministic awkward values (denormal-adjacent, huge spreads) —
    /// exactly the inputs where a reassociated reduction would diverge.
    fn wiggly(i: usize, salt: u64) -> f64 {
        let h = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let scale = [1e-12, 1e-3, 1.0, 1e3][(h % 4) as usize];
        unit * scale
    }

    #[test]
    fn chunked_reduction_is_bit_identical_to_scalar() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33, 200] {
            let b: Vec<f64> = (0..len).map(|i| wiggly(i, 1)).collect();
            let m: Vec<f64> = (0..len).map(|i| wiggly(i, 2)).collect();
            let sigma: Vec<f64> = (0..len).map(|i| wiggly(i, 3).min(1.0)).collect();
            let run: Vec<(u32, f64)> = (0..len)
                .map(|i| (((len - 1 - i) as u32), wiggly(i, 4).min(1.0)))
                .collect();
            let chunked = score_run(&run, &b, &m, &sigma);
            let scalar = score_run_scalar(&run, &b, &m, &sigma);
            assert_eq!(chunked.to_bits(), scalar.to_bits(), "len {len}");
        }
    }

    #[test]
    fn posting_gain_matches_the_two_division_form_and_keeps_conventions() {
        // Reduced one-division form ≡ the telescoped two-division form.
        let (b, m, mu) = (0.5, 0.8, 0.4);
        let two_div = (m + mu) / (b + m + mu) - m / (b + m);
        assert!((posting_gain(b, m, mu) - two_div).abs() < 1e-15);
        // First mass at the interval: ratio jumps 0 → 1.
        assert_eq!(posting_gain(0.0, 0.0, 0.5), 1.0);
        // Existing mass with zero competition: ratio stays 1 → gain 0.
        assert_eq!(posting_gain(0.0, 0.3, 0.4), 0.0);
        // Zero-weight posting on an empty slot: 0/0 := 0, not 1.
        assert_eq!(posting_gain(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn kernel_handles_zero_mass_conventions() {
        // First-mass jump and the 0/0 := 0 convention survive the chunking.
        let b = [0.0, 0.0, 0.5, 0.0];
        let m = [0.0, 0.3, 0.8, 0.0];
        let sigma = [1.0, 1.0, 1.0, 1.0];
        let run = [(0u32, 0.5), (1, 0.4), (2, 0.4), (3, 0.0)];
        let got = score_run(&run, &b, &m, &sigma);
        let want = score_run_scalar(&run, &b, &m, &sigma);
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(score_run(&run[..1], &b, &m, &sigma), 1.0);
        assert_eq!(score_run(&run[3..], &b, &m, &sigma), 0.0);
    }
}
