//! Blocked per-interval column storage (the sparse slot index) and the
//! per-`(interval, event)` posting runs resolved against it.
//!
//! The dense layout this replaces kept `|T| · stride` slots per aggregate
//! column. Here each interval `t` owns a compact column holding only the
//! ranks with `σ(u,t) > 0` — CSR offsets into flat `ranks`/`b`/`m`/`σ`/count
//! arrays — so resident memory is `O(nnz + |T|)` where
//! `nnz = Σ_t |{r : σ(u_r,t) > 0}|`. A slot with `σ(u,t) = 0` is provably
//! inert: every read path multiplies it by `σ` (scores, losses, attendance
//! probabilities, interval utilities), its term is `±0.0`, and partial sums
//! never sit at `-0.0`, so dropping the slot keeps every result bit-identical
//! to the dense layout (the contract `crates/core/tests/sparse_layout.rs`
//! pins against the hash-map oracle).
//!
//! Columns are built from the activity model in two
//! [`ActivityModel::for_each_active`] passes — count, prefix-sum, scatter —
//! without ever materializing a dense `|U| × |T|` intermediate, which is what
//! lets million-user instances construct in `O(nnz)`.

use crate::activity::ActivityModel;
use crate::ids::UserId;

/// The per-interval blocked columns: CSR offsets plus parallel value arrays.
///
/// `offsets[t]..offsets[t+1]` is interval `t`'s column; `ranks` within a
/// column are strictly ascending (users are scattered in rank order, each
/// contributing at most one slot per interval). A *full* column
/// (`len == stride`) therefore has `ranks[start + r] == r`, so the global
/// rank doubles as the column-local slot — the fast path that keeps dense
/// instances on the exact same addressing as before.
pub(crate) struct IntervalColumns {
    /// Number of indexed users (ranks `0..stride`).
    pub(crate) stride: usize,
    /// CSR column boundaries, `len == |T| + 1`.
    pub(crate) offsets: Vec<usize>,
    /// Rank ids per slot, ascending within each column.
    pub(crate) ranks: Vec<u32>,
    /// Competing mass `B` per slot.
    pub(crate) b: Vec<f64>,
    /// Scheduled mass `M` per slot.
    pub(crate) m: Vec<f64>,
    /// `σ(u,t)` snapshot per slot (strictly positive by construction).
    pub(crate) sigma: Vec<f64>,
    /// Contributing-event count per slot (see the engine's zero-snap note).
    pub(crate) mcount: Vec<u32>,
}

impl IntervalColumns {
    /// Builds the columns for `users` (in rank order) over `nt` intervals.
    ///
    /// Two enumeration passes: count per interval, prefix-sum into offsets,
    /// then cursor-scatter ranks and `σ` values. Iterating users in rank
    /// order makes each column's ranks ascending without a sort.
    pub(crate) fn build(activity: &dyn ActivityModel, users: &[UserId], nt: usize) -> Self {
        let stride = users.len();
        let mut counts = vec![0usize; nt];
        for &u in users {
            activity.for_each_active(u, &mut |t, _sigma| counts[t.index()] += 1);
        }
        let mut offsets = Vec::with_capacity(nt + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let nnz = acc;
        let mut ranks = vec![0u32; nnz];
        let mut sigma = vec![0.0f64; nnz];
        let mut cursor = counts; // reuse: rewritten to running write positions
        cursor.copy_from_slice(&offsets[..nt]);
        for (r, &u) in users.iter().enumerate() {
            let mut prev: isize = -1;
            activity.for_each_active(u, &mut |t, s| {
                let ti = t.index();
                debug_assert!(
                    (ti as isize) > prev && ti < nt,
                    "for_each_active must visit ascending in-range intervals once"
                );
                debug_assert!(s > 0.0, "for_each_active must only yield σ > 0");
                prev = ti as isize;
                let slot = cursor[ti];
                ranks[slot] = r as u32;
                sigma[slot] = s;
                cursor[ti] = slot + 1;
            });
        }
        debug_assert!(
            cursor.iter().eq(offsets[1..].iter()),
            "for_each_active must enumerate identically across passes"
        );
        Self {
            stride,
            offsets,
            ranks,
            b: vec![0.0; nnz],
            m: vec![0.0; nnz],
            sigma,
            mcount: vec![0; nnz],
        }
    }

    /// Number of slots in interval `t`'s column.
    #[inline]
    pub(crate) fn len(&self, t: usize) -> usize {
        self.offsets[t + 1] - self.offsets[t]
    }

    /// Whether interval `t`'s column holds every indexed rank.
    #[inline]
    pub(crate) fn is_full(&self, t: usize) -> bool {
        self.len(t) == self.stride
    }

    /// Flat index of `(t, rank)`'s slot, or `None` if `σ(u_rank, t) = 0`
    /// (the rank has no slot at `t`). Full columns resolve in `O(1)`;
    /// partial columns binary-search the rank list.
    #[inline]
    pub(crate) fn slot_of(&self, t: usize, rank: u32) -> Option<usize> {
        let start = self.offsets[t];
        let end = self.offsets[t + 1];
        if end - start == self.stride {
            return Some(start + rank as usize);
        }
        self.ranks[start..end]
            .binary_search(&rank)
            .ok()
            .map(|j| start + j)
    }

    /// Total resident slots (`nnz`).
    #[inline]
    pub(crate) fn nnz(&self) -> usize {
        self.ranks.len()
    }

    /// Bytes resident in the column arrays (ranks + offsets + the four
    /// parallel value columns).
    pub(crate) fn resident_bytes(&self) -> u64 {
        let per_slot = size_of::<u32>()      // ranks
            + 3 * size_of::<f64>()           // b, m, sigma
            + size_of::<u32>(); // mcount
        (self.ranks.len() * per_slot + self.offsets.len() * size_of::<usize>()) as u64
    }
}

/// Per-`(interval, event)` posting runs: each event's `(rank, µ)` posting
/// list re-resolved to column-local `(slot, µ)` for every *partial* column.
///
/// Full columns need no run storage at all — there the global rank **is**
/// the local slot, so the engine walks the shared per-event `resolved` list
/// directly (zero extra memory on dense instances, which is every instance
/// built before the blocked layout existed). Runs preserve the posting-list
/// order, merely skipping the inert `σ = 0` entries, so the Eq. 4 reduction
/// visits survivors in the exact order the dense scan did.
pub(crate) struct ResolvedRuns {
    /// Number of candidate events (row width of `offsets`).
    ne: usize,
    /// `offsets[t·ne + e]..offsets[t·ne + e + 1]` is the run of `(e, t)`.
    /// Empty when every column is full (the all-dense fast path).
    offsets: Vec<usize>,
    /// Column-local `(slot, µ)` pairs.
    entries: Vec<(u32, f64)>,
}

impl ResolvedRuns {
    /// Resolves every event's postings against every partial column. One
    /// reusable rank→local scatter map bounds the pass at
    /// `O(nnz + Σ_partial t Σ_e |postings(e)|)`.
    pub(crate) fn build(cols: &IntervalColumns, resolved: &[Box<[(u32, f64)]>]) -> Self {
        let ne = resolved.len();
        let nt = cols.offsets.len() - 1;
        if (0..nt).all(|t| cols.is_full(t)) {
            return Self {
                ne,
                offsets: Vec::new(),
                entries: Vec::new(),
            };
        }
        const ABSENT: u32 = u32::MAX;
        let mut local_of = vec![ABSENT; cols.stride];
        let mut offsets = Vec::with_capacity(ne * nt + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for t in 0..nt {
            let full = cols.is_full(t);
            let col = &cols.ranks[cols.offsets[t]..cols.offsets[t + 1]];
            if !full {
                for (j, &r) in col.iter().enumerate() {
                    local_of[r as usize] = j as u32;
                }
            }
            for postings in resolved {
                if !full {
                    for &(r, mu) in postings.iter() {
                        let local = local_of[r as usize];
                        if local != ABSENT {
                            entries.push((local, mu));
                        }
                    }
                }
                offsets.push(entries.len());
            }
            if !full {
                for &r in col {
                    local_of[r as usize] = ABSENT;
                }
            }
        }
        Self {
            ne,
            offsets,
            entries,
        }
    }

    /// The run of `(event, t)`: the shared posting list itself when the
    /// column is full (rank ≡ local slot), otherwise the pre-resolved
    /// `(local_slot, µ)` slice. Taking `resolved` as a parameter (rather
    /// than reading it through the engine) keeps the returned borrow off the
    /// engine's mutable column fields, so mutation paths can walk a run
    /// while updating `m`/`mcount` in place.
    #[inline]
    pub(crate) fn run<'a>(
        &'a self,
        resolved: &'a [Box<[(u32, f64)]>],
        event: usize,
        t: usize,
        full: bool,
    ) -> &'a [(u32, f64)] {
        if full {
            return &resolved[event];
        }
        let row = t * self.ne + event;
        &self.entries[self.offsets[row]..self.offsets[row + 1]]
    }

    /// Bytes resident in the run arrays.
    pub(crate) fn resident_bytes(&self) -> u64 {
        (self.entries.len() * size_of::<(u32, f64)>() + self.offsets.len() * size_of::<usize>())
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ConstantActivity, DenseActivity, MaskedActivity};
    use crate::ids::IntervalId;

    fn users(n: u32) -> Vec<UserId> {
        (0..n).map(UserId::new).collect()
    }

    #[test]
    fn constant_activity_builds_full_columns() {
        let act = ConstantActivity::new(5, 3, 0.7).unwrap();
        let cols = IntervalColumns::build(&act, &users(5), 3);
        assert_eq!(cols.nnz(), 15);
        for t in 0..3 {
            assert!(cols.is_full(t));
            for r in 0..5u32 {
                let slot = cols.slot_of(t, r).unwrap();
                assert_eq!(cols.ranks[slot], r);
                assert_eq!(cols.sigma[slot], 0.7);
            }
        }
    }

    #[test]
    fn dense_zeros_drop_slots_and_slot_of_misses() {
        // 3 users × 2 intervals; user 1 inactive at t0, user 2 inactive
        // everywhere.
        let act =
            DenseActivity::from_rows(vec![vec![0.5, 0.5], vec![0.0, 0.9], vec![0.0, 0.0]]).unwrap();
        let cols = IntervalColumns::build(&act, &users(3), 2);
        assert_eq!(cols.nnz(), 3);
        assert_eq!(cols.len(0), 1);
        assert_eq!(cols.len(1), 2);
        assert!(!cols.is_full(0));
        assert!(cols.slot_of(0, 1).is_none());
        assert!(cols.slot_of(1, 1).is_some());
        assert!(cols.slot_of(0, 2).is_none());
        assert!(cols.slot_of(1, 2).is_none());
        let s = cols.slot_of(0, 0).unwrap();
        assert_eq!(cols.sigma[s], 0.5);
    }

    #[test]
    fn columns_are_rank_sorted_even_for_masked_windows() {
        let act = MaskedActivity::sparse(40, 16, 5, 7);
        let cols = IntervalColumns::build(&act, &users(40), 16);
        assert_eq!(cols.nnz(), 40 * 5);
        for t in 0..16 {
            let col = &cols.ranks[cols.offsets[t]..cols.offsets[t + 1]];
            assert!(col.windows(2).all(|w| w[0] < w[1]), "t{t} not sorted");
            for (j, &r) in col.iter().enumerate() {
                assert_eq!(cols.slot_of(t, r), Some(cols.offsets[t] + j));
            }
        }
        // σ snapshots match the model bitwise.
        for t in 0..16u32 {
            for r in 0..40u32 {
                let direct = act.activity(UserId::new(r), IntervalId::new(t));
                match cols.slot_of(t as usize, r) {
                    Some(s) => assert_eq!(cols.sigma[s].to_bits(), direct.to_bits()),
                    None => assert_eq!(direct, 0.0),
                }
            }
        }
    }

    #[test]
    fn runs_share_postings_on_full_columns_and_localize_on_partial() {
        let act = DenseActivity::from_rows(vec![vec![0.5, 0.5], vec![0.0, 0.9]]).unwrap();
        let cols = IntervalColumns::build(&act, &users(2), 2);
        let resolved: Vec<Box<[(u32, f64)]>> = vec![
            vec![(0, 0.3), (1, 0.4)].into_boxed_slice(),
            vec![(1, 0.8)].into_boxed_slice(),
        ];
        let runs = ResolvedRuns::build(&cols, &resolved);
        // t0 is partial (only user 0): event 0's run keeps only rank 0 at
        // local slot 0; event 1's run is empty.
        assert_eq!(runs.run(&resolved, 0, 0, cols.is_full(0)), &[(0, 0.3)]);
        assert!(runs.run(&resolved, 1, 0, cols.is_full(0)).is_empty());
        // t1 is full: runs alias the shared posting lists.
        let shared = runs.run(&resolved, 0, 1, cols.is_full(1));
        assert_eq!(shared.as_ptr(), resolved[0].as_ptr());
        assert_eq!(runs.run(&resolved, 1, 1, cols.is_full(1)), &[(1, 0.8)]);
    }

    #[test]
    fn all_full_instances_store_no_run_entries() {
        let act = ConstantActivity::new(3, 4, 1.0).unwrap();
        let cols = IntervalColumns::build(&act, &users(3), 4);
        let resolved: Vec<Box<[(u32, f64)]>> = vec![vec![(0, 0.5), (2, 0.5)].into_boxed_slice()];
        let runs = ResolvedRuns::build(&cols, &resolved);
        assert_eq!(runs.resident_bytes(), 0);
        assert_eq!(
            runs.run(&resolved, 0, 3, cols.is_full(3)).as_ptr(),
            resolved[0].as_ptr()
        );
    }

    #[test]
    fn empty_shapes_build() {
        let act = ConstantActivity::new(0, 0, 1.0).unwrap();
        let cols = IntervalColumns::build(&act, &[], 0);
        assert_eq!(cols.nnz(), 0);
        let runs = ResolvedRuns::build(&cols, &[]);
        assert_eq!(runs.resident_bytes(), 0);
        // Empty interval columns on a non-empty universe.
        let act = DenseActivity::from_rows(vec![vec![0.0, 1.0]]).unwrap();
        let cols = IntervalColumns::build(&act, &users(1), 2);
        assert_eq!(cols.len(0), 0);
        assert_eq!(cols.len(1), 1);
        assert!(cols.slot_of(0, 0).is_none());
    }
}
